//! Equisatisfiable preprocessing passes (Algorithm 3, line 2).
//!
//! §4 of the paper lists the intra-procedural preprocessing procedures of
//! the Fusion solver: *forward and backward constant propagation, equality
//! propagation, unconstrained-variable elimination, Gaussian elimination,
//! and strength reduction*. This module implements each of them as a
//! standalone pass over a boolean formula plus the [`preprocess`] pipeline
//! that runs them to a fixpoint. "The satisfiability of many cases (21% in
//! our evaluation) can be decided during this phase" — [`Preprocessed`]
//! records when that happens.
//!
//! Every pass preserves satisfiability of the *existential closure*: free
//! variables are implicitly existentially quantified (they are program
//! inputs), so e.g. replacing `x + t` by a fresh variable when `x` occurs
//! nowhere else is sound in both directions.

use crate::term::{mask, BvOp, BvPred, Sort, TermId, TermKind, TermPool, VarIdx};
use std::collections::HashMap;

/// Result of the preprocessing pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Preprocessed {
    /// The simplified, equisatisfiable formula.
    pub term: TermId,
    /// `Some(b)` when preprocessing alone decided satisfiability.
    pub decided: Option<bool>,
    /// Number of fixpoint rounds executed.
    pub rounds: u32,
}

/// Rebuilds a term bottom-up so all constructor-level rewrites re-apply.
/// This is the "lightweight formula simplification" (LFS) of the paper's
/// evaluation: local rewriting only.
pub fn simplify(pool: &mut TermPool, t: TermId) -> TermId {
    let map = HashMap::new();
    pool.substitute(t, &map)
}

fn conjuncts(pool: &TermPool, t: TermId) -> Vec<TermId> {
    match pool.kind(t) {
        TermKind::And(xs) => xs.clone(),
        _ => vec![t],
    }
}

/// Forward and backward constant propagation.
///
/// Forward: a conjunct `x = c` binds `x` to the constant everywhere.
/// Backward: conjuncts `x ⊕ c1 = c2` are solved for `x` when `⊕` is
/// invertible (`+`, `-`, `xor`, or `*` by an odd constant). Boolean unit
/// conjuncts (`b`, `¬b`) bind `b`. Iterates to a fixpoint.
pub fn propagate_constants(pool: &mut TermPool, t: TermId) -> TermId {
    propagate_constants_protected(pool, t, &Default::default())
}

/// [`propagate_constants`] over a formula *fragment*: variables in
/// `protected` (the fragment's interface, shared with other fragments) are
/// never eliminated — their defining conjuncts must survive.
pub fn propagate_constants_protected(
    pool: &mut TermPool,
    t: TermId,
    protected: &std::collections::HashSet<VarIdx>,
) -> TermId {
    let mut t = t;
    for _ in 0..64 {
        let mut bindings: HashMap<VarIdx, TermId> = HashMap::new();
        for c in conjuncts(pool, t) {
            match pool.kind(c).clone() {
                TermKind::Var(v) => {
                    let tt = pool.tt();
                    bindings.entry(v).or_insert(tt);
                }
                TermKind::Not(inner) => {
                    if let TermKind::Var(v) = *pool.kind(inner) {
                        let ff = pool.ff();
                        bindings.entry(v).or_insert(ff);
                    }
                }
                TermKind::Eq(a, b) => {
                    // Normalize: constant on one side, candidate the other.
                    let (val, other) = match (pool.as_bv_const(a), pool.as_bv_const(b)) {
                        (Some(v), None) => (v, b),
                        (None, Some(v)) => (v, a),
                        _ => continue,
                    };
                    let w = pool.width(other);
                    match pool.kind(other).clone() {
                        TermKind::Var(v) => {
                            let k = pool.bv_const(val, w);
                            bindings.entry(v).or_insert(k);
                        }
                        // Backward propagation through invertible ops.
                        TermKind::Bv(op, x, y) => {
                            let (var, konst, var_left) =
                                match (pool.kind(x).clone(), pool.as_bv_const(y)) {
                                    (TermKind::Var(v), Some(k)) => (Some(v), k, true),
                                    _ => match (pool.as_bv_const(x), pool.kind(y).clone()) {
                                        (Some(k), TermKind::Var(v)) => (Some(v), k, false),
                                        _ => (None, 0, true),
                                    },
                                };
                            let Some(v) = var else { continue };
                            let solved = match op {
                                BvOp::Add => Some(val.wrapping_sub(konst) & mask(w)),
                                BvOp::Xor => Some(val ^ konst),
                                BvOp::Sub => Some(if var_left {
                                    // v - k = val  →  v = val + k
                                    val.wrapping_add(konst) & mask(w)
                                } else {
                                    // k - v = val  →  v = k - val
                                    konst.wrapping_sub(val) & mask(w)
                                }),
                                BvOp::Mul if konst & 1 == 1 => {
                                    Some(val.wrapping_mul(mod_inverse(konst, w)) & mask(w))
                                }
                                _ => None,
                            };
                            if let Some(s) = solved {
                                let k = pool.bv_const(s, w);
                                bindings.entry(v).or_insert(k);
                            }
                        }
                        _ => {}
                    }
                }
                _ => {}
            }
        }
        bindings.retain(|v, _| !protected.contains(v));
        if bindings.is_empty() {
            return t;
        }
        let next = pool.substitute(t, &bindings);
        // Re-assert the bindings: `∃x (x=c ∧ φ)` keeps `x=c` trivially
        // true after substitution, so nothing needs re-adding.
        if next == t {
            return t;
        }
        t = next;
    }
    t
}

/// Multiplicative inverse of an odd number modulo 2^w (Newton iteration).
fn mod_inverse(a: u64, w: u32) -> u64 {
    debug_assert!(a & 1 == 1);
    let mut x = a; // correct to 3 bits
    for _ in 0..6 {
        x = x.wrapping_mul(2u64.wrapping_sub(a.wrapping_mul(x)));
    }
    x & mask(w)
}

/// Equality propagation: conjuncts `x = y` (variables) unify the two via
/// union–find, and conjuncts `x = t` (with `x` not free in `t`) substitute
/// `t` for `x` (Z3's `solve-eqs`).
pub fn propagate_equalities(pool: &mut TermPool, t: TermId) -> TermId {
    propagate_equalities_protected(pool, t, &Default::default())
}

/// [`propagate_equalities`] over a fragment: `protected` variables are
/// never chosen as the substituted side.
pub fn propagate_equalities_protected(
    pool: &mut TermPool,
    t: TermId,
    protected: &std::collections::HashSet<VarIdx>,
) -> TermId {
    let mut t = t;
    for _ in 0..64 {
        // Build a *parallel-safe* substitution: no bound variable may
        // appear in any accepted right-hand side, and no right-hand-side
        // variable may itself be bound. This makes the simultaneous
        // substitution equivalent to a sequential one, so
        // `∃x (x = t ∧ φ) ≡ φ[t/x]` applies to each binding.
        let mut subst: HashMap<VarIdx, TermId> = HashMap::new();
        let mut bound: std::collections::HashSet<VarIdx> = Default::default();
        let mut rhs_vars: std::collections::HashSet<VarIdx> = Default::default();
        let try_bind = |pool: &TermPool,
                        subst: &mut HashMap<VarIdx, TermId>,
                        bound: &mut std::collections::HashSet<VarIdx>,
                        rhs_vars: &mut std::collections::HashSet<VarIdx>,
                        x: VarIdx,
                        rhs: TermId| {
            if protected.contains(&x) {
                return;
            }
            let fvs = pool.free_vars(rhs);
            if fvs.contains(&x) || bound.contains(&x) || rhs_vars.contains(&x) {
                return;
            }
            if fvs.iter().any(|v| bound.contains(v)) {
                return;
            }
            bound.insert(x);
            rhs_vars.extend(fvs);
            subst.insert(x, rhs);
        };
        for c in conjuncts(pool, t) {
            let TermKind::Eq(a, b) = pool.kind(c).clone() else {
                continue;
            };
            let va = as_var(pool, a);
            let vb = as_var(pool, b);
            match (va, vb) {
                (Some(x), Some(y)) if x != y => {
                    // Substitute the higher-indexed variable by the lower.
                    let (from, to_t) = if x < y { (y, a) } else { (x, b) };
                    try_bind(pool, &mut subst, &mut bound, &mut rhs_vars, from, to_t);
                }
                (Some(x), None) => {
                    try_bind(pool, &mut subst, &mut bound, &mut rhs_vars, x, b);
                }
                (None, Some(y)) => {
                    try_bind(pool, &mut subst, &mut bound, &mut rhs_vars, y, a);
                }
                _ => {}
            }
        }
        if subst.is_empty() {
            return t;
        }
        let next = pool.substitute(t, &subst);
        if next == t {
            return t;
        }
        t = next;
    }
    t
}

fn as_var(pool: &TermPool, t: TermId) -> Option<VarIdx> {
    match pool.kind(t) {
        TermKind::Var(v) => Some(*v),
        _ => None,
    }
}

/// Unconstrained-variable elimination (Brummayer & Biere style).
///
/// A variable occurring exactly once in the formula is existentially free;
/// if its unique parent is a bijection in that argument (add, sub, xor,
/// multiplication by an odd constant, equality against a term not
/// containing it, comparisons against other unconstrained variables), the
/// parent itself is replaced by a fresh unconstrained variable. Unit
/// unconstrained booleans inside the top-level and/or structure then
/// evaporate — this is precisely how the paper's running example (`e = c <
/// d` with `c`, `d` unconstrained) is decided without bit-blasting.
pub fn eliminate_unconstrained(pool: &mut TermPool, t: TermId) -> TermId {
    eliminate_unconstrained_protected(pool, t, &Default::default())
}

/// [`eliminate_unconstrained`] over a fragment: `protected` variables are
/// treated as having external occurrences and are never considered
/// unconstrained.
pub fn eliminate_unconstrained_protected(
    pool: &mut TermPool,
    t: TermId,
    protected: &std::collections::HashSet<VarIdx>,
) -> TermId {
    let mut t = t;
    for _round in 0..64 {
        // Occurrence counting over the DAG: number of (parent, child-slot)
        // edges per variable, plus parent tracking.
        let mut occurs: HashMap<VarIdx, u32> = HashMap::new();
        let mut parent_of: HashMap<VarIdx, TermId> = HashMap::new();
        let mut parent_count: HashMap<TermId, u32> = HashMap::new();
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![t];
        while let Some(x) = stack.pop() {
            if !seen.insert(x) {
                continue;
            }
            for c in pool.children(x) {
                *parent_count.entry(c).or_insert(0) += 1;
                if let TermKind::Var(v) = pool.kind(c) {
                    *occurs.entry(*v).or_insert(0) += 1;
                    parent_of.insert(*v, x);
                }
                stack.push(c);
            }
        }
        let is_singleton = |v: &VarIdx, occ: &HashMap<VarIdx, u32>| {
            !protected.contains(v) && occ.get(v) == Some(&1)
        };
        // Batch all independent rewrites for this round: node → fresh var.
        // Each is individually justified by its variable's singleton-ness;
        // fresh replacements keep them independent.
        let mut rewrites: HashMap<TermId, TermId> = HashMap::new();
        let mut consumed: std::collections::HashSet<VarIdx> = Default::default();
        let mut parent_entries: Vec<(VarIdx, TermId)> =
            parent_of.iter().map(|(&v, &p)| (v, p)).collect();
        parent_entries.sort_unstable();
        for (v, parent) in parent_entries {
            if !is_singleton(&v, &occurs) || consumed.contains(&v) {
                continue;
            }
            if parent_count.get(&parent) != Some(&1) && parent != t {
                continue;
            }
            if rewrites.contains_key(&parent) {
                continue;
            }
            #[allow(clippy::unnecessary_to_owned)]
            // pool.var needs &mut; the name must be detached first
            let vt = pool.var(&pool.var_name(v).to_owned(), pool.var_sort(v));
            let replacement = match pool.kind(parent).clone() {
                TermKind::Bv(op, a, b) => {
                    let other = if a == vt { b } else { a };
                    if pool.free_vars(other).contains(&v) {
                        None
                    } else {
                        let w = pool.width(parent);
                        match op {
                            BvOp::Add | BvOp::Xor | BvOp::Sub => {
                                Some(pool.fresh_var("uc", Sort::Bv(w)))
                            }
                            BvOp::Mul => match pool.as_bv_const(other) {
                                Some(k) if k & 1 == 1 => Some(pool.fresh_var("uc", Sort::Bv(w))),
                                _ => None,
                            },
                            _ => None,
                        }
                    }
                }
                TermKind::Eq(a, b) => {
                    let other = if a == vt { b } else { a };
                    if pool.free_vars(other).contains(&v) {
                        None
                    } else {
                        Some(pool.fresh_var("uc", Sort::Bool))
                    }
                }
                TermKind::Pred(p, a, b) => {
                    let other = if a == vt { b } else { a };
                    let w = pool.width(a);
                    let full_range = match pool.kind(other).clone() {
                        TermKind::Var(u) if u != v => {
                            is_singleton(&u, &occurs) && !consumed.contains(&u)
                        }
                        TermKind::BvConst { value, .. } => {
                            let lhs_is_var = a == vt;
                            pred_full_range(p, lhs_is_var, value, w)
                        }
                        _ => false,
                    };
                    if full_range {
                        // Consume the partner variable too.
                        if let TermKind::Var(u) = pool.kind(other) {
                            consumed.insert(*u);
                        }
                        Some(pool.fresh_var("uc", Sort::Bool))
                    } else {
                        None
                    }
                }
                TermKind::Not(_) => Some(pool.fresh_var("uc", Sort::Bool)),
                _ => None,
            };
            if let Some(fresh) = replacement {
                consumed.insert(v);
                rewrites.insert(parent, fresh);
            }
        }
        // Affine-stride propagation: comparisons/equalities of independent
        // single-variable affine terms over singleton variables (see the
        // coset argument in this module's docs). `2x₁ ⋈ 2x₂` — the paper's
        // `c < d` — is decided here without bit-blasting.
        for node in dag_nodes(pool, t) {
            if rewrites.contains_key(&node) {
                continue;
            }
            let (is_eq, a, b) = match pool.kind(node).clone() {
                TermKind::Pred(_, a, b) => (false, a, b),
                TermKind::Eq(a, b) if matches!(pool.sort(a), Sort::Bv(_)) => (true, a, b),
                _ => continue,
            };
            let Sort::Bv(w) = pool.sort(a) else { continue };
            let (Some(la), Some(lb)) = (linear_of(pool, a, w), linear_of(pool, b, w)) else {
                continue;
            };
            let single = |l: &Linear| -> Option<(VarIdx, u64)> {
                if l.coeffs.len() == 1 {
                    let (&v, &c) = l.coeffs.iter().next().expect("len 1");
                    Some((v, c))
                } else {
                    None
                }
            };
            let (Some((vx, ca)), Some((vy, cb))) = (single(&la), single(&lb)) else {
                continue;
            };
            if vx == vy
                || protected.contains(&vx)
                || protected.contains(&vy)
                || consumed.contains(&vx)
                || consumed.contains(&vy)
                || occurs.get(&vx) != Some(&1)
                || occurs.get(&vy) != Some(&1)
                || ca == 0
                || cb == 0
            {
                continue;
            }
            let (za, zb) = (ca.trailing_zeros(), cb.trailing_zeros());
            if za >= w || zb >= w {
                continue;
            }
            let replacement = if is_eq {
                let z = za.min(zb);
                let stride = 1u64 << z;
                if (la.constant & (stride - 1)) == (lb.constant & (stride - 1)) {
                    pool.fresh_var("uc", Sort::Bool)
                } else {
                    pool.ff()
                }
            } else {
                pool.fresh_var("uc", Sort::Bool)
            };
            consumed.insert(vx);
            consumed.insert(vy);
            rewrites.insert(node, replacement);
        }
        if rewrites.is_empty() {
            // Root itself a singleton boolean var → satisfiable.
            if let TermKind::Var(v) = pool.kind(t) {
                if pool.var_sort(*v) == Sort::Bool && !protected.contains(v) {
                    return pool.tt();
                }
            }
            break;
        }
        t = replace_nodes(pool, t, &rewrites);
        t = drop_unconstrained_units(pool, t, protected);
    }
    t
}

/// All distinct nodes reachable from `t`.
fn dag_nodes(pool: &TermPool, t: TermId) -> Vec<TermId> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    let mut stack = vec![t];
    while let Some(x) = stack.pop() {
        if seen.insert(x) {
            out.push(x);
            stack.extend(pool.children(x));
        }
    }
    out
}

/// Replaces a batch of DAG nodes, rebuilding shared spines once. Nodes in
/// the map nested inside other mapped nodes are subsumed by the outermost.
fn replace_nodes(pool: &mut TermPool, root: TermId, map: &HashMap<TermId, TermId>) -> TermId {
    fn go(
        pool: &mut TermPool,
        t: TermId,
        map: &HashMap<TermId, TermId>,
        memo: &mut HashMap<TermId, TermId>,
    ) -> TermId {
        if let Some(&r) = map.get(&t) {
            return r;
        }
        if let Some(&r) = memo.get(&t) {
            return r;
        }
        let r = match pool.kind(t).clone() {
            TermKind::BoolConst(_) | TermKind::BvConst { .. } | TermKind::Var(_) => t,
            TermKind::Not(x) => {
                let x = go(pool, x, map, memo);
                pool.not(x)
            }
            TermKind::And(xs) => {
                let xs: Vec<TermId> = xs.iter().map(|&x| go(pool, x, map, memo)).collect();
                pool.and(&xs)
            }
            TermKind::Or(xs) => {
                let xs: Vec<TermId> = xs.iter().map(|&x| go(pool, x, map, memo)).collect();
                pool.or(&xs)
            }
            TermKind::Eq(a, b) => {
                let a = go(pool, a, map, memo);
                let b = go(pool, b, map, memo);
                pool.eq(a, b)
            }
            TermKind::Ite {
                cond,
                then_t,
                else_t,
            } => {
                let c = go(pool, cond, map, memo);
                let tt = go(pool, then_t, map, memo);
                let ee = go(pool, else_t, map, memo);
                pool.ite(c, tt, ee)
            }
            TermKind::Bv(op, a, b) => {
                let a = go(pool, a, map, memo);
                let b = go(pool, b, map, memo);
                pool.bv(op, a, b)
            }
            TermKind::Pred(p, a, b) => {
                let a = go(pool, a, map, memo);
                let b = go(pool, b, map, memo);
                pool.pred(p, a, b)
            }
        };
        memo.insert(t, r);
        r
    }
    let mut memo = HashMap::new();
    go(pool, root, map, &mut memo)
}

/// Whether `var ⋈ value` (or `value ⋈ var` when `lhs_is_var` is false)
/// spans both truth values as the variable ranges over all of `Bv(w)`.
fn pred_full_range(p: BvPred, lhs_is_var: bool, value: u64, w: u32) -> bool {
    let umax = mask(w);
    let smin = 1u64 << (w - 1);
    let smax = smin - 1;
    match (p, lhs_is_var) {
        (BvPred::Ult, true) => value != 0,     // x < c
        (BvPred::Ult, false) => value != umax, // c < x
        (BvPred::Ule, true) => value != umax,  // x <= c
        (BvPred::Ule, false) => value != 0,    // c <= x
        (BvPred::Slt, true) => value != smin,  // x <s c
        (BvPred::Slt, false) => value != smax, // c <s x
        (BvPred::Sle, true) => value != smax,  // x <=s c
        (BvPred::Sle, false) => value != smin, // c <=s x
    }
}

/// Drops singleton unconstrained boolean variables occurring directly under
/// the top-level `and`/`or` structure (`∃b. b ∧ φ ≡ φ`, `∃b. b ∨ φ ≡ ⊤`).
fn drop_unconstrained_units(
    pool: &mut TermPool,
    t: TermId,
    protected: &std::collections::HashSet<VarIdx>,
) -> TermId {
    // Count occurrences globally first.
    let mut occurs: HashMap<VarIdx, u32> = HashMap::new();
    let mut seen = std::collections::HashSet::new();
    let mut stack = vec![t];
    while let Some(x) = stack.pop() {
        if !seen.insert(x) {
            continue;
        }
        if let TermKind::Var(v) = pool.kind(x) {
            *occurs.entry(*v).or_insert(0) += 1;
        }
        stack.extend(pool.children(x));
    }
    let singleton_bool = |pool: &TermPool, x: TermId| -> bool {
        let unit = match pool.kind(x) {
            TermKind::Var(v) => Some(*v),
            TermKind::Not(inner) => match pool.kind(*inner) {
                TermKind::Var(v) => Some(*v),
                _ => None,
            },
            _ => None,
        };
        match unit {
            Some(v) => {
                pool.var_sort(v) == Sort::Bool
                    && occurs.get(&v) == Some(&1)
                    && !protected.contains(&v)
            }
            None => false,
        }
    };
    match pool.kind(t).clone() {
        TermKind::And(xs) => {
            let kept: Vec<TermId> = xs
                .into_iter()
                .filter(|&x| !singleton_bool(pool, x))
                .collect();
            pool.and(&kept)
        }
        TermKind::Or(xs) => {
            if xs.iter().any(|&x| singleton_bool(pool, x)) {
                pool.tt()
            } else {
                t
            }
        }
        _ if singleton_bool(pool, t) => pool.tt(),
        _ => t,
    }
}

/// External known-bits assumptions about free variables, as computed by an
/// upstream abstract interpretation over the *program* (not the formula).
///
/// Each entry states that every satisfying assignment of the full system
/// the formula belongs to gives the variable a value `v` with
/// `v & known == value`. Seeding the known-bits analysis with such facts is
/// satisfiability-preserving for the conjoined system: any model respects
/// the facts, so a bit conflict derived from them still proves the
/// equality (and hence the system) unsatisfiable. The facts are
/// unconditional consequences of the program's acyclic SSA — no path
/// condition is encoded in them.
#[derive(Debug, Clone, Default)]
pub struct BitsSeeds {
    map: HashMap<VarIdx, (u64, u64)>,
}

impl BitsSeeds {
    /// An empty seed set (the unseeded behaviour).
    pub fn new() -> BitsSeeds {
        BitsSeeds::default()
    }

    /// Registers `var & known == value` (value bits outside `known` are
    /// ignored).
    pub fn insert(&mut self, var: VarIdx, known: u64, value: u64) {
        if known != 0 {
            self.map.insert(var, (known, value & known));
        }
    }

    /// The fact registered for `var`, if any.
    pub fn get(&self, var: VarIdx) -> Option<(u64, u64)> {
        self.map.get(&var).copied()
    }

    /// Number of seeded variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no facts are registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Bit-level constant ("known bits") analysis of a term.
#[derive(Debug, Clone, Copy, Default)]
struct KnownBits {
    /// Mask of bit positions whose value is statically known.
    known: u64,
    /// The known bits' values (zero outside `known`).
    value: u64,
}

impl KnownBits {
    fn all(value: u64, w: u32) -> Self {
        KnownBits {
            known: mask(w),
            value: value & mask(w),
        }
    }

    /// Length of the contiguous known run starting at bit 0.
    fn low_run(&self) -> u32 {
        (!self.known).trailing_zeros()
    }
}

fn known_bits(
    pool: &TermPool,
    t: TermId,
    memo: &mut HashMap<TermId, KnownBits>,
    seeds: &BitsSeeds,
) -> KnownBits {
    if let Some(&k) = memo.get(&t) {
        return k;
    }
    let Sort::Bv(w) = pool.sort(t) else {
        return KnownBits::default();
    };
    let m = mask(w);
    let out = match pool.kind(t).clone() {
        TermKind::BvConst { value, .. } => KnownBits::all(value, w),
        TermKind::Var(v) => match seeds.get(v) {
            Some((known, value)) => KnownBits {
                known: known & m,
                value: value & known & m,
            },
            None => KnownBits::default(),
        },
        TermKind::Bv(op, a, b) => {
            let ka = known_bits(pool, a, memo, seeds);
            let kb = known_bits(pool, b, memo, seeds);
            match op {
                BvOp::And => {
                    let known0 = (ka.known & !ka.value) | (kb.known & !kb.value);
                    let known1 = (ka.known & ka.value) & (kb.known & kb.value);
                    KnownBits {
                        known: (known0 | known1) & m,
                        value: known1 & m,
                    }
                }
                BvOp::Or => {
                    let known1 = (ka.known & ka.value) | (kb.known & kb.value);
                    let known0 = (ka.known & !ka.value) & (kb.known & !kb.value);
                    KnownBits {
                        known: (known0 | known1) & m,
                        value: known1 & m,
                    }
                }
                BvOp::Xor => {
                    let known = ka.known & kb.known;
                    KnownBits {
                        known,
                        value: (ka.value ^ kb.value) & known,
                    }
                }
                BvOp::Shl => match pool.as_bv_const(b) {
                    Some(k) if k < w as u64 => {
                        let low = mask(k as u32);
                        KnownBits {
                            known: ((ka.known << k) | low) & m,
                            value: (ka.value << k) & m & ((ka.known << k) | low),
                        }
                    }
                    _ => KnownBits::default(),
                },
                BvOp::Lshr => match pool.as_bv_const(b) {
                    Some(k) if k < w as u64 => {
                        let high = m & !(m >> k);
                        KnownBits {
                            known: ((ka.known >> k) | high) & m,
                            value: (ka.value >> k) & m,
                        }
                    }
                    _ => KnownBits::default(),
                },
                BvOp::Add | BvOp::Sub => {
                    let j = ka.low_run().min(kb.low_run()).min(w);
                    if j == 0 {
                        KnownBits::default()
                    } else {
                        let jm = mask(j);
                        let v = if op == BvOp::Add {
                            ka.value.wrapping_add(kb.value)
                        } else {
                            ka.value.wrapping_sub(kb.value)
                        };
                        KnownBits {
                            known: jm,
                            value: v & jm,
                        }
                    }
                }
                BvOp::Mul => {
                    let j = ka.low_run().min(kb.low_run()).min(w);
                    if j == 0 {
                        KnownBits::default()
                    } else {
                        let jm = mask(j);
                        KnownBits {
                            known: jm,
                            value: ka.value.wrapping_mul(kb.value) & jm,
                        }
                    }
                }
                BvOp::Ashr | BvOp::Udiv | BvOp::Urem => KnownBits::default(),
            }
        }
        TermKind::Ite { then_t, else_t, .. } => {
            let ka = known_bits(pool, then_t, memo, seeds);
            let kb = known_bits(pool, else_t, memo, seeds);
            let agree = ka.known & kb.known & !(ka.value ^ kb.value);
            KnownBits {
                known: agree,
                value: ka.value & agree,
            }
        }
        _ => KnownBits::default(),
    };
    memo.insert(t, out);
    out
}

/// Refutes (or confirms nothing about) equalities by known-bits analysis:
/// `eq(a, b)` rewrites to `false` when some bit position is known in both
/// sides with different values — e.g. `2a = 2b + 1` (even = odd). This is
/// an equivalence, safe at any polarity, and is what decides the parity
/// conditions of the workloads without bit-blasting.
pub fn refute_by_known_bits(pool: &mut TermPool, t: TermId) -> TermId {
    refute_by_known_bits_seeded(pool, t, &BitsSeeds::default())
}

/// [`refute_by_known_bits`] with external facts about free variables: the
/// seeded bits participate in the same bit-conflict test, so program-level
/// facts (e.g. "this variable is even") refute equalities on first contact
/// instead of being rediscovered structurally per instance.
pub fn refute_by_known_bits_seeded(pool: &mut TermPool, t: TermId, seeds: &BitsSeeds) -> TermId {
    let mut kmemo: HashMap<TermId, KnownBits> = HashMap::new();
    fn go(
        pool: &mut TermPool,
        t: TermId,
        memo: &mut HashMap<TermId, TermId>,
        kmemo: &mut HashMap<TermId, KnownBits>,
        seeds: &BitsSeeds,
    ) -> TermId {
        if let Some(&r) = memo.get(&t) {
            return r;
        }
        let r = match pool.kind(t).clone() {
            TermKind::Eq(a, b) if matches!(pool.sort(a), Sort::Bv(_)) => {
                let a2 = go(pool, a, memo, kmemo, seeds);
                let b2 = go(pool, b, memo, kmemo, seeds);
                let ka = known_bits(pool, a2, kmemo, seeds);
                let kb = known_bits(pool, b2, kmemo, seeds);
                let both = ka.known & kb.known;
                if (ka.value ^ kb.value) & both != 0 {
                    pool.ff()
                } else {
                    pool.eq(a2, b2)
                }
            }
            TermKind::Not(x) => {
                let x = go(pool, x, memo, kmemo, seeds);
                pool.not(x)
            }
            TermKind::And(xs) => {
                let xs: Vec<TermId> = xs
                    .iter()
                    .map(|&x| go(pool, x, memo, kmemo, seeds))
                    .collect();
                pool.and(&xs)
            }
            TermKind::Or(xs) => {
                let xs: Vec<TermId> = xs
                    .iter()
                    .map(|&x| go(pool, x, memo, kmemo, seeds))
                    .collect();
                pool.or(&xs)
            }
            TermKind::Eq(a, b) => {
                let a = go(pool, a, memo, kmemo, seeds);
                let b = go(pool, b, memo, kmemo, seeds);
                pool.eq(a, b)
            }
            TermKind::Ite {
                cond,
                then_t,
                else_t,
            } => {
                let c = go(pool, cond, memo, kmemo, seeds);
                let tt = go(pool, then_t, memo, kmemo, seeds);
                let ee = go(pool, else_t, memo, kmemo, seeds);
                pool.ite(c, tt, ee)
            }
            TermKind::Bv(op, a, b) => {
                let a = go(pool, a, memo, kmemo, seeds);
                let b = go(pool, b, memo, kmemo, seeds);
                pool.bv(op, a, b)
            }
            TermKind::Pred(p, a, b) => {
                let a = go(pool, a, memo, kmemo, seeds);
                let b = go(pool, b, memo, kmemo, seeds);
                pool.pred(p, a, b)
            }
            _ => t,
        };
        memo.insert(t, r);
        r
    }
    let mut memo = HashMap::new();
    go(pool, t, &mut memo, &mut kmemo, seeds)
}

/// A linear form over one bit width: `Σ coeff·var + constant (mod 2^w)`.
#[derive(Debug, Clone, Default)]
struct Linear {
    coeffs: HashMap<VarIdx, u64>,
    constant: u64,
}

fn linear_of(pool: &TermPool, t: TermId, w: u32) -> Option<Linear> {
    match pool.kind(t).clone() {
        TermKind::BvConst { value, .. } => Some(Linear {
            coeffs: HashMap::new(),
            constant: value,
        }),
        TermKind::Var(v) => {
            let mut coeffs = HashMap::new();
            coeffs.insert(v, 1u64);
            Some(Linear {
                coeffs,
                constant: 0,
            })
        }
        TermKind::Bv(BvOp::Add, a, b) => {
            let la = linear_of(pool, a, w)?;
            let lb = linear_of(pool, b, w)?;
            Some(lin_add(la, &lb, 1, w))
        }
        TermKind::Bv(BvOp::Sub, a, b) => {
            let la = linear_of(pool, a, w)?;
            let lb = linear_of(pool, b, w)?;
            Some(lin_add(la, &lb, mask(w), w)) // -1 ≡ 2^w - 1
        }
        TermKind::Bv(BvOp::Mul, a, b) => {
            if let Some(k) = pool.as_bv_const(a) {
                let lb = linear_of(pool, b, w)?;
                Some(lin_scale(lb, k, w))
            } else if let Some(k) = pool.as_bv_const(b) {
                let la = linear_of(pool, a, w)?;
                Some(lin_scale(la, k, w))
            } else {
                None
            }
        }
        TermKind::Bv(BvOp::Shl, a, b) => {
            let k = pool.as_bv_const(b)?;
            if k >= w as u64 {
                return Some(Linear::default());
            }
            let la = linear_of(pool, a, w)?;
            Some(lin_scale(la, 1u64 << k, w))
        }
        _ => None,
    }
}

fn lin_add(mut a: Linear, b: &Linear, scale_b: u64, w: u32) -> Linear {
    let m = mask(w);
    for (&v, &c) in &b.coeffs {
        let e = a.coeffs.entry(v).or_insert(0);
        *e = e.wrapping_add(c.wrapping_mul(scale_b)) & m;
    }
    a.constant = a.constant.wrapping_add(b.constant.wrapping_mul(scale_b)) & m;
    a.coeffs.retain(|_, &mut c| c != 0);
    a
}

fn lin_scale(mut a: Linear, k: u64, w: u32) -> Linear {
    let m = mask(w);
    for c in a.coeffs.values_mut() {
        *c = c.wrapping_mul(k) & m;
    }
    a.constant = a.constant.wrapping_mul(k) & m;
    a.coeffs.retain(|_, &mut c| c != 0);
    a
}

fn lin_to_term(pool: &mut TermPool, lin: &Linear, w: u32) -> TermId {
    let mut acc = pool.bv_const(lin.constant, w);
    let mut vars: Vec<(&VarIdx, &u64)> = lin.coeffs.iter().collect();
    vars.sort();
    for (&v, &c) in vars {
        #[allow(clippy::unnecessary_to_owned)]
        // pool.var needs &mut; the name must be detached first
        let vt = pool.var(&pool.var_name(v).to_owned(), pool.var_sort(v));
        let k = pool.bv_const(c, w);
        let prod = pool.bv(BvOp::Mul, k, vt);
        acc = pool.bv(BvOp::Add, acc, prod);
    }
    acc
}

/// Gaussian elimination over the ring Z/2^w: solves the system formed by
/// the linear equality conjuncts, substituting solved variables (those with
/// odd, hence invertible, coefficients) and detecting inconsistencies.
pub fn gaussian_eliminate(pool: &mut TermPool, t: TermId) -> TermId {
    gaussian_eliminate_protected(pool, t, &Default::default())
}

/// [`gaussian_eliminate`] over a fragment: `protected` variables are never
/// chosen as pivots (their defining equations survive as residuals).
pub fn gaussian_eliminate_protected(
    pool: &mut TermPool,
    t: TermId,
    protected: &std::collections::HashSet<VarIdx>,
) -> TermId {
    let cs = conjuncts(pool, t);
    let mut others: Vec<TermId> = Vec::new();
    let mut equations: Vec<(Linear, u32)> = Vec::new();
    for c in &cs {
        let mut handled = false;
        if let TermKind::Eq(a, b) = pool.kind(*c).clone() {
            if let Sort::Bv(w) = pool.sort(a) {
                if let (Some(la), Some(lb)) = (linear_of(pool, a, w), linear_of(pool, b, w)) {
                    // a - b = 0
                    let lin = lin_add(la, &lb, mask(w), w);
                    equations.push((lin, w));
                    handled = true;
                }
            }
        }
        if !handled {
            others.push(*c);
        }
    }
    if equations.is_empty() {
        return t;
    }
    // Triangularize: repeatedly pick an equation with an odd-coefficient
    // variable, solve, substitute into the rest.
    let mut solutions: HashMap<VarIdx, (Linear, u32)> = HashMap::new();
    let mut remaining: Vec<(Linear, u32)> = Vec::new();
    while let Some((lin, w)) = equations.pop() {
        if lin.coeffs.is_empty() {
            if lin.constant != 0 {
                return pool.ff(); // 0 = c ≠ 0: inconsistent
            }
            continue; // trivially true
        }
        // Find an odd-coefficient variable (invertible mod 2^w).
        let mut pick: Option<(VarIdx, u64)> = None;
        let mut vars: Vec<(&VarIdx, &u64)> = lin.coeffs.iter().collect();
        vars.sort();
        for (&v, &c) in vars {
            if c & 1 == 1 && !protected.contains(&v) {
                pick = Some((v, c));
                break;
            }
        }
        let Some((v, c)) = pick else {
            remaining.push((lin, w));
            continue;
        };
        // v = -inv(c) * (rest + constant)
        let inv = mod_inverse(c, w);
        let neg_inv = 0u64.wrapping_sub(inv) & mask(w);
        let mut rhs = lin.clone();
        rhs.coeffs.remove(&v);
        let rhs = lin_scale(rhs, neg_inv, w);
        // Substitute into all pending and solved forms.
        for (other, ow) in equations.iter_mut().chain(remaining.iter_mut()) {
            if let Some(k) = other.coeffs.remove(&v) {
                *other = lin_add(other.clone(), &rhs, k, *ow);
            }
        }
        for (sol, sw) in solutions.values_mut() {
            if let Some(k) = sol.coeffs.remove(&v) {
                *sol = lin_add(sol.clone(), &rhs, k, *sw);
            }
        }
        solutions.insert(v, (rhs, w));
    }
    // Rebuild: substitute solutions into the non-linear conjuncts, keep
    // unsolved equations.
    let mut subst: HashMap<VarIdx, TermId> = HashMap::new();
    for (v, (lin, w)) in &solutions {
        subst.insert(*v, lin_to_term(pool, lin, *w));
    }
    let mut parts: Vec<TermId> = Vec::with_capacity(others.len() + remaining.len());
    for o in others {
        parts.push(pool.substitute(o, &subst));
    }
    for (lin, w) in remaining {
        let lhs = lin_to_term(pool, &lin, w);
        let zero = pool.bv_const(0, w);
        parts.push(pool.eq(lhs, zero));
    }
    pool.and(&parts)
}

/// Strength reduction: multiplications, divisions and remainders by powers
/// of two become shifts and masks.
pub fn reduce_strength(pool: &mut TermPool, t: TermId) -> TermId {
    fn go(pool: &mut TermPool, t: TermId, memo: &mut HashMap<TermId, TermId>) -> TermId {
        if let Some(&r) = memo.get(&t) {
            return r;
        }
        let r = match pool.kind(t).clone() {
            TermKind::Bv(op, a, b) => {
                let a = go(pool, a, memo);
                let b = go(pool, b, memo);
                let w = pool.width(a);
                let rewrite = |pool: &mut TermPool, x: TermId, k: u64| -> Option<TermId> {
                    if k == 0 || !k.is_power_of_two() {
                        return None;
                    }
                    let sh = k.trailing_zeros() as u64;
                    let sht = pool.bv_const(sh, w);
                    match op {
                        BvOp::Mul => Some(pool.bv(BvOp::Shl, x, sht)),
                        BvOp::Udiv => Some(pool.bv(BvOp::Lshr, x, sht)),
                        BvOp::Urem => {
                            let m = pool.bv_const(k - 1, w);
                            Some(pool.bv(BvOp::And, x, m))
                        }
                        _ => None,
                    }
                };
                let reduced = match op {
                    BvOp::Mul => pool
                        .as_bv_const(b)
                        .and_then(|k| rewrite(pool, a, k))
                        .or_else(|| pool.as_bv_const(a).and_then(|k| rewrite(pool, b, k))),
                    BvOp::Udiv | BvOp::Urem => {
                        pool.as_bv_const(b).and_then(|k| rewrite(pool, a, k))
                    }
                    _ => None,
                };
                reduced.unwrap_or_else(|| pool.bv(op, a, b))
            }
            TermKind::Not(x) => {
                let x = go(pool, x, memo);
                pool.not(x)
            }
            TermKind::And(xs) => {
                let xs: Vec<TermId> = xs.iter().map(|&x| go(pool, x, memo)).collect();
                pool.and(&xs)
            }
            TermKind::Or(xs) => {
                let xs: Vec<TermId> = xs.iter().map(|&x| go(pool, x, memo)).collect();
                pool.or(&xs)
            }
            TermKind::Eq(a, b) => {
                let a = go(pool, a, memo);
                let b = go(pool, b, memo);
                pool.eq(a, b)
            }
            TermKind::Ite {
                cond,
                then_t,
                else_t,
            } => {
                let c = go(pool, cond, memo);
                let tt = go(pool, then_t, memo);
                let ee = go(pool, else_t, memo);
                pool.ite(c, tt, ee)
            }
            TermKind::Pred(p, a, b) => {
                let a = go(pool, a, memo);
                let b = go(pool, b, memo);
                pool.pred(p, a, b)
            }
            _ => t,
        };
        memo.insert(t, r);
        r
    }
    let mut memo = HashMap::new();
    go(pool, t, &mut memo)
}

/// The full preprocessing pipeline, run to a fixpoint (bounded rounds):
/// strength reduction → constant propagation → equality propagation →
/// Gaussian elimination → unconstrained-variable elimination, then bounded
/// equality saturation (e-graph, [`crate::egraph`]) over the residual. The
/// e-graph leg obeys the ambient [`crate::egraph::EGraphConfig::default`]
/// (so `FUSION_NO_EGRAPH` disables it everywhere).
pub fn preprocess(pool: &mut TermPool, t: TermId) -> Preprocessed {
    preprocess_ext(pool, t, &crate::egraph::EGraphConfig::default()).0
}

/// [`preprocess`] with an explicit e-graph configuration, also returning
/// the saturation counters. The e-graph runs on the *residual* of the
/// substitution passes: only after the SSA equation network has been
/// inlined do guards carry real expression trees, which is where
/// reassociation, AC canonicalization, and strength reduction pay off.
/// When saturation finds a cheaper term, one more substitution pass
/// harvests the folds it exposed.
pub fn preprocess_ext(
    pool: &mut TermPool,
    t: TermId,
    egraph: &crate::egraph::EGraphConfig,
) -> (Preprocessed, crate::egraph::EGraphStats) {
    let pre = preprocess_protected(pool, t, &Default::default());
    let (t2, eg) = crate::egraph::egraph_simplify(pool, pre.term, &BitsSeeds::default(), egraph);
    if t2 == pre.term {
        return (pre, eg);
    }
    let pre2 = preprocess_protected(pool, t2, &Default::default());
    (
        Preprocessed {
            term: pre2.term,
            decided: pre2.decided,
            rounds: pre.rounds + pre2.rounds,
        },
        eg,
    )
}

/// A lighter fragment pipeline for *composable* conditions: only the
/// structure-preserving substitution passes (strength reduction, constant
/// propagation, equality propagation, Gaussian elimination) run.
/// Unconstrained-variable elimination is deliberately excluded — its fresh
/// replacement variables would have to be renamed apart per clone, which
/// empirically leaves the downstream global preprocessing with residues it
/// can no longer decide. UVE pays off once, globally.
pub fn preprocess_fragment(
    pool: &mut TermPool,
    t: TermId,
    protected: &std::collections::HashSet<VarIdx>,
) -> Preprocessed {
    preprocess_fragment_seeded(pool, t, protected, &BitsSeeds::default())
}

/// [`preprocess_fragment`] with external known-bits facts about free
/// variables (see [`BitsSeeds`]): the known-bits refutation pass consults
/// the seeds, so program-level facts decide fragments on first contact.
pub fn preprocess_fragment_seeded(
    pool: &mut TermPool,
    t: TermId,
    protected: &std::collections::HashSet<VarIdx>,
    seeds: &BitsSeeds,
) -> Preprocessed {
    preprocess_fragment_seeded_ext(
        pool,
        t,
        protected,
        seeds,
        &crate::egraph::EGraphConfig::default(),
    )
    .0
}

/// [`preprocess_fragment_seeded`] with an explicit e-graph configuration,
/// also returning the saturation counters. The e-graph leg runs over the
/// residual of the substitution passes — once the fragment's SSA equation
/// network has been inlined, guards are real expression trees that
/// saturation can reassociate — and consults the same seeds, so a fragment
/// is simplified to its cheapest equivalent *once*, before the engine
/// clones it into every calling context (§3.2.3), and nothing query- or
/// path-dependent is ever cached (§3.2.2: the seeds are unconditional
/// program facts, the rewrites pure equivalences).
pub fn preprocess_fragment_seeded_ext(
    pool: &mut TermPool,
    t: TermId,
    protected: &std::collections::HashSet<VarIdx>,
    seeds: &BitsSeeds,
    egraph: &crate::egraph::EGraphConfig,
) -> (Preprocessed, crate::egraph::EGraphStats) {
    let pre = preprocess_fragment_seeded_inner(pool, t, protected, seeds);
    let (t2, eg) = crate::egraph::egraph_simplify(pool, pre.term, seeds, egraph);
    if t2 == pre.term {
        return (pre, eg);
    }
    let pre2 = preprocess_fragment_seeded_inner(pool, t2, protected, seeds);
    (
        Preprocessed {
            term: pre2.term,
            decided: pre2.decided,
            rounds: pre.rounds + pre2.rounds,
        },
        eg,
    )
}

fn preprocess_fragment_seeded_inner(
    pool: &mut TermPool,
    t: TermId,
    protected: &std::collections::HashSet<VarIdx>,
    seeds: &BitsSeeds,
) -> Preprocessed {
    let mut t = simplify(pool, t);
    let mut rounds = 0u32;
    for _ in 0..8 {
        let before = t;
        rounds += 1;
        t = reduce_strength(pool, t);
        t = refute_by_known_bits_seeded(pool, t, seeds);
        t = propagate_constants_protected(pool, t, protected);
        t = propagate_equalities_protected(pool, t, protected);
        t = gaussian_eliminate_protected(pool, t, protected);
        if t == before {
            break;
        }
    }
    Preprocessed {
        term: t,
        decided: pool.as_bool_const(t),
        rounds,
    }
}

/// [`preprocess`] over a fragment with a protected interface: all passes
/// run in their interface-preserving variants, so the result can still be
/// conjoined with other fragments mentioning the protected variables.
pub fn preprocess_protected(
    pool: &mut TermPool,
    t: TermId,
    protected: &std::collections::HashSet<VarIdx>,
) -> Preprocessed {
    let mut t = simplify(pool, t);
    let mut rounds = 0u32;
    for _ in 0..8 {
        let before = t;
        rounds += 1;
        t = reduce_strength(pool, t);
        t = refute_by_known_bits(pool, t);
        t = propagate_constants_protected(pool, t, protected);
        t = propagate_equalities_protected(pool, t, protected);
        t = gaussian_eliminate_protected(pool, t, protected);
        t = eliminate_unconstrained_protected(pool, t, protected);
        if t == before {
            break;
        }
    }
    Preprocessed {
        term: t,
        decided: pool.as_bool_const(t),
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Sort;

    fn pool() -> TermPool {
        TermPool::new()
    }

    #[test]
    fn constant_propagation_forward() {
        let mut p = pool();
        let x = p.var("x", Sort::Bv(32));
        let y = p.var("y", Sort::Bv(32));
        let c5 = p.bv_const(5, 32);
        let c7 = p.bv_const(7, 32);
        let e1 = p.eq(x, c5);
        let sum = p.bv(BvOp::Add, x, y);
        let e2 = p.eq(sum, c7);
        let f = p.and2(e1, e2);
        let r = propagate_constants(&mut p, f);
        // x := 5 leaves 5 + y = 7, then backward propagation binds y := 2,
        // collapsing everything to true.
        assert_eq!(p.as_bool_const(r), Some(true));
    }

    #[test]
    fn constant_propagation_detects_conflict() {
        let mut p = pool();
        let x = p.var("x", Sort::Bv(32));
        let c5 = p.bv_const(5, 32);
        let c6 = p.bv_const(6, 32);
        let e1 = p.eq(x, c5);
        let e2 = p.eq(x, c6);
        let f = p.and2(e1, e2);
        let r = propagate_constants(&mut p, f);
        assert_eq!(p.as_bool_const(r), Some(false));
    }

    #[test]
    fn backward_propagation_through_mul_odd() {
        let mut p = pool();
        let x = p.var("x", Sort::Bv(8));
        let c3 = p.bv_const(3, 8);
        let c9 = p.bv_const(9, 8);
        let prod = p.bv(BvOp::Mul, x, c3);
        let e = p.eq(prod, c9);
        let y = p.var("y", Sort::Bv(8));
        let ey = p.eq(y, x); // forces x to be mentioned again
        let f = p.and2(e, ey);
        let r = propagate_constants(&mut p, f);
        // x = 3 (3*3=9): formula collapses to true after substituting.
        assert_eq!(p.as_bool_const(r), Some(true));
    }

    #[test]
    fn seeded_known_bits_refute_parity() {
        // Without seeds, `x == 7` with free `x` is undecided. Seeding the
        // fact "x is even" (bit 0 known zero) refutes the equality.
        let mut p = pool();
        let x = p.var("x", Sort::Bv(32));
        let c7 = p.bv_const(7, 32);
        let f = p.eq(x, c7);
        let unseeded = refute_by_known_bits(&mut p, f);
        assert_eq!(p.as_bool_const(unseeded), None);
        let mut seeds = BitsSeeds::new();
        let TermKind::Var(vx) = *p.kind(x) else {
            panic!("expected var");
        };
        seeds.insert(vx, 1, 0);
        assert_eq!(seeds.len(), 1);
        assert!(!seeds.is_empty());
        let seeded = refute_by_known_bits_seeded(&mut p, f, &seeds);
        assert_eq!(p.as_bool_const(seeded), Some(false));
    }

    #[test]
    fn seeded_fragment_pipeline_decides() {
        // Seeds flow through the fragment pipeline: `x * 2 + 1 == 8` with a
        // seeded odd/even fact on a *derived* variable composes with the
        // structural analysis.
        let mut p = pool();
        let x = p.var("x", Sort::Bv(32));
        let c8 = p.bv_const(8, 32);
        let c1 = p.bv_const(1, 32);
        let sum = p.bv(BvOp::Add, x, c1);
        let f = p.eq(sum, c8);
        // x even ⇒ x + 1 odd ⇒ never 8.
        let TermKind::Var(vx) = *p.kind(x) else {
            panic!("expected var");
        };
        let mut seeds = BitsSeeds::new();
        seeds.insert(vx, 1, 0);
        let out = preprocess_fragment_seeded(&mut p, f, &Default::default(), &seeds);
        assert_eq!(out.decided, Some(false));
    }

    #[test]
    fn equality_propagation_chains() {
        let mut p = pool();
        let x = p.var("x", Sort::Bv(16));
        let y = p.var("y", Sort::Bv(16));
        let z = p.var("z", Sort::Bv(16));
        let exy = p.eq(x, y);
        let eyz = p.eq(y, z);
        let c1 = p.bv_const(1, 16);
        let gap = p.ne(x, z);
        let _ = c1;
        let f = p.and(&[exy, eyz, gap]);
        let r = propagate_equalities(&mut p, f);
        assert_eq!(p.as_bool_const(r), Some(false));
    }

    #[test]
    fn unconstrained_addition_is_dropped() {
        // The paper's example shape: z = y ∧ y = 2x with x used once →
        // everything unconstrained → satisfiable.
        let mut p = pool();
        let x = p.var("x", Sort::Bv(32));
        let c = p.var("c", Sort::Bv(32));
        let sum = p.bv(BvOp::Add, x, c); // x fresh & singleton
        let d = p.var("d", Sort::Bv(32));
        let f = p.eq(sum, d);
        let r = eliminate_unconstrained(&mut p, f);
        assert_eq!(p.as_bool_const(r), Some(true));
    }

    #[test]
    fn unconstrained_comparison_of_two_fresh_vars() {
        let mut p = pool();
        let c = p.var("c", Sort::Bv(32));
        let d = p.var("d", Sort::Bv(32));
        let e = p.pred(BvPred::Slt, c, d);
        let r = eliminate_unconstrained(&mut p, e);
        assert_eq!(p.as_bool_const(r), Some(true));
    }

    #[test]
    fn constrained_vars_are_kept() {
        let mut p = pool();
        let x = p.var("x", Sort::Bv(8));
        let c0 = p.bv_const(0, 8);
        let lt = p.pred(BvPred::Ult, x, c0); // x < 0: never true
        let r = eliminate_unconstrained(&mut p, lt);
        // Constructor already folds? ult(x, 0) is not folded by
        // constructors; the pass must NOT treat it as full-range.
        assert_ne!(p.as_bool_const(r), Some(true));
    }

    #[test]
    fn gaussian_solves_consistent_system() {
        let mut p = pool();
        let x = p.var("x", Sort::Bv(16));
        let y = p.var("y", Sort::Bv(16));
        // x + 2y = 10, x + y = 7  →  y = 3, x = 4 (unit pivots exist).
        let c10 = p.bv_const(10, 16);
        let c7 = p.bv_const(7, 16);
        let two = p.bv_const(2, 16);
        let ty = p.bv(BvOp::Mul, two, y);
        let s1 = p.bv(BvOp::Add, x, ty);
        let s2 = p.bv(BvOp::Add, x, y);
        let e1 = p.eq(s1, c10);
        let e2 = p.eq(s2, c7);
        let f = p.and2(e1, e2);
        let r = gaussian_eliminate(&mut p, f);
        assert_eq!(p.as_bool_const(r), Some(true));
    }

    #[test]
    fn gaussian_keeps_even_residual() {
        let mut p = pool();
        let x = p.var("x", Sort::Bv(16));
        let y = p.var("y", Sort::Bv(16));
        // x + y = 10, x - y = 4: eliminating x leaves 2y = 6, which has no
        // unit pivot mod 2^16 and must survive as a residual equation.
        let c10 = p.bv_const(10, 16);
        let c4 = p.bv_const(4, 16);
        let s = p.bv(BvOp::Add, x, y);
        let d = p.bv(BvOp::Sub, x, y);
        let e1 = p.eq(s, c10);
        let e2 = p.eq(d, c4);
        let f = p.and2(e1, e2);
        let r = gaussian_eliminate(&mut p, f);
        assert_eq!(p.as_bool_const(r), None, "got {}", p.display(r));
        // x must have been eliminated; only y remains.
        let fv = p.free_vars(r);
        assert_eq!(fv.len(), 1);
    }

    #[test]
    fn gaussian_detects_inconsistency() {
        let mut p = pool();
        let x = p.var("x", Sort::Bv(16));
        let y = p.var("y", Sort::Bv(16));
        let s = p.bv(BvOp::Add, x, y);
        let c1 = p.bv_const(1, 16);
        let c2 = p.bv_const(2, 16);
        let e1 = p.eq(s, c1);
        let e2 = p.eq(s, c2);
        let f = p.and2(e1, e2);
        let r = gaussian_eliminate(&mut p, f);
        assert_eq!(p.as_bool_const(r), Some(false));
    }

    #[test]
    fn strength_reduction_rewrites_pow2() {
        let mut p = pool();
        let x = p.var("x", Sort::Bv(32));
        let c8 = p.bv_const(8, 32);
        let prod = p.bv(BvOp::Mul, x, c8);
        let r = reduce_strength(&mut p, prod);
        assert!(
            matches!(p.kind(r), TermKind::Bv(BvOp::Shl, _, _)),
            "{}",
            p.display(r)
        );
        let quot = p.bv(BvOp::Udiv, x, c8);
        let r = reduce_strength(&mut p, quot);
        assert!(matches!(p.kind(r), TermKind::Bv(BvOp::Lshr, _, _)));
        let rem = p.bv(BvOp::Urem, x, c8);
        let r = reduce_strength(&mut p, rem);
        assert!(matches!(p.kind(r), TermKind::Bv(BvOp::And, _, _)));
    }

    #[test]
    fn mod_inverse_is_correct() {
        for w in [8u32, 16, 32] {
            for a in [1u64, 3, 5, 7, (0xab % mask(w).max(1)) | 1] {
                let inv = mod_inverse(a, w);
                assert_eq!(a.wrapping_mul(inv) & mask(w), 1, "a={a} w={w}");
            }
        }
    }

    #[test]
    fn pipeline_decides_paper_example() {
        // Fig. 1(b): y1 = x1*2 ∧ z1 = y1 ∧ a = x1 ∧ c = z1 ∧
        //            y2 = x2*2 ∧ z2 = y2 ∧ b = x2 ∧ d = z2 ∧ e ∧ e = c < d
        let mut p = pool();
        let w = Sort::Bv(32);
        let names = ["x1", "y1", "z1", "a", "c", "x2", "y2", "z2", "b", "d"];
        let v: Vec<TermId> = names.iter().map(|n| p.var(n, w)).collect();
        let two = p.bv_const(2, 32);
        let m1 = p.bv(BvOp::Mul, v[0], two);
        let m2 = p.bv(BvOp::Mul, v[5], two);
        let e_bool = p.var("e", Sort::Bool);
        let cmp = p.pred(BvPred::Slt, v[4], v[9]);
        let parts = vec![
            p.eq(v[1], m1),
            p.eq(v[2], v[1]),
            p.eq(v[3], v[0]),
            p.eq(v[4], v[2]),
            p.eq(v[6], m2),
            p.eq(v[7], v[6]),
            p.eq(v[8], v[5]),
            p.eq(v[9], v[7]),
            e_bool,
            p.eq(e_bool, cmp),
        ];
        let f = p.and(&parts);
        let r = preprocess(&mut p, f);
        assert_eq!(r.decided, Some(true), "got {}", p.display(r.term));
    }

    #[test]
    fn pipeline_reports_rounds() {
        let mut p = pool();
        let t = p.tt();
        let r = preprocess(&mut p, t);
        assert_eq!(r.decided, Some(true));
        assert!(r.rounds >= 1);
    }
}

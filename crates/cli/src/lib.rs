//! # fusion-cli
//!
//! `fusion-scan`: a command-line whole-program bug scanner built on the
//! Fusion analysis — the deployment story the paper motivates ("analyzing
//! millions of lines of code in a common personal computer").
//!
//! ```sh
//! fusion-scan [OPTIONS] FILE...
//!     --checker null|cwe23|cwe402|all    which checkers to run (default: all)
//!     --list-checkers                    print every checker's sources, sinks,
//!                                        sanitizers, and propagation policy
//!     --engine fusion|unopt|pinpoint|ar  feasibility engine (default: fusion)
//!     --timeout-secs N                   per-query SMT budget (default: 10)
//!     --solver-timeout-ms N              per-query SMT budget, millisecond precision
//!     --json                             machine-readable output
//!     --stats                            print PDG and cost statistics
//!     --serve                            long-lived analysis service: line-delimited
//!                                        JSON requests on stdin (scan / rescan /
//!                                        query / stats / shutdown), responses on
//!                                        stdout, with the PDG, facts, caches, and
//!                                        verdicts resident between requests
//!     --threads N                        parallel candidate checking
//!     --cache / --no-cache               shared feasibility-verdict cache (default: on)
//!     --stream / --no-stream             streaming discovery→solve pipeline for
//!                                        --threads > 1 (default: on)
//!     --no-incremental                   disable incremental solver sessions (fusion engine)
//!     --absint / --no-absint             abstract-interpretation triage and solver
//!                                        seeding (default: on; refute-only, findings
//!                                        are identical either way)
//!     --validate                         check the compiled IR against the full
//!                                        invariant suite before analyzing
//!     --dot FILE                         export the PDG in Graphviz format
//!     --source NAME                      extra taint-source function (repeatable)
//!     --sink NAME                        extra taint-sink function (repeatable)
//!     --unroll N                         loop/recursion unroll factor (default 2)
//!     --sanitizer NAME                   extra taint-killing function (repeatable)
//!     --shards K                         partition the call graph into K shards and
//!                                        analyze each against an on-disk snapshot;
//!                                        the merged report is byte-identical to the
//!                                        unsharded scan
//!     --shard-workers N                  run shards in N separate fusion-scan
//!                                        --shard-worker processes (out-of-core:
//!                                        no process ever holds the whole program)
//!     --snapshot-dir DIR                 where the partitioned scan keeps its
//!                                        snapshot containers (default: temp dir)
//! ```
//!
//! Multiple files are concatenated into one translation unit, so flows may
//! cross files — the cross-file reasoning Table 5 highlights.
//!
//! `--checker all` (the default) runs all three checkers as **one fused
//! multi-client pass**: one discovery traversal fans out over every
//! `(checker, source)` pair, sink groups are keyed on the sink function
//! alone so queries from different checkers share solver sessions and
//! slice closures, and one verdict cache is shared across every checker
//! (and, with `--threads`, every worker), so identical dependence paths
//! are solved once — even when two different checkers ask. The findings
//! are byte-identical to running each checker alone; `--stats` and
//! `--json` report them per checker.

#![warn(missing_docs)]

pub mod json;
pub mod serve;
pub mod shards;

use fusion::cache::VerdictCache;
use fusion::checkers::{CheckKind, Checker, CheckerSet};
use fusion::engine::{
    analyze_multi_parallel_with_cache, analyze_multi_streaming_with_cache,
    analyze_multi_with_cache, AnalysisOptions, Feasibility, FeasibilityEngine, MultiAnalysisRun,
};
use fusion::graph_solver::{FusionSolver, UnoptimizedGraphSolver};
use fusion::slice_cache::SliceCache;
use fusion_baselines::{ArEngine, PinpointEngine};
use fusion_ir::{compile, CompileOptions};
use fusion_pdg::graph::Pdg;
use fusion_smt::solver::SolverConfig;
use std::fmt;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// Which feasibility engine to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineChoice {
    /// Algorithm 6 (the paper's contribution).
    Fusion,
    /// Algorithm 4 (clone-everything graph solver).
    Unopt,
    /// The conventional Pinpoint-style baseline.
    Pinpoint,
    /// Abstraction refinement.
    Ar,
}

/// Which checkers to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckerChoice {
    /// Null dereference only.
    Null,
    /// CWE-23 only.
    Cwe23,
    /// CWE-402 only.
    Cwe402,
    /// All three.
    All,
}

/// Parsed command line.
#[derive(Debug, Clone)]
pub struct Options {
    /// Input files, in order.
    pub files: Vec<String>,
    /// Engine selection.
    pub engine: EngineChoice,
    /// Checker selection.
    pub checker: CheckerChoice,
    /// Per-query solver budget.
    pub timeout: Duration,
    /// Emit JSON instead of text.
    pub json: bool,
    /// Print statistics.
    pub stats: bool,
    /// Worker threads for candidate checking (1 = sequential).
    pub threads: usize,
    /// Share one feasibility-verdict cache across checkers and workers.
    pub use_cache: bool,
    /// Stream completed sink groups from discovery shards straight into
    /// solve workers (`--threads` > 1). `--no-stream` falls back to the
    /// barrier pipeline (discover everything, then solve). Findings are
    /// byte-identical either way.
    pub stream: bool,
    /// Incremental solver sessions for the fusion engine: queries in one
    /// slice group share a persistent SAT solver and bit-blast memo.
    /// `--no-incremental` forces a cold solve per query (the other engines
    /// are always cold, so the flag is a no-op for them).
    pub incremental: bool,
    /// Abstract-interpretation triage and solver seeding: per-function
    /// interval/known-bits facts refute candidates before the solver runs
    /// and seed its preprocessing. Refute-only — `--no-absint` produces
    /// byte-identical findings, just with more solver work.
    pub absint: bool,
    /// Pre-discovery PDG compaction: frontier reachability pruning,
    /// summary-chain collapse, and isomorphic-fragment verdict sharing.
    /// `--no-compact` (or the `FUSION_NO_COMPACT` environment variable)
    /// disables it; findings are byte-identical either way, compaction
    /// just removes discovery steps and solver queries.
    pub compact: bool,
    /// E-graph simplification of solver terms: bounded equality saturation
    /// with cost-based extraction runs on each local condition before
    /// instantiation and on each assembled query before bit-blasting.
    /// `--no-egraph` (or the `FUSION_NO_EGRAPH` environment variable)
    /// disables it; findings are byte-identical either way, the e-graph
    /// just shrinks the terms and CNF the solver sees.
    pub egraph: bool,
    /// Validate the compiled IR against the full invariant suite
    /// ([`fusion_ir::validate::check_program`]) before analyzing, and
    /// fail with every diagnostic when it is malformed.
    pub validate: bool,
    /// Write the PDG as Graphviz DOT to this path.
    pub dot: Option<String>,
    /// Extra taint-source function names (added to both taint checkers).
    pub extra_sources: Vec<String>,
    /// Extra taint-sink function names (added to both taint checkers).
    pub extra_sinks: Vec<String>,
    /// Loop and recursion unroll factor.
    pub unroll: usize,
    /// Extra taint-sanitizer function names.
    pub extra_sanitizers: Vec<String>,
    /// Print the checker catalog (kind, sources, sinks, sanitizers,
    /// propagation policy) and exit without scanning.
    pub list_checkers: bool,
    /// Run as a long-lived analysis service: read line-delimited JSON
    /// requests from stdin (`scan`, `rescan`, `query`, `stats`,
    /// `shutdown`) and write one JSON response line per request, keeping
    /// the PDG, compacted view, absint facts, slice closures, and
    /// verdict cache resident between requests so a `rescan` after an
    /// edit re-analyzes only what the edit reaches.
    pub serve: bool,
    /// Partition the call graph into this many shards and analyze each
    /// against an on-disk snapshot, merging per-shard outcomes into a
    /// report byte-identical to the unsharded scan. 0 (the default)
    /// disables partitioning.
    pub shards: usize,
    /// Run shards as separate `fusion-scan --shard-worker` processes
    /// instead of in-process (requires `--shards`). 0 (the default)
    /// keeps every shard in this process.
    pub shard_workers: usize,
    /// Directory for the on-disk snapshot a partitioned scan routes its
    /// program, facts, and per-shard outcomes through. Defaults to a
    /// scan-scoped directory under the system temp dir.
    pub snapshot_dir: Option<String>,
    /// Run as a shard worker: read one line-delimited JSON job
    /// (`{"snapshot", "shard", "shards", "out"}`) from stdin, analyze
    /// that shard of the snapshot, write its outcomes to `out`, and
    /// respond with the shard's counters. Spawned by the coordinator;
    /// not meant for interactive use.
    pub shard_worker: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            files: Vec::new(),
            engine: EngineChoice::Fusion,
            checker: CheckerChoice::All,
            timeout: Duration::from_secs(10),
            json: false,
            stats: false,
            threads: 1,
            use_cache: true,
            stream: true,
            incremental: true,
            absint: true,
            compact: std::env::var_os("FUSION_NO_COMPACT").is_none(),
            egraph: std::env::var_os("FUSION_NO_EGRAPH").is_none(),
            validate: false,
            dot: None,
            extra_sources: Vec::new(),
            extra_sinks: Vec::new(),
            unroll: 2,
            extra_sanitizers: Vec::new(),
            list_checkers: false,
            serve: false,
            shards: 0,
            shard_workers: 0,
            snapshot_dir: None,
            shard_worker: false,
        }
    }
}

/// A CLI error with a user-facing message.
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

/// Parses command-line arguments (excluding `argv[0]`).
///
/// # Errors
///
/// Returns [`CliError`] on unknown flags, missing values, or no input
/// files.
pub fn parse_args(args: &[String]) -> Result<Options, CliError> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--engine" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError("--engine needs a value".into()))?;
                opts.engine = match v.as_str() {
                    "fusion" => EngineChoice::Fusion,
                    "unopt" => EngineChoice::Unopt,
                    "pinpoint" => EngineChoice::Pinpoint,
                    "ar" => EngineChoice::Ar,
                    other => return Err(CliError(format!("unknown engine `{other}`"))),
                };
            }
            "--checker" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError("--checker needs a value".into()))?;
                opts.checker = match v.as_str() {
                    "null" => CheckerChoice::Null,
                    "cwe23" => CheckerChoice::Cwe23,
                    "cwe402" => CheckerChoice::Cwe402,
                    "all" => CheckerChoice::All,
                    other => return Err(CliError(format!("unknown checker `{other}`"))),
                };
            }
            "--timeout-secs" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError("--timeout-secs needs a value".into()))?;
                let secs: u64 = v
                    .parse()
                    .map_err(|_| CliError(format!("invalid timeout `{v}`")))?;
                opts.timeout = Duration::from_secs(secs);
            }
            "--solver-timeout-ms" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError("--solver-timeout-ms needs a value".into()))?;
                let ms: u64 = v
                    .parse()
                    .map_err(|_| CliError(format!("invalid timeout `{v}`")))?;
                opts.timeout = Duration::from_millis(ms);
            }
            "--threads" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError("--threads needs a value".into()))?;
                opts.threads = v
                    .parse()
                    .map_err(|_| CliError(format!("invalid thread count `{v}`")))?;
                if opts.threads == 0 {
                    return Err(CliError("--threads must be at least 1".into()));
                }
            }
            "--dot" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError("--dot needs a value".into()))?;
                opts.dot = Some(v.clone());
            }
            "--source" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError("--source needs a value".into()))?;
                opts.extra_sources.push(v.clone());
            }
            "--sink" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError("--sink needs a value".into()))?;
                opts.extra_sinks.push(v.clone());
            }
            "--sanitizer" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError("--sanitizer needs a value".into()))?;
                opts.extra_sanitizers.push(v.clone());
            }
            "--unroll" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError("--unroll needs a value".into()))?;
                opts.unroll = v
                    .parse()
                    .map_err(|_| CliError(format!("invalid unroll factor `{v}`")))?;
                if opts.unroll == 0 {
                    return Err(CliError("--unroll must be at least 1".into()));
                }
            }
            "--json" => opts.json = true,
            "--stats" => opts.stats = true,
            "--cache" => opts.use_cache = true,
            "--no-cache" => opts.use_cache = false,
            "--stream" => opts.stream = true,
            "--no-stream" => opts.stream = false,
            "--no-incremental" => opts.incremental = false,
            "--absint" => opts.absint = true,
            "--no-absint" => opts.absint = false,
            "--compact" => opts.compact = true,
            "--no-compact" => opts.compact = false,
            "--egraph" => opts.egraph = true,
            "--no-egraph" => opts.egraph = false,
            "--validate" => opts.validate = true,
            "--list-checkers" => opts.list_checkers = true,
            "--serve" => opts.serve = true,
            "--shards" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError("--shards needs a value".into()))?;
                opts.shards = v
                    .parse()
                    .map_err(|_| CliError(format!("invalid shard count `{v}`")))?;
                if opts.shards == 0 {
                    return Err(CliError("--shards must be at least 1".into()));
                }
            }
            "--shard-workers" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError("--shard-workers needs a value".into()))?;
                opts.shard_workers = v
                    .parse()
                    .map_err(|_| CliError(format!("invalid worker count `{v}`")))?;
            }
            "--snapshot-dir" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError("--snapshot-dir needs a value".into()))?;
                opts.snapshot_dir = Some(v.clone());
            }
            "--shard-worker" => opts.shard_worker = true,
            "--help" | "-h" => {
                return Err(CliError(
                    "usage: fusion-scan [--engine fusion|unopt|pinpoint|ar] \
                     [--checker null|cwe23|cwe402|all] [--list-checkers] \
                     [--timeout-secs N] \
                     [--solver-timeout-ms N] [--threads N] [--cache|--no-cache] \
                     [--stream|--no-stream] [--no-incremental] \
                     [--absint|--no-absint] [--compact|--no-compact] \
                     [--egraph|--no-egraph] [--validate] [--dot FILE] \
                     [--shards K] [--shard-workers N] [--snapshot-dir DIR] \
                     [--json] [--stats] [--serve] FILE..."
                        .into(),
                ))
            }
            flag if flag.starts_with("--") => {
                return Err(CliError(format!("unknown flag `{flag}`")))
            }
            file => opts.files.push(file.to_owned()),
        }
    }
    if opts.serve && !opts.files.is_empty() {
        return Err(CliError(
            "--serve reads programs from stdin requests; no input files allowed".into(),
        ));
    }
    if opts.shard_workers > 0 && opts.shards == 0 {
        return Err(CliError("--shard-workers requires --shards".into()));
    }
    if opts.shard_worker && !opts.files.is_empty() {
        return Err(CliError(
            "--shard-worker reads its job from stdin; no input files allowed".into(),
        ));
    }
    if opts.shard_worker && opts.serve {
        return Err(CliError("--shard-worker conflicts with --serve".into()));
    }
    if opts.files.is_empty() && !opts.list_checkers && !opts.serve && !opts.shard_worker {
        return Err(CliError("no input files (try --help)".into()));
    }
    Ok(opts)
}

/// Expands the `--checker` choice into the fused [`CheckerSet`], applying
/// the `--source`/`--sink`/`--sanitizer` extensions to the taint
/// checkers, and collects user-facing warnings — in particular when those
/// extensions cannot apply because only the null checker was selected
/// (the null checker seeds from `null` constants, not function names).
pub fn effective_checkers(opts: &Options) -> (CheckerSet, Vec<String>) {
    let mut checkers: Vec<Checker> = match opts.checker {
        CheckerChoice::Null => vec![Checker::null_deref()],
        CheckerChoice::Cwe23 => vec![Checker::cwe23()],
        CheckerChoice::Cwe402 => vec![Checker::cwe402()],
        CheckerChoice::All => fusion::checkers::default_checkers(),
    };
    let mut warnings = Vec::new();
    let mut ignored = Vec::new();
    if !opts.extra_sources.is_empty() {
        ignored.push("--source");
    }
    if !opts.extra_sinks.is_empty() {
        ignored.push("--sink");
    }
    if !opts.extra_sanitizers.is_empty() {
        ignored.push("--sanitizer");
    }
    if !ignored.is_empty() && checkers.iter().all(|c| c.kind == CheckKind::NullDeref) {
        warnings.push(format!(
            "{} only extend the taint checkers (cwe23, cwe402) and are \
             ignored under `--checker null`; the null checker seeds from \
             `null` constants, not function names",
            ignored.join("/")
        ));
    }
    for c in &mut checkers {
        if c.kind != CheckKind::NullDeref {
            c.source_fns.extend(opts.extra_sources.iter().cloned());
            c.sink_fns.extend(opts.extra_sinks.iter().cloned());
            c.sanitizer_fns
                .extend(opts.extra_sanitizers.iter().cloned());
        }
    }
    (CheckerSet::new(checkers), warnings)
}

/// Renders the `--list-checkers` catalog: each default checker's kind,
/// source/sink/sanitizer function names, and propagation policy.
pub fn list_checkers_text() -> String {
    let mut out = String::new();
    for c in fusion::checkers::default_checkers() {
        let _ = writeln!(out, "{}", c.kind);
        let sources = if c.source_fns.is_empty() {
            "null constants".to_owned()
        } else {
            c.source_fns.join(", ")
        };
        let sanitizers = if c.sanitizer_fns.is_empty() {
            "(none)".to_owned()
        } else {
            c.sanitizer_fns.join(", ")
        };
        let _ = writeln!(out, "  sources:     {sources}");
        let _ = writeln!(out, "  sinks:       {}", c.sink_fns.join(", "));
        let _ = writeln!(out, "  sanitizers:  {sanitizers}");
        let _ = writeln!(
            out,
            "  propagation: through-arithmetic={}, through-extern-calls={}",
            c.through_binary, c.through_extern
        );
    }
    out
}

/// One finding in machine-readable form.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Checker that produced the finding.
    pub checker: String,
    /// Function containing the source.
    pub source_function: String,
    /// Function containing the sink.
    pub sink_function: String,
    /// `feasible` or `undecided` (solver budget exhausted).
    pub verdict: String,
    /// Number of dependence-graph vertices on the witness path.
    pub path_length: usize,
}

/// One checker's share of a fused scan, for `--stats` and `--json`.
#[derive(Debug, Clone, Default)]
pub struct CheckerScanStats {
    /// Checker name (`null-deref`, `cwe-23`, `cwe-402`).
    pub checker: String,
    /// Findings reported by this checker.
    pub findings: usize,
    /// This checker's candidates proven infeasible.
    pub suppressed: usize,
    /// Candidates discovered for this checker.
    pub candidates: usize,
    /// Feasibility queries issued for this checker (cache hits excluded).
    pub queries: usize,
    /// Verdict-cache hits while deciding this checker's candidates.
    pub cache_hits: u64,
    /// Verdict-cache misses while deciding this checker's candidates.
    pub cache_misses: u64,
    /// Discovery DFS steps spent on this checker's sources.
    pub discovery_steps: u64,
    /// Engine milliseconds answering this checker's queries.
    pub solve_ms: f64,
}

/// Machine-readable scan result.
#[derive(Debug, Clone, Default)]
pub struct ScanReport {
    /// All findings across checkers.
    pub findings: Vec<Finding>,
    /// Candidates proven infeasible (suppressed).
    pub suppressed: usize,
    /// Per-checker breakdowns, in checker order.
    pub checkers: Vec<CheckerScanStats>,
    /// User-facing warnings (e.g. extras ignored under `--checker null`).
    pub warnings: Vec<String>,
    /// Incremental solver sessions opened across the scan (fusion
    /// engine; 0 for the always-cold engines).
    pub sessions_opened: u64,
    /// PDG vertex count.
    pub vertices: usize,
    /// PDG edge count.
    pub edges: usize,
    /// Total wall-clock milliseconds.
    pub elapsed_ms: f64,
    /// Peak tracked memory in bytes.
    pub peak_memory_bytes: u64,
    /// Verdict-cache hits across the whole scan (0 with `--no-cache`).
    pub cache_hits: u64,
    /// Verdict-cache misses across the whole scan.
    pub cache_misses: u64,
    /// Bytes retained by the shared verdict cache at the end of the scan.
    pub cache_bytes: u64,
    /// Wall-clock milliseconds of candidate discovery (summed over runs;
    /// overlaps solving in the streaming pipeline).
    pub discover_ms: f64,
    /// Engine milliseconds computing slice closures and constraints
    /// (summed over workers and runs).
    pub slice_ms: f64,
    /// Engine milliseconds building terms and instances.
    pub translate_ms: f64,
    /// Engine milliseconds deciding satisfiability.
    pub solve_ms: f64,
    /// Slice closures computed from scratch across the scan.
    pub slices_computed: u64,
    /// Slice closures reused (per-candidate union or shared memo).
    pub slices_reused: u64,
    /// Bytes retained by the shared slice-closure cache at scan end.
    pub slice_cache_bytes: u64,
    /// Dependence paths refuted by abstract-interpretation triage before
    /// any solver work (0 with `--no-absint`).
    pub triaged_paths: u64,
    /// Candidates whose *every* path was triaged away — decided with zero
    /// slice, translation, or solver work.
    pub triaged_candidates: u64,
    /// Sink groups whose solver session never opened because triage
    /// answered all their queries.
    pub sessions_skipped: u64,
    /// Slice-closure computations avoided by fully-triaged candidates.
    pub slices_skipped: u64,
    /// Assembled solver queries refuted by seeded known-bits
    /// preprocessing before bit-blasting.
    pub absint_refutes: u64,
    /// PDG vertices removed by compaction's frontier reachability pruning,
    /// summed per checker (0 with `--no-compact`).
    pub vertices_pruned: u64,
    /// Checker-taken PDG edges with a pruned endpoint, summed per checker.
    pub edges_pruned: u64,
    /// Summary corridors collapsed into composite chains, summed per
    /// checker.
    pub chains_collapsed: u64,
    /// Solver queries answered by compaction's isomorphic-fragment
    /// verdict memo instead of the engine.
    pub iso_hits: u64,
    /// E-classes built by equality-saturation term simplification across
    /// the scan (0 with `--no-egraph`).
    pub egraph_classes: u64,
    /// Rewrites (rule-driven e-class unions) the e-graph applied.
    pub egraph_rewrites: u64,
    /// E-graph passes that saturated within budget.
    pub egraph_saturated: u64,
    /// E-graph passes abandoned by the e-node/rebuild caps.
    pub egraph_cap_hits: u64,
    /// Term-DAG nodes removed by cost-based extraction (the
    /// extracted-term delta).
    pub egraph_nodes_saved: u64,
    /// Per-function absint fact sets recomputed by a warm `rescan`'s
    /// dirtiness invalidation (0 for batch scans and cold `scan`s).
    pub facts_invalidated: u64,
    /// Slice closures evicted by warm-rescan invalidation.
    pub slices_invalidated: u64,
    /// Cached verdicts evicted by warm-rescan invalidation.
    pub verdicts_invalidated: u64,
    /// Candidates the run actually re-discovered and re-solved: in
    /// service mode, the affected work items' candidates (the rest
    /// replayed recorded outcomes); 0 in the batch drivers.
    pub candidates_reanalyzed: u64,
    /// Shards the partitioned scan was split into (0 for unsharded
    /// scans).
    pub shards: u64,
    /// Owned-function summaries the shards produced for the cross-shard
    /// interface.
    pub summaries_exported: u64,
    /// Facts/summaries shards imported from the snapshot instead of
    /// recomputing (non-owned closure functions).
    pub summaries_imported: u64,
    /// Bytes of snapshot containers written by the partitioned scan.
    pub snapshot_bytes_written: u64,
    /// Bytes of snapshot sections actually read back (lazy loading makes
    /// this less than what was written).
    pub snapshot_bytes_read: u64,
}

impl ScanReport {
    /// Renders the report as pretty-printed JSON (stable member order).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\n      \"checker\": \"{}\",\n      \"source_function\": \"{}\",\
                 \n      \"sink_function\": \"{}\",\n      \"verdict\": \"{}\",\
                 \n      \"path_length\": {}\n    }}",
                json::escape(&f.checker),
                json::escape(&f.source_function),
                json::escape(&f.sink_function),
                json::escape(&f.verdict),
                f.path_length
            );
        }
        if !self.findings.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n  \"checkers\": [");
        for (i, c) in self.checkers.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\n      \"checker\": \"{}\",\n      \"findings\": {},\
                 \n      \"suppressed\": {},\n      \"candidates\": {},\
                 \n      \"queries\": {},\n      \"cache_hits\": {},\
                 \n      \"cache_misses\": {},\n      \"discovery_steps\": {},\
                 \n      \"solve_ms\": {}\n    }}",
                json::escape(&c.checker),
                c.findings,
                c.suppressed,
                c.candidates,
                c.queries,
                c.cache_hits,
                c.cache_misses,
                c.discovery_steps,
                c.solve_ms
            );
        }
        if !self.checkers.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n  \"warnings\": [");
        for (i, w) in self.warnings.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "\"{}\"", json::escape(w));
        }
        let _ = write!(
            s,
            "],\n  \"sessions_opened\": {},\n  \"suppressed\": {},\n  \"vertices\": {},\n  \"edges\": {},\
             \n  \"elapsed_ms\": {},\n  \"peak_memory_bytes\": {},\
             \n  \"cache_hits\": {},\n  \"cache_misses\": {},\n  \"cache_bytes\": {},\
             \n  \"discover_ms\": {},\n  \"slice_ms\": {},\n  \"translate_ms\": {},\
             \n  \"solve_ms\": {},\n  \"slices_computed\": {},\n  \"slices_reused\": {},\
             \n  \"slice_cache_bytes\": {},\n  \"triaged_paths\": {},\
             \n  \"triaged_candidates\": {},\n  \"sessions_skipped\": {},\
             \n  \"slices_skipped\": {},\n  \"absint_refutes\": {},\
             \n  \"vertices_pruned\": {},\n  \"edges_pruned\": {},\
             \n  \"chains_collapsed\": {},\n  \"iso_hits\": {},\
             \n  \"egraph_classes\": {},\n  \"egraph_rewrites\": {},\
             \n  \"egraph_saturated\": {},\n  \"egraph_cap_hits\": {},\
             \n  \"egraph_nodes_saved\": {},\n  \"facts_invalidated\": {},\
             \n  \"slices_invalidated\": {},\n  \"verdicts_invalidated\": {},\
             \n  \"candidates_reanalyzed\": {},\n  \"shards\": {},\
             \n  \"summaries_exported\": {},\n  \"summaries_imported\": {},\
             \n  \"snapshot_bytes_written\": {},\n  \"snapshot_bytes_read\": {}\n}}",
            self.sessions_opened,
            self.suppressed,
            self.vertices,
            self.edges,
            self.elapsed_ms,
            self.peak_memory_bytes,
            self.cache_hits,
            self.cache_misses,
            self.cache_bytes,
            self.discover_ms,
            self.slice_ms,
            self.translate_ms,
            self.solve_ms,
            self.slices_computed,
            self.slices_reused,
            self.slice_cache_bytes,
            self.triaged_paths,
            self.triaged_candidates,
            self.sessions_skipped,
            self.slices_skipped,
            self.absint_refutes,
            self.vertices_pruned,
            self.edges_pruned,
            self.chains_collapsed,
            self.iso_hits,
            self.egraph_classes,
            self.egraph_rewrites,
            self.egraph_saturated,
            self.egraph_cap_hits,
            self.egraph_nodes_saved,
            self.facts_invalidated,
            self.slices_invalidated,
            self.verdicts_invalidated,
            self.candidates_reanalyzed,
            self.shards,
            self.summaries_exported,
            self.summaries_imported,
            self.snapshot_bytes_written,
            self.snapshot_bytes_read
        );
        s
    }
}

fn make_engine(
    choice: EngineChoice,
    timeout: Duration,
    incremental: bool,
    egraph: bool,
) -> Box<dyn FeasibilityEngine> {
    let mut cfg = SolverConfig {
        timeout: Some(timeout),
        ..Default::default()
    };
    cfg.egraph.enabled = egraph;
    match choice {
        EngineChoice::Fusion => {
            let mut engine = FusionSolver::new(cfg);
            engine.incremental = incremental;
            Box::new(engine)
        }
        EngineChoice::Unopt => Box::new(UnoptimizedGraphSolver::new(cfg)),
        EngineChoice::Pinpoint => Box::new(PinpointEngine::new(cfg)),
        EngineChoice::Ar => Box::new(ArEngine::new(cfg)),
    }
}

/// Copies a run's stage counters, per-checker breakdowns, and findings
/// into `report` (shared by the one-shot scan and the `--serve` loop).
fn fill_report(report: &mut ScanReport, program: &fusion_ir::ssa::Program, run: &MultiAnalysisRun) {
    report.cache_hits = run.cache.hits;
    report.cache_misses = run.cache.misses;
    report.discover_ms = run.stages.discover_wall.as_secs_f64() * 1e3;
    report.slice_ms = run.stages.slice_wall.as_secs_f64() * 1e3;
    report.translate_ms = run.stages.translate_wall.as_secs_f64() * 1e3;
    report.solve_ms = run.stages.solve_wall.as_secs_f64() * 1e3;
    report.slices_computed = run.stages.slices_computed;
    report.slices_reused = run.stages.slices_reused;
    report.sessions_opened = run.stages.sessions_opened;
    report.triaged_paths = run.stages.triaged_paths;
    report.triaged_candidates = run.stages.triaged_candidates;
    report.sessions_skipped = run.stages.sessions_skipped;
    report.slices_skipped = run.stages.slices_skipped;
    report.absint_refutes = run.stages.absint_refutes;
    report.vertices_pruned = run.stages.vertices_pruned;
    report.edges_pruned = run.stages.edges_pruned;
    report.chains_collapsed = run.stages.chains_collapsed;
    report.iso_hits = run.stages.iso_hits;
    report.egraph_classes = run.stages.egraph_classes;
    report.egraph_rewrites = run.stages.egraph_rewrites;
    report.egraph_saturated = run.stages.egraph_saturated;
    report.egraph_cap_hits = run.stages.egraph_cap_hits;
    report.egraph_nodes_saved = run.stages.egraph_nodes_saved;
    report.facts_invalidated = run.stages.facts_invalidated;
    report.slices_invalidated = run.stages.slices_invalidated;
    report.verdicts_invalidated = run.stages.verdicts_invalidated;
    report.candidates_reanalyzed = run.stages.candidates_reanalyzed;
    report.shards = run.stages.shards;
    report.summaries_exported = run.stages.summaries_exported;
    report.summaries_imported = run.stages.summaries_imported;
    report.snapshot_bytes_written = run.stages.snapshot_bytes_written;
    report.snapshot_bytes_read = run.stages.snapshot_bytes_read;
    // One true whole-scan peak: every engine live during the single fused
    // pass plus the graph and caches — not a max over per-checker passes.
    report.peak_memory_bytes = run.peak_memory;
    for b in &run.checkers {
        report.suppressed += b.suppressed;
        report.checkers.push(CheckerScanStats {
            checker: b.kind.to_string(),
            findings: b.reports.len(),
            suppressed: b.suppressed,
            candidates: b.candidates,
            queries: b.queries,
            cache_hits: b.cache_hits,
            cache_misses: b.cache_misses,
            discovery_steps: b.discovery_steps,
            solve_ms: b.solve_wall.as_secs_f64() * 1e3,
        });
        for r in &b.reports {
            report.findings.push(Finding {
                checker: b.kind.to_string(),
                source_function: program.name(program.func(r.source.func).name).to_owned(),
                sink_function: program.name(program.func(r.sink.func).name).to_owned(),
                verdict: match r.verdict {
                    Feasibility::Feasible => "feasible".into(),
                    Feasibility::Unknown => "undecided".into(),
                    Feasibility::Infeasible => unreachable!("not reported"),
                },
                path_length: r.path.nodes.len(),
            });
        }
    }
}

/// Runs a scan over already-loaded source text.
///
/// # Errors
///
/// Returns [`CliError`] for compile errors (with position information).
pub fn scan_source(source: &str, opts: &Options) -> Result<ScanReport, CliError> {
    let started = std::time::Instant::now();
    let compile_opts = CompileOptions {
        loop_unroll: opts.unroll,
        recursion_unroll: opts.unroll,
    };
    let program =
        compile(source, compile_opts).map_err(|e| CliError(format!("compile error: {e}")))?;
    if opts.validate {
        let errs = fusion_ir::validate::check_program(&program);
        if !errs.is_empty() {
            let mut msg = format!("IR validation failed with {} diagnostic(s):", errs.len());
            for e in &errs {
                let _ = write!(msg, "\n  {e}");
            }
            return Err(CliError(msg));
        }
    }
    let pdg = Pdg::build(&program);
    let (set, warnings) = effective_checkers(opts);
    let mut report = ScanReport {
        vertices: pdg.stats().vertices,
        edges: pdg.stats().edges(),
        warnings,
        ..Default::default()
    };
    if let Some(path) = &opts.dot {
        let dot = fusion_pdg::dot::pdg_to_dot(&program, &pdg, None);
        std::fs::write(path, dot).map_err(|e| CliError(format!("cannot write `{path}`: {e}")))?;
    }
    // One verdict cache and one slice-closure cache for the whole scan,
    // shared across checkers and, in parallel runs, across workers; the
    // whole checker set runs as one fused multi-client pass.
    let shared_cache = VerdictCache::new();
    let cache = opts.use_cache.then_some(&shared_cache);
    let slice_cache = Arc::new(SliceCache::new());
    let mut analysis_opts = AnalysisOptions::new().with_slice_cache(Arc::clone(&slice_cache));
    analysis_opts.absint = opts.absint;
    analysis_opts.compact = opts.compact;
    let run: MultiAnalysisRun = if opts.shards > 0 {
        let engine_choice = opts.engine;
        let timeout = opts.timeout;
        let incremental = opts.incremental;
        let egraph = opts.egraph;
        let factory = move || make_engine(engine_choice, timeout, incremental, egraph);
        let sharded = if opts.shard_workers > 0 {
            shards::analyze_sharded_multiprocess(
                &program,
                &set,
                &factory,
                opts,
                &analysis_opts,
                cache,
            )?
        } else {
            fusion::shard::analyze_sharded(
                &program,
                &set,
                &factory,
                opts.threads,
                &analysis_opts,
                cache,
                opts.shards,
                opts.snapshot_dir.as_deref().map(std::path::Path::new),
            )
            .map_err(|e| CliError(format!("partitioned scan failed: {e}")))?
        };
        sharded.run
    } else if opts.threads > 1 {
        let engine_choice = opts.engine;
        let timeout = opts.timeout;
        let incremental = opts.incremental;
        let egraph = opts.egraph;
        let factory = move || make_engine(engine_choice, timeout, incremental, egraph);
        if opts.stream {
            analyze_multi_streaming_with_cache(
                &program,
                &pdg,
                &set,
                &factory,
                opts.threads,
                &analysis_opts,
                cache,
            )
        } else {
            analyze_multi_parallel_with_cache(
                &program,
                &pdg,
                &set,
                &factory,
                opts.threads,
                &analysis_opts,
                cache,
            )
        }
    } else {
        let mut engine = make_engine(opts.engine, opts.timeout, opts.incremental, opts.egraph);
        analyze_multi_with_cache(&program, &pdg, &set, engine.as_mut(), &analysis_opts, cache)
    };
    fill_report(&mut report, &program, &run);
    report.elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    report.cache_bytes = cache.map(|c| c.bytes()).unwrap_or(0);
    report.slice_cache_bytes = slice_cache.bytes();
    Ok(report)
}

/// Loads the input files, runs the scan, and renders output to `out`.
///
/// Returns the process exit code: 0 for a clean scan, 1 when findings
/// exist, 2 on errors.
pub fn run(args: &[String], out: &mut dyn std::io::Write) -> i32 {
    let opts = match parse_args(args) {
        Ok(o) => o,
        Err(e) => {
            let _ = writeln!(out, "{e}");
            return 2;
        }
    };
    if opts.list_checkers {
        let _ = write!(out, "{}", list_checkers_text());
        return 0;
    }
    if opts.serve {
        let stdin = std::io::stdin();
        return serve::serve_loop(&opts, stdin.lock(), out);
    }
    if opts.shard_worker {
        let stdin = std::io::stdin();
        return shards::shard_worker_loop(&opts, stdin.lock(), out);
    }
    let mut source = String::new();
    for f in &opts.files {
        match std::fs::read_to_string(f) {
            Ok(s) => {
                source.push_str(&s);
                source.push('\n');
            }
            Err(e) => {
                let _ = writeln!(out, "cannot read `{f}`: {e}");
                return 2;
            }
        }
    }
    let report = match scan_source(&source, &opts) {
        Ok(r) => r,
        Err(e) => {
            let _ = writeln!(out, "{e}");
            return 2;
        }
    };
    if opts.json {
        let _ = writeln!(out, "{}", report.to_json());
    } else {
        for w in &report.warnings {
            let _ = writeln!(out, "warning: {w}");
        }
        for f in &report.findings {
            let _ = writeln!(
                out,
                "[{}] {} flow: {} -> {} ({} vertices)",
                f.verdict, f.checker, f.source_function, f.sink_function, f.path_length
            );
        }
        let _ = writeln!(
            out,
            "{} finding(s), {} candidate(s) suppressed as infeasible",
            report.findings.len(),
            report.suppressed
        );
        if opts.stats {
            let _ = writeln!(
                out,
                "pdg: {} vertices, {} edges; {:.1} ms; peak {} KiB \
                 (cache {} B, {} hit / {} miss); {} session(s) opened",
                report.vertices,
                report.edges,
                report.elapsed_ms,
                report.peak_memory_bytes / 1024,
                report.cache_bytes,
                report.cache_hits,
                report.cache_misses,
                report.sessions_opened
            );
            for c in &report.checkers {
                let _ = writeln!(
                    out,
                    "checker {}: {} finding(s), {} suppressed, {} candidate(s), \
                     {} query(ies) ({} hit / {} miss), {} discovery step(s), \
                     solve {:.1} ms",
                    c.checker,
                    c.findings,
                    c.suppressed,
                    c.candidates,
                    c.queries,
                    c.cache_hits,
                    c.cache_misses,
                    c.discovery_steps,
                    c.solve_ms
                );
            }
            let _ = writeln!(
                out,
                "stages: discover {:.1} ms; slice {:.1} ms \
                 ({} computed / {} reused, {} B retained); \
                 translate {:.1} ms; solve {:.1} ms",
                report.discover_ms,
                report.slice_ms,
                report.slices_computed,
                report.slices_reused,
                report.slice_cache_bytes,
                report.translate_ms,
                report.solve_ms
            );
            // Avoided work: what the abstract-interpretation triage
            // answered before the solver pipeline ever ran.
            let _ = writeln!(
                out,
                "avoided: {} path(s) triaged, {} candidate(s) fully refuted pre-solve",
                report.triaged_paths, report.triaged_candidates
            );
            let _ = writeln!(
                out,
                "avoided: {} session(s) skipped, {} slice closure(s) skipped, \
                 {} seeded solver refutation(s)",
                report.sessions_skipped, report.slices_skipped, report.absint_refutes
            );
            // Compaction: dead graph the pre-discovery pass removed and
            // solver queries answered by isomorphic-fragment sharing.
            let _ = writeln!(
                out,
                "compaction: {} vertex(es) pruned, {} edge(s) pruned, \
                 {} chain(s) collapsed, {} iso hit(s)",
                report.vertices_pruned,
                report.edges_pruned,
                report.chains_collapsed,
                report.iso_hits
            );
            // E-graph: equality-saturation simplification of solver terms.
            let _ = writeln!(
                out,
                "egraph: {} class(es), {} rewrite(s), {} saturated, \
                 {} cap hit(s), {} node(s) saved",
                report.egraph_classes,
                report.egraph_rewrites,
                report.egraph_saturated,
                report.egraph_cap_hits,
                report.egraph_nodes_saved
            );
            // Service mode: dirtiness-driven invalidation (all zero for
            // one-shot batch scans).
            let _ = writeln!(
                out,
                "incremental: {} fact set(s), {} slice(s), {} verdict(s) \
                 invalidated; {} candidate(s) reanalyzed",
                report.facts_invalidated,
                report.slices_invalidated,
                report.verdicts_invalidated,
                report.candidates_reanalyzed
            );
            // Partitioned scans: the out-of-core sharding counters (all
            // zero for unsharded scans).
            let _ = writeln!(
                out,
                "sharding: {} shard(s), {} summary(ies) exported / {} imported; \
                 snapshot {} B written, {} B read",
                report.shards,
                report.summaries_exported,
                report.summaries_imported,
                report.snapshot_bytes_written,
                report.snapshot_bytes_read
            );
        }
    }
    if report.findings.is_empty() {
        0
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_defaults() {
        let o = parse_args(&args(&["a.fus"])).unwrap();
        assert_eq!(o.engine, EngineChoice::Fusion);
        assert_eq!(o.checker, CheckerChoice::All);
        assert!(!o.json);
        assert_eq!(o.files, vec!["a.fus"]);
    }

    #[test]
    fn parses_flags() {
        let o = parse_args(&args(&[
            "--engine",
            "pinpoint",
            "--checker",
            "cwe23",
            "--timeout-secs",
            "3",
            "--json",
            "--stats",
            "x.fus",
            "y.fus",
        ]))
        .unwrap();
        assert_eq!(o.engine, EngineChoice::Pinpoint);
        assert_eq!(o.checker, CheckerChoice::Cwe23);
        assert_eq!(o.timeout, Duration::from_secs(3));
        assert!(o.json && o.stats);
        assert_eq!(o.files.len(), 2);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&args(&[])).is_err());
        assert!(parse_args(&args(&["--engine"])).is_err());
        assert!(parse_args(&args(&["--engine", "z3", "a"])).is_err());
        assert!(parse_args(&args(&["--nope", "a"])).is_err());
    }

    #[test]
    fn scan_reports_and_suppresses() {
        let src = "extern fn deref(p);\n\
            fn f(x) { let q = null; let r = 1; if (x > 0) { r = q; } deref(r); return 0; }\n\
            fn g(x) { let q = null; let r = 1; if (x * 2 == 7) { r = q; } deref(r); return 0; }";
        let opts = Options {
            checker: CheckerChoice::Null,
            ..Default::default()
        };
        let report = scan_source(src, &opts).unwrap();
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.suppressed, 1);
        assert_eq!(report.findings[0].source_function, "f");
        assert_eq!(report.findings[0].verdict, "feasible");
    }

    #[test]
    fn scan_all_checkers() {
        let src = "extern fn deref(p); extern fn gets(); extern fn fopen(p);\n\
            fn f() { let q = null; deref(q); let i = gets(); fopen(i); return 0; }";
        let opts = Options::default();
        let report = scan_source(src, &opts).unwrap();
        let kinds: Vec<&str> = report.findings.iter().map(|f| f.checker.as_str()).collect();
        assert!(kinds.contains(&"null-deref"));
        assert!(kinds.contains(&"cwe-23"));
    }

    #[test]
    fn compile_errors_are_reported() {
        let opts = Options::default();
        let err = scan_source("fn f( {", &opts).unwrap_err();
        assert!(err.0.contains("compile error"));
    }

    #[test]
    fn run_returns_exit_codes() {
        let mut out = Vec::new();
        // 2: no files
        assert_eq!(run(&[], &mut out), 2);
        // Write a temp file with a clean program.
        let dir = std::env::temp_dir();
        let clean = dir.join("fusion_cli_clean.fus");
        std::fs::write(&clean, "fn f(x) { return x; }").unwrap();
        let mut out = Vec::new();
        assert_eq!(run(&[clean.display().to_string()], &mut out), 0);
        // 1: findings present.
        let buggy = dir.join("fusion_cli_buggy.fus");
        std::fs::write(
            &buggy,
            "extern fn deref(p); fn f() { let q = null; deref(q); return 0; }",
        )
        .unwrap();
        let mut out = Vec::new();
        assert_eq!(run(&[buggy.display().to_string()], &mut out), 1);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("null-deref"));
    }

    #[test]
    fn custom_sources_and_sinks() {
        let src = "extern fn fetch(); extern fn exfil(x);\n\
            fn f() { let d = fetch(); exfil(d); return 0; }";
        let opts = Options {
            checker: CheckerChoice::Cwe402,
            extra_sources: vec!["fetch".into()],
            extra_sinks: vec!["exfil".into()],
            ..Default::default()
        };
        let report = scan_source(src, &opts).unwrap();
        assert_eq!(report.findings.len(), 1);
        // Without the extensions nothing is flagged.
        let plain = Options {
            checker: CheckerChoice::Cwe402,
            ..Default::default()
        };
        assert!(scan_source(src, &plain).unwrap().findings.is_empty());
    }

    #[test]
    fn unroll_factor_changes_reachability() {
        // The guard i == 4 needs four loop iterations: invisible at the
        // default unroll of 2, found at 4.
        let src = "extern fn deref(p);\n\
            fn f(n) { let q = null; let r = 1; let i = 0;\n\
              while (i < n) { i = i + 1; }\n\
              if (i == 4) { r = q; } deref(r); return 0; }";
        let shallow = Options {
            checker: CheckerChoice::Null,
            ..Default::default()
        };
        assert_eq!(scan_source(src, &shallow).unwrap().findings.len(), 0);
        let deep = Options {
            checker: CheckerChoice::Null,
            unroll: 4,
            ..Default::default()
        };
        assert_eq!(scan_source(src, &deep).unwrap().findings.len(), 1);
    }

    #[test]
    fn parallel_scan_matches_sequential() {
        let src = "extern fn deref(p);\n\
            fn a(x) { let q = null; let r = 1; if (x > 1) { r = q; } deref(r); return 0; }\n\
            fn b(x) { let q = null; let r = 1; if (x * 2 == 5) { r = q; } deref(r); return 0; }";
        let seq = Options {
            checker: CheckerChoice::Null,
            ..Default::default()
        };
        let par = Options {
            checker: CheckerChoice::Null,
            threads: 3,
            ..Default::default()
        };
        let r1 = scan_source(src, &seq).unwrap();
        let r2 = scan_source(src, &par).unwrap();
        assert_eq!(r1.findings.len(), r2.findings.len());
        assert_eq!(r1.suppressed, r2.suppressed);
    }

    #[test]
    fn sanitizer_flag_parses_and_applies() {
        let o = parse_args(&args(&["--sanitizer", "scrub", "a.fus"])).unwrap();
        assert_eq!(o.extra_sanitizers, vec!["scrub"]);
        let src = "extern fn gets(); extern fn scrub(x); extern fn fopen(p);\n\
            fn f() { let i = gets(); let c = scrub(i); fopen(c); return 0; }";
        let opts = Options {
            checker: CheckerChoice::Cwe23,
            extra_sanitizers: vec!["scrub".into()],
            ..Default::default()
        };
        assert!(scan_source(src, &opts).unwrap().findings.is_empty());
        // Without the sanitizer registration the flow is reported.
        let plain = Options {
            checker: CheckerChoice::Cwe23,
            ..Default::default()
        };
        assert_eq!(scan_source(src, &plain).unwrap().findings.len(), 1);
    }

    #[test]
    fn extras_under_null_checker_warn() {
        // parse_args accepts the combination; the scan carries a warning.
        let o = parse_args(&args(&["--checker", "null", "--source", "fetch", "a.fus"])).unwrap();
        assert_eq!(o.checker, CheckerChoice::Null);
        assert_eq!(o.extra_sources, vec!["fetch"]);
        let (set, warnings) = effective_checkers(&o);
        assert_eq!(set.len(), 1);
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("--source"), "{warnings:?}");
        assert!(warnings[0].contains("--checker null"), "{warnings:?}");
        // No warning when a taint checker is in the set.
        let all = Options {
            extra_sources: vec!["fetch".into()],
            ..Default::default()
        };
        assert!(effective_checkers(&all).1.is_empty());
        // No warning without extras.
        let plain = Options {
            checker: CheckerChoice::Null,
            ..Default::default()
        };
        assert!(effective_checkers(&plain).1.is_empty());
        // End to end: run() surfaces the warning on the text output, and
        // the scan result carries it for --json consumers.
        let dir = std::env::temp_dir();
        let clean = dir.join("fusion_cli_warn.fus");
        std::fs::write(&clean, "fn f(x) { return x; }").unwrap();
        let mut out = Vec::new();
        let code = run(
            &args(&[
                "--checker",
                "null",
                "--sink",
                "exfil",
                &clean.display().to_string(),
            ]),
            &mut out,
        );
        assert_eq!(code, 0);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("warning:"), "{text}");
        assert!(text.contains("--sink"), "{text}");
    }

    #[test]
    fn list_checkers_prints_catalog() {
        let o = parse_args(&args(&["--list-checkers"])).unwrap();
        assert!(o.list_checkers);
        assert!(o.files.is_empty(), "no files required with --list-checkers");
        let mut out = Vec::new();
        let code = run(&args(&["--list-checkers"]), &mut out);
        assert_eq!(code, 0);
        let text = String::from_utf8(out).unwrap();
        for needle in [
            "null-deref",
            "cwe-23",
            "cwe-402",
            "null constants",
            "gets",
            "fopen",
            "getpass",
            "sendmsg",
            "realpath",
            "hash",
            "through-arithmetic=false",
            "through-arithmetic=true",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn json_reports_per_checker_stats_and_warnings() {
        let src = "extern fn deref(p); extern fn gets(); extern fn fopen(p);\n\
            fn f() { let q = null; deref(q); let i = gets(); fopen(i); return 0; }";
        let report = scan_source(src, &Options::default()).unwrap();
        let v = json::Value::parse(&report.to_json()).expect("valid json");
        let checkers = v.get("checkers").unwrap().as_array().unwrap();
        assert_eq!(checkers.len(), 3);
        assert_eq!(
            checkers[0].get("checker").unwrap().as_str(),
            Some("null-deref")
        );
        assert_eq!(checkers[0].get("findings").unwrap().as_f64(), Some(1.0));
        assert_eq!(checkers[1].get("checker").unwrap().as_str(), Some("cwe-23"));
        assert_eq!(checkers[1].get("findings").unwrap().as_f64(), Some(1.0));
        assert_eq!(
            checkers[2].get("checker").unwrap().as_str(),
            Some("cwe-402")
        );
        assert!(checkers[0].get("queries").unwrap().as_f64().is_some());
        assert!(checkers[0]
            .get("discovery_steps")
            .unwrap()
            .as_f64()
            .is_some());
        assert!(v.get("sessions_opened").unwrap().as_f64().is_some());
        assert_eq!(v.get("warnings").unwrap().as_array().unwrap().len(), 0);
        // A warning-producing scan round-trips the message through JSON.
        let warned = scan_source(
            "fn f(x) { return x; }",
            &Options {
                checker: CheckerChoice::Null,
                extra_sources: vec!["fetch".into()],
                ..Default::default()
            },
        )
        .unwrap();
        let v = json::Value::parse(&warned.to_json()).expect("valid json");
        assert_eq!(v.get("warnings").unwrap().as_array().unwrap().len(), 1);
    }

    #[test]
    fn json_output_is_valid() {
        let dir = std::env::temp_dir();
        let buggy = dir.join("fusion_cli_json.fus");
        std::fs::write(
            &buggy,
            "extern fn deref(p); fn f() { let q = null; deref(q); return 0; }",
        )
        .unwrap();
        let mut out = Vec::new();
        run(&[buggy.display().to_string(), "--json".into()], &mut out);
        let text = String::from_utf8(out).unwrap();
        let v = json::Value::parse(text.trim()).expect("valid json");
        let findings = v.get("findings").unwrap().as_array().unwrap();
        assert_eq!(findings.len(), 1);
        assert_eq!(
            findings[0].get("checker").unwrap().as_str(),
            Some("null-deref")
        );
        assert_eq!(
            findings[0].get("verdict").unwrap().as_str(),
            Some("feasible")
        );
        // The cache counters are part of the machine-readable surface.
        assert!(v.get("cache_hits").unwrap().as_f64().is_some());
        assert!(v.get("cache_misses").unwrap().as_f64().is_some());
        assert!(v.get("cache_bytes").unwrap().as_f64().is_some());
        // So are the pipeline stage counters.
        assert!(v.get("discover_ms").unwrap().as_f64().is_some());
        assert!(v.get("slice_ms").unwrap().as_f64().is_some());
        assert!(v.get("translate_ms").unwrap().as_f64().is_some());
        assert!(v.get("solve_ms").unwrap().as_f64().is_some());
        assert!(v.get("slices_computed").unwrap().as_f64().is_some());
        assert!(v.get("slices_reused").unwrap().as_f64().is_some());
        assert!(v.get("slice_cache_bytes").unwrap().as_f64().is_some());
    }

    #[test]
    fn stream_flags_parse() {
        let o = parse_args(&args(&["a.fus"])).unwrap();
        assert!(o.stream, "streaming is the default");
        let o = parse_args(&args(&["--no-stream", "a.fus"])).unwrap();
        assert!(!o.stream);
        let o = parse_args(&args(&["--no-stream", "--stream", "a.fus"])).unwrap();
        assert!(o.stream);
    }

    #[test]
    fn streaming_scan_matches_barrier_scan() {
        let src = "extern fn deref(p);\n\
            fn a(x) { let q = null; let r = 1; if (x > 1) { r = q; } deref(r); return 0; }\n\
            fn b(x) { let q = null; let r = 1; if (x * 2 == 5) { r = q; } deref(r); return 0; }\n\
            fn c(x) { let q = null; let r = 1; if (x < 0) { r = q; } deref(r); return 0; }";
        let key = |r: &ScanReport| {
            r.findings
                .iter()
                .map(|f| {
                    (
                        f.checker.clone(),
                        f.source_function.clone(),
                        f.sink_function.clone(),
                        f.verdict.clone(),
                        f.path_length,
                    )
                })
                .collect::<Vec<_>>()
        };
        let seq = scan_source(
            src,
            &Options {
                checker: CheckerChoice::Null,
                ..Default::default()
            },
        )
        .unwrap();
        for threads in [2, 4] {
            let streaming = scan_source(
                src,
                &Options {
                    checker: CheckerChoice::Null,
                    threads,
                    ..Default::default()
                },
            )
            .unwrap();
            let barrier = scan_source(
                src,
                &Options {
                    checker: CheckerChoice::Null,
                    threads,
                    stream: false,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(key(&seq), key(&streaming), "threads={threads}");
            assert_eq!(key(&seq), key(&barrier), "threads={threads}");
            assert_eq!(seq.suppressed, streaming.suppressed);
            assert_eq!(seq.suppressed, barrier.suppressed);
        }
    }

    #[test]
    fn json_output_with_no_findings_is_valid() {
        let report = scan_source("fn f(x) { return x; }", &Options::default()).unwrap();
        let v = json::Value::parse(&report.to_json()).expect("valid json");
        assert_eq!(v.get("findings").unwrap().as_array().unwrap().len(), 0);
    }

    #[test]
    fn cache_flags_parse() {
        let o = parse_args(&args(&["a.fus"])).unwrap();
        assert!(o.use_cache);
        let o = parse_args(&args(&["--no-cache", "a.fus"])).unwrap();
        assert!(!o.use_cache);
        let o = parse_args(&args(&["--no-cache", "--cache", "a.fus"])).unwrap();
        assert!(o.use_cache);
    }

    #[test]
    fn incremental_flag_parses_and_scan_is_unchanged() {
        let o = parse_args(&args(&["a.fus"])).unwrap();
        assert!(o.incremental, "incremental sessions are the default");
        let o = parse_args(&args(&["--no-incremental", "a.fus"])).unwrap();
        assert!(!o.incremental);
        // Determinism contract: the flag must not change the findings,
        // sequentially or in parallel.
        let src = "extern fn deref(p);\n\
            fn a(x) { let q = null; let r = 1; if (x > 1) { r = q; } deref(r); return 0; }\n\
            fn b(x) { let q = null; let r = 1; if (x * 2 == 5) { r = q; } deref(r); return 0; }";
        for threads in [1, 3] {
            let on = Options {
                checker: CheckerChoice::Null,
                threads,
                ..Default::default()
            };
            let off = Options {
                checker: CheckerChoice::Null,
                threads,
                incremental: false,
                ..Default::default()
            };
            let r1 = scan_source(src, &on).unwrap();
            let r2 = scan_source(src, &off).unwrap();
            let key = |r: &ScanReport| {
                r.findings
                    .iter()
                    .map(|f| {
                        (
                            f.checker.clone(),
                            f.source_function.clone(),
                            f.sink_function.clone(),
                            f.verdict.clone(),
                            f.path_length,
                        )
                    })
                    .collect::<Vec<_>>()
            };
            assert_eq!(key(&r1), key(&r2), "threads={threads}");
            assert_eq!(r1.suppressed, r2.suppressed);
        }
    }

    #[test]
    fn absint_flags_parse_and_triage_preserves_findings() {
        let o = parse_args(&args(&["a.fus"])).unwrap();
        assert!(o.absint, "absint triage is the default");
        let o = parse_args(&args(&["--no-absint", "a.fus"])).unwrap();
        assert!(!o.absint);
        let o = parse_args(&args(&["--no-absint", "--absint", "a.fus"])).unwrap();
        assert!(o.absint);
        // Refute-only contract: triage never changes what is reported —
        // only how much work it took. `g`'s guard (2x == 5) is refuted by
        // parity, so with triage on it never reaches the solver.
        let src = "extern fn deref(p);\n\
            fn a(x) { let q = null; let r = 1; if (x > 1) { r = q; } deref(r); return 0; }\n\
            fn b(x) { let q = null; let r = 1; if (x * 2 == 5) { r = q; } deref(r); return 0; }";
        let key = |r: &ScanReport| {
            r.findings
                .iter()
                .map(|f| {
                    (
                        f.checker.clone(),
                        f.source_function.clone(),
                        f.sink_function.clone(),
                        f.verdict.clone(),
                        f.path_length,
                    )
                })
                .collect::<Vec<_>>()
        };
        for threads in [1, 3] {
            let on = Options {
                checker: CheckerChoice::Null,
                threads,
                ..Default::default()
            };
            let off = Options {
                checker: CheckerChoice::Null,
                threads,
                absint: false,
                ..Default::default()
            };
            let r1 = scan_source(src, &on).unwrap();
            let r2 = scan_source(src, &off).unwrap();
            assert_eq!(key(&r1), key(&r2), "threads={threads}");
            assert_eq!(r1.suppressed, r2.suppressed, "threads={threads}");
            assert!(r1.triaged_paths > 0, "triage fires on the parity guard");
            assert_eq!(r2.triaged_paths, 0, "--no-absint disables triage");
            assert_eq!(r2.absint_refutes, 0);
        }
    }

    #[test]
    fn compact_flags_parse_and_compaction_preserves_findings() {
        // The default tracks FUSION_NO_COMPACT so the CI matrix can run
        // the whole suite uncompacted.
        let o = parse_args(&args(&["a.fus"])).unwrap();
        assert_eq!(
            o.compact,
            std::env::var_os("FUSION_NO_COMPACT").is_none(),
            "compaction is the default unless FUSION_NO_COMPACT is set"
        );
        let o = parse_args(&args(&["--no-compact", "a.fus"])).unwrap();
        assert!(!o.compact);
        let o = parse_args(&args(&["--no-compact", "--compact", "a.fus"])).unwrap();
        assert!(o.compact);
        // Report-preserving contract: compaction removes work, never
        // findings. `dead` has no sink reachable from its source and is
        // pruned; `id` is a single-entry/single-exit corridor and
        // collapses.
        let src = "extern fn deref(p);\n\
            fn id(v) { return v; }\n\
            fn dead(x) { let q = null; let y = q; return y; }\n\
            fn a(x) { let q = null; let r = 1; if (x > 1) { r = id(q); } deref(r); return 0; }";
        let key = |r: &ScanReport| {
            r.findings
                .iter()
                .map(|f| {
                    (
                        f.checker.clone(),
                        f.source_function.clone(),
                        f.sink_function.clone(),
                        f.verdict.clone(),
                        f.path_length,
                    )
                })
                .collect::<Vec<_>>()
        };
        for threads in [1, 3] {
            let on = Options {
                checker: CheckerChoice::Null,
                threads,
                compact: true,
                ..Default::default()
            };
            let off = Options {
                checker: CheckerChoice::Null,
                threads,
                compact: false,
                ..Default::default()
            };
            let r1 = scan_source(src, &on).unwrap();
            let r2 = scan_source(src, &off).unwrap();
            assert_eq!(key(&r1), key(&r2), "threads={threads}");
            assert_eq!(r1.suppressed, r2.suppressed, "threads={threads}");
            assert!(r1.vertices_pruned > 0, "dead flow is pruned");
            assert!(r1.chains_collapsed > 0, "id corridor collapses");
            assert_eq!(r2.vertices_pruned, 0, "--no-compact disables pruning");
            assert_eq!(r2.chains_collapsed, 0);
        }
    }

    #[test]
    fn json_reports_compaction_counters() {
        let src = "extern fn deref(p);\n\
            fn dead(x) { let q = null; let y = q; return y; }\n\
            fn a(x) { let q = null; let r = 1; if (x > 1) { r = q; } deref(r); return 0; }";
        let opts = Options {
            checker: CheckerChoice::Null,
            compact: true,
            ..Default::default()
        };
        let report = scan_source(src, &opts).unwrap();
        let v = json::Value::parse(&report.to_json()).expect("valid json");
        assert!(v.get("vertices_pruned").unwrap().as_f64().unwrap() > 0.0);
        assert!(v.get("edges_pruned").unwrap().as_f64().is_some());
        assert!(v.get("chains_collapsed").unwrap().as_f64().is_some());
        assert!(v.get("iso_hits").unwrap().as_f64().is_some());
        // The text --stats surface carries the compaction line.
        let dir = std::env::temp_dir();
        let f = dir.join("fusion_cli_compact.fus");
        std::fs::write(&f, src).unwrap();
        let mut out = Vec::new();
        run(
            &args(&["--checker", "null", "--stats", &f.display().to_string()]),
            &mut out,
        );
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("compaction:"), "{text}");
    }

    #[test]
    fn egraph_flags_parse_and_simplification_preserves_findings() {
        // The default tracks FUSION_NO_EGRAPH so the CI matrix can run
        // the whole suite with the saturation leg off.
        let o = parse_args(&args(&["a.fus"])).unwrap();
        assert_eq!(
            o.egraph,
            std::env::var_os("FUSION_NO_EGRAPH").is_none(),
            "the e-graph is the default unless FUSION_NO_EGRAPH is set"
        );
        let o = parse_args(&args(&["--no-egraph", "a.fus"])).unwrap();
        assert!(!o.egraph);
        let o = parse_args(&args(&["--no-egraph", "--egraph", "a.fus"])).unwrap();
        assert!(o.egraph);
        // Report-preserving contract: the e-graph shrinks terms, never
        // findings. The guard's arithmetic gives the saturation real
        // rewrites to apply.
        let src = "extern fn deref(p);\n\
            fn a(x) { let q = null; let r = 1; \
             if (x * 4 + 0 == x + x + 6) { r = q; } deref(r); return 0; }";
        let key = |r: &ScanReport| {
            r.findings
                .iter()
                .map(|f| {
                    (
                        f.checker.clone(),
                        f.source_function.clone(),
                        f.sink_function.clone(),
                        f.verdict.clone(),
                        f.path_length,
                    )
                })
                .collect::<Vec<_>>()
        };
        for threads in [1, 3] {
            let on = Options {
                checker: CheckerChoice::Null,
                threads,
                egraph: true,
                ..Default::default()
            };
            let off = Options {
                checker: CheckerChoice::Null,
                threads,
                egraph: false,
                ..Default::default()
            };
            let r1 = scan_source(src, &on).unwrap();
            let r2 = scan_source(src, &off).unwrap();
            assert_eq!(key(&r1), key(&r2), "threads={threads}");
            assert_eq!(r1.suppressed, r2.suppressed, "threads={threads}");
            assert!(r1.egraph_classes > 0, "the e-graph ran");
            assert_eq!(r2.egraph_classes, 0, "--no-egraph disables the pass");
            assert_eq!(r2.egraph_rewrites, 0);
        }
    }

    #[test]
    fn json_reports_egraph_counters() {
        let src = "extern fn deref(p);\n\
            fn a(x) { let q = null; let r = 1; \
             if (x * 4 + 0 == x + x + 6) { r = q; } deref(r); return 0; }";
        let opts = Options {
            checker: CheckerChoice::Null,
            egraph: true,
            ..Default::default()
        };
        let report = scan_source(src, &opts).unwrap();
        let v = json::Value::parse(&report.to_json()).expect("valid json");
        assert!(v.get("egraph_classes").unwrap().as_f64().unwrap() > 0.0);
        assert!(v.get("egraph_rewrites").unwrap().as_f64().is_some());
        assert!(v.get("egraph_saturated").unwrap().as_f64().is_some());
        assert!(v.get("egraph_cap_hits").unwrap().as_f64().is_some());
        assert!(v.get("egraph_nodes_saved").unwrap().as_f64().is_some());
        // The text --stats surface carries the egraph line.
        let dir = std::env::temp_dir();
        let f = dir.join("fusion_cli_egraph.fus");
        std::fs::write(&f, src).unwrap();
        let mut out = Vec::new();
        run(
            &args(&["--checker", "null", "--stats", &f.display().to_string()]),
            &mut out,
        );
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("egraph:"), "{text}");
    }

    #[test]
    fn validate_flag_parses_and_passes_on_lowered_ir() {
        let o = parse_args(&args(&["--validate", "a.fus"])).unwrap();
        assert!(o.validate);
        let opts = Options {
            validate: true,
            ..Default::default()
        };
        let report = scan_source("fn f(x) { return x; }", &opts).unwrap();
        assert!(report.findings.is_empty());
    }

    #[test]
    fn json_reports_avoided_work() {
        let src = "extern fn deref(p);\n\
            fn b(x) { let q = null; let r = 1; if (x * 2 == 5) { r = q; } deref(r); return 0; }";
        let opts = Options {
            checker: CheckerChoice::Null,
            ..Default::default()
        };
        let report = scan_source(src, &opts).unwrap();
        let v = json::Value::parse(&report.to_json()).expect("valid json");
        assert!(v.get("triaged_paths").unwrap().as_f64().unwrap() > 0.0);
        assert!(v.get("triaged_candidates").unwrap().as_f64().is_some());
        assert!(v.get("sessions_skipped").unwrap().as_f64().is_some());
        assert!(v.get("slices_skipped").unwrap().as_f64().is_some());
        assert!(v.get("absint_refutes").unwrap().as_f64().is_some());
        // The text --stats surface carries the avoided-work lines.
        let dir = std::env::temp_dir();
        let f = dir.join("fusion_cli_avoided.fus");
        std::fs::write(&f, src).unwrap();
        let mut out = Vec::new();
        run(
            &args(&["--checker", "null", "--stats", &f.display().to_string()]),
            &mut out,
        );
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("avoided:"), "{text}");
        assert!(text.contains("triaged"), "{text}");
    }

    #[test]
    fn solver_timeout_ms_parses() {
        let o = parse_args(&args(&["--solver-timeout-ms", "250", "a.fus"])).unwrap();
        assert_eq!(o.timeout, Duration::from_millis(250));
        assert!(parse_args(&args(&["--solver-timeout-ms", "x", "a.fus"])).is_err());
        assert!(parse_args(&args(&["--solver-timeout-ms"])).is_err());
    }

    #[test]
    fn cached_scan_matches_uncached() {
        // Two structurally identical functions: the second candidate's
        // feasibility queries hit the cache, with no effect on findings.
        let src = "extern fn deref(p);\n\
            fn a(x) { let q = null; let r = 1; if (x > 0) { r = q; } deref(r); return 0; }\n\
            fn b(x) { let q = null; let r = 1; if (x * 2 == 5) { r = q; } deref(r); return 0; }";
        let cached = Options {
            checker: CheckerChoice::Null,
            ..Default::default()
        };
        let uncached = Options {
            checker: CheckerChoice::Null,
            use_cache: false,
            ..Default::default()
        };
        let r1 = scan_source(src, &cached).unwrap();
        let r2 = scan_source(src, &uncached).unwrap();
        assert_eq!(r1.findings.len(), r2.findings.len());
        assert_eq!(r1.suppressed, r2.suppressed);
        assert!(r1.cache_misses > 0);
        assert!(r1.cache_bytes > 0);
        assert_eq!(r2.cache_hits, 0);
        assert_eq!(r2.cache_misses, 0);
        assert_eq!(r2.cache_bytes, 0);
    }
}

//! The warm analysis service: resident caches, dirtiness tracking, and
//! incremental re-analysis after edits (ROADMAP item 1).
//!
//! An [`AnalysisSession`] keeps the PDG, [`CompactPdg`], [`ProgramFacts`],
//! [`SliceCache`], [`VerdictCache`], and per-work-item outcomes resident
//! across requests. A [`DirtinessTracker`] fingerprints every function's
//! IR content; on [`AnalysisSession::rescan`] the diff of fingerprints
//! yields the *edited* set, and two transitive closures over the call
//! structure yield what the edit can possibly influence:
//!
//! * `facts_dirty` — edited functions plus their transitive **callers**
//!   (absint return summaries flow bottom-up only), driving
//!   [`ProgramFacts::recompute`];
//! * `affected` — the connected component of the edited functions over
//!   the **symmetric** caller∪callee adjacency (of the old *and* new
//!   programs), driving everything path-shaped: dependence paths, slice
//!   closures, cached verdicts, and `(checker, source)` work items can
//!   only span functions inside one component, so an unaffected
//!   component is untouched by the edit.
//!
//! Eviction is then exact-by-construction:
//!
//! * **Slice closures** carry their own span (the closure's `FuncId` key
//!   set), so [`SliceCache::evict_dirty`] drops exactly the closures
//!   whose span meets the affected set. This is correctness-critical:
//!   the cache key hashes *on-path* content only, while the closure
//!   contains off-path definitions of every spanned function.
//! * **Verdicts** are evicted through recorded provenance
//!   ([`SessionProvenance`]): each `path_set_key` insert records the
//!   path's on-path function ids; a key is evicted when that span meets
//!   the affected set. The same argument as above makes this sound —
//!   the backward slice of a path never leaves the path's call-graph
//!   component, and the whole component is evicted.
//! * **Iso-memo entries** have content-pinned keys (recursive body
//!   signatures), so stale entries can never be *hit*; their eviction is
//!   garbage collection with counters, and retained entries transplant
//!   soundly into the rebuilt [`CompactPdg`].
//!
//! §3.2.2 discipline: every piece of invalidation metadata is dependence
//! structure (function ids, adjacency) or a content hash — never a path
//! condition. Nothing here caches or replays a formula.

use crate::absint::ProgramFacts;
use crate::cache::{hash_transfer, Fnv, Key128, VerdictCache};
use crate::checkers::CheckerSet;
use crate::compact::CompactPdg;
use crate::engine::{
    analyze_multi_streaming_session, AnalysisOptions, FeasibilityEngine, ItemOutcomes,
    MultiAnalysisRun, SessionParams,
};
use crate::slice_cache::SliceCache;
use crate::snapshot::{self, SnapshotError, SnapshotWriter};
use fusion_ir::ssa::{DefKind, FuncId, Program};
use fusion_pdg::graph::{Pdg, Vertex};
use fusion_pdg::paths::DependencePath;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Content fingerprint of every function: a dual-stream FNV over the
/// function's externality, arity, return slot, and each definition's
/// transfer (the same per-vertex folding the verdict-cache key uses, so
/// anything that can change a `path_set_key` — including call-site ids,
/// which are numbered globally — also changes the containing function's
/// fingerprint). Variable *names* are diagnostics and deliberately
/// excluded; function names are compared separately by the tracker.
pub fn function_fingerprints(program: &Program) -> Vec<Key128> {
    program
        .functions
        .iter()
        .map(|f| {
            let mut h = Fnv::new();
            h.write(f.is_extern as u64);
            h.write(f.params.len() as u64);
            match f.ret {
                None => h.write(0),
                Some(r) => {
                    h.write(1);
                    h.write(r.0 as u64);
                }
            }
            h.write(f.defs.len() as u64);
            for def in &f.defs {
                hash_transfer(
                    &mut h,
                    program,
                    Vertex {
                        func: f.id,
                        var: def.var,
                    },
                );
            }
            h.finish()
        })
        .collect()
}

/// `(symmetric caller∪callee adjacency, caller-only adjacency)` of a
/// program's call structure, as index lists per function.
fn call_edges(program: &Program) -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
    let n = program.functions.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut callers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for f in &program.functions {
        for def in &f.defs {
            if let DefKind::Call { callee, .. } = &def.kind {
                let (i, j) = (f.id.index(), callee.index());
                // Paths transit a callee only when it has a body: extern
                // calls are flow-through edges that stay inside the
                // caller (`FlowTarget::ThroughExtern`), so an extern
                // callee must not merge its callers into one component.
                // The reverse edge stays — editing the extern itself
                // (its signature) still dirties every caller.
                if !program.func(*callee).is_extern {
                    adj[i].push(j);
                }
                adj[j].push(i);
                callers[j].push(i);
            }
        }
    }
    (adj, callers)
}

/// Marks everything reachable from `seeds` over the union of the given
/// adjacency lists.
fn mark_closure(seeds: &[usize], adjs: &[&Vec<Vec<usize>>], n: usize) -> Vec<bool> {
    let mut mark = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    for &s in seeds {
        if !mark[s] {
            mark[s] = true;
            stack.push(s);
        }
    }
    while let Some(u) = stack.pop() {
        for adj in adjs {
            for &v in &adj[u] {
                if !mark[v] {
                    mark[v] = true;
                    stack.push(v);
                }
            }
        }
    }
    mark
}

/// What a [`DirtinessTracker::diff`] concluded about an edited program.
#[derive(Debug, Clone)]
pub enum EditDiff {
    /// Byte-for-byte identical IR content: everything replays.
    Unchanged,
    /// The function list itself changed (names, order, count): function
    /// ids are not stable across the edit, so every id-keyed resident
    /// structure is invalid — flush and re-scan cold (in the same warm
    /// process).
    Structural,
    /// Some functions' bodies changed under a stable function list.
    Edited {
        /// Functions whose content fingerprint changed.
        edited: Vec<FuncId>,
        /// Per-function: in the connected component of an edited function
        /// over the symmetric caller∪callee adjacency (old ∪ new).
        affected: Vec<bool>,
        /// Per-function: absint facts may have changed (edited ∪
        /// transitive callers, old ∪ new caller edges).
        facts_dirty: Vec<bool>,
    },
}

/// Per-function content fingerprints and reverse dependence index of the
/// resident program, diffed against each incoming `rescan` request.
#[derive(Debug)]
pub struct DirtinessTracker {
    names: Vec<String>,
    prints: Vec<Key128>,
    adj: Vec<Vec<usize>>,
    callers: Vec<Vec<usize>>,
}

impl DirtinessTracker {
    /// Fingerprints `program` and indexes its call structure.
    pub fn new(program: &Program) -> DirtinessTracker {
        let (adj, callers) = call_edges(program);
        DirtinessTracker {
            names: program
                .functions
                .iter()
                .map(|f| program.interner.resolve(f.name).to_string())
                .collect(),
            prints: function_fingerprints(program),
            adj,
            callers,
        }
    }

    /// Classifies the edit from the resident program to `next`. The
    /// closures are taken over the union of the old and new call edges:
    /// both a *removed* and an *added* call can change what a component
    /// contains, so either program's edge must dirty the closure.
    pub fn diff(&self, next: &Program) -> EditDiff {
        let names: Vec<&str> = next
            .functions
            .iter()
            .map(|f| next.interner.resolve(f.name))
            .collect();
        if names.len() != self.names.len() || names.iter().zip(&self.names).any(|(a, b)| a != b) {
            return EditDiff::Structural;
        }
        let prints = function_fingerprints(next);
        let edited: Vec<usize> = (0..prints.len())
            .filter(|&i| prints[i] != self.prints[i])
            .collect();
        if edited.is_empty() {
            return EditDiff::Unchanged;
        }
        let n = next.functions.len();
        let (new_adj, new_callers) = call_edges(next);
        let affected = mark_closure(&edited, &[&self.adj, &new_adj], n);
        let facts_dirty = mark_closure(&edited, &[&self.callers, &new_callers], n);
        EditDiff::Edited {
            edited: edited.into_iter().map(|i| FuncId(i as u32)).collect(),
            affected,
            facts_dirty,
        }
    }
}

const PROV_SHARDS: usize = 16;

/// A sharded `key → on-path function span` index. Recorded at every
/// verdict-cache / iso-memo insert; consumed by
/// [`Provenance::take_involving`] to name exactly the keys an edit's
/// affected set can reach. Values are sorted, deduplicated function ids
/// — dependence structure only, never a condition.
pub struct Provenance {
    shards: Vec<Mutex<HashMap<Key128, Box<[u32]>>>>,
}

impl Default for Provenance {
    fn default() -> Self {
        Provenance {
            shards: (0..PROV_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }
}

impl Provenance {
    /// Records `key`'s on-path function span (overwrite-safe: equal keys
    /// mean equal path content, hence equal spans).
    pub(crate) fn record(&self, key: Key128, paths: &[DependencePath]) {
        let mut funcs: Vec<u32> = paths
            .iter()
            .flat_map(|p| p.nodes.iter().map(|v| v.func.0))
            .collect();
        funcs.sort_unstable();
        funcs.dedup();
        let shard = &self.shards[key.shard_index(self.shards.len())];
        shard
            .lock()
            .expect("provenance poisoned")
            .insert(key, funcs.into_boxed_slice());
    }

    /// A point-in-time copy of every recorded span, for snapshot
    /// serialization ([`crate::snapshot`]).
    pub(crate) fn entries(&self) -> Vec<(Key128, Box<[u32]>)> {
        self.shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .expect("provenance poisoned")
                    .iter()
                    .map(|(k, v)| (*k, v.clone()))
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// Re-inserts a span decoded from a snapshot.
    pub(crate) fn insert_raw(&self, key: Key128, funcs: Box<[u32]>) {
        let shard = &self.shards[key.shard_index(self.shards.len())];
        shard
            .lock()
            .expect("provenance poisoned")
            .insert(key, funcs);
    }

    /// Removes and returns every recorded key whose span meets
    /// `affected` (out-of-range functions count as affected).
    pub(crate) fn take_involving(&self, affected: &[bool]) -> Vec<Key128> {
        let mut keys = Vec::new();
        for shard in &self.shards {
            let mut shard = shard.lock().expect("provenance poisoned");
            let victims: Vec<Key128> = shard
                .iter()
                .filter(|(_, funcs)| {
                    funcs
                        .iter()
                        .any(|&f| affected.get(f as usize).copied().unwrap_or(true))
                })
                .map(|(&k, _)| k)
                .collect();
            for k in victims {
                shard.remove(&k);
                keys.push(k);
            }
        }
        keys
    }

    /// Number of recorded keys.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("provenance poisoned").len())
            .sum()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The two provenance indexes a session run records into: one for
/// exact-key verdicts, one for iso-memo entries.
#[derive(Default)]
pub struct SessionProvenance {
    /// `path_set_key → functions` for the [`VerdictCache`].
    pub verdicts: Provenance,
    /// `iso_key → functions` for the [`CompactPdg`]'s fragment memo
    /// (eviction here is GC-with-counters — iso keys are content-pinned
    /// and can never be hit stale).
    pub iso: Provenance,
}

/// What one `rescan` invalidated versus retained. All counters are
/// zero for a cold `scan` and for an `Unchanged` rescan.
#[derive(Debug, Clone, Copy, Default)]
pub struct InvalidationStats {
    /// Functions whose content fingerprint changed.
    pub functions_edited: u64,
    /// Functions in the edit's affected component.
    pub functions_affected: u64,
    /// Functions whose absint facts were recomputed.
    pub facts_invalidated: u64,
    /// Functions whose absint facts were reused as-is.
    pub facts_retained: u64,
    /// Slice closures evicted (span met the affected set).
    pub slices_invalidated: u64,
    /// Slice closures still resident after eviction.
    pub slices_retained: u64,
    /// Cached verdicts evicted through recorded provenance.
    pub verdicts_invalidated: u64,
    /// Cached verdicts still resident after eviction.
    pub verdicts_retained: u64,
    /// Iso-memo entries garbage-collected.
    pub iso_invalidated: u64,
    /// Candidates actually re-discovered and re-solved by the warm run.
    pub candidates_reanalyzed: u64,
}

/// The resident-state machine behind `fusion-scan --serve`: one program,
/// its PDG/facts/compacted view, both caches, recorded per-item
/// outcomes, and the provenance needed to invalidate them precisely.
///
/// [`AnalysisSession::scan`] establishes (or re-establishes) resident
/// state with a cold run; [`AnalysisSession::rescan`] diffs the incoming
/// program against the resident fingerprints and re-analyzes only what
/// the edit reaches. Reports of a warm `rescan` are byte-identical to a
/// cold batch scan of the edited program at any thread count.
pub struct AnalysisSession {
    set: CheckerSet,
    options: AnalysisOptions,
    threads: usize,
    program: Option<Program>,
    pdg: Option<Pdg>,
    facts: Option<Arc<ProgramFacts>>,
    compact: Option<CompactPdg>,
    cache: VerdictCache,
    outcomes: Option<ItemOutcomes>,
    prov: SessionProvenance,
    tracker: Option<DirtinessTracker>,
    last: InvalidationStats,
}

impl AnalysisSession {
    /// An empty session (no resident program yet). `options` configure
    /// every run the session performs; `threads` is the solve/discovery
    /// parallelism (1 = inline sequential).
    pub fn new(set: CheckerSet, options: AnalysisOptions, threads: usize) -> AnalysisSession {
        AnalysisSession {
            set,
            options,
            threads: threads.max(1),
            program: None,
            pdg: None,
            facts: None,
            compact: None,
            cache: VerdictCache::new(),
            outcomes: None,
            prov: SessionProvenance::default(),
            tracker: None,
            last: InvalidationStats::default(),
        }
    }

    /// Whether a program is resident.
    pub fn is_resident(&self) -> bool {
        self.program.is_some()
    }

    /// The resident program, if any.
    pub fn program(&self) -> Option<&Program> {
        self.program.as_ref()
    }

    /// The resident dependence graph, if any.
    pub fn pdg(&self) -> Option<&Pdg> {
        self.pdg.as_ref()
    }

    /// Bytes retained by the resident verdict cache.
    pub fn cache_bytes(&self) -> u64 {
        self.cache.bytes()
    }

    /// Bytes retained by the resident slice-closure cache.
    pub fn slice_cache_bytes(&self) -> u64 {
        self.options
            .slice_cache
            .as_ref()
            .map(|c| c.bytes())
            .unwrap_or(0)
    }

    /// What the most recent `rescan` invalidated/retained.
    pub fn last_invalidation(&self) -> InvalidationStats {
        self.last
    }

    /// Resident verdict-cache entry count.
    pub fn verdicts_resident(&self) -> u64 {
        self.cache.len()
    }

    /// Resident slice-closure count (0 with the memo disabled).
    pub fn slices_resident(&self) -> u64 {
        self.options
            .slice_cache
            .as_ref()
            .map(|c| c.len())
            .unwrap_or(0)
    }

    /// Recorded `(checker, source)` work items.
    pub fn items_resident(&self) -> usize {
        self.outcomes.as_ref().map(|o| o.len()).unwrap_or(0)
    }

    /// Cold scan: flushes all resident state, installs `program`, and
    /// runs every work item live (recording outcomes for later warm
    /// rescans).
    pub fn scan(
        &mut self,
        program: Program,
        factory: &(dyn Fn() -> Box<dyn FeasibilityEngine> + Sync),
    ) -> MultiAnalysisRun {
        self.flush();
        self.install(program);
        let (run, outcomes) = self.drive(factory, None);
        self.outcomes = Some(outcomes);
        self.last = InvalidationStats {
            candidates_reanalyzed: run.stages.candidates_reanalyzed,
            ..InvalidationStats::default()
        };
        run
    }

    /// Warm rescan: diffs `program` against the resident fingerprints,
    /// evicts exactly what the edit reaches, rebuilds the edited PDG
    /// subgraphs, and re-runs only the affected work items (the rest
    /// replay their recorded outcomes). Falls back to [`Self::scan`]
    /// when nothing is resident, and to a same-process cold run when the
    /// function list itself changed.
    pub fn rescan(
        &mut self,
        program: Program,
        factory: &(dyn Fn() -> Box<dyn FeasibilityEngine> + Sync),
    ) -> MultiAnalysisRun {
        let diff = self.tracker.as_ref().map(|t| t.diff(&program));
        match diff {
            None => self.scan(program, factory),
            Some(EditDiff::Structural) => self.scan(program, factory),
            Some(EditDiff::Unchanged) => {
                // Identical content: keep the resident program (ids are
                // interchangeable) and replay every recorded item.
                let n = self
                    .program
                    .as_ref()
                    .expect("tracker implies resident program")
                    .functions
                    .len();
                let affected = vec![false; n];
                let (run, outcomes) = self.drive(factory, Some(&affected));
                self.outcomes = Some(outcomes);
                self.last = InvalidationStats {
                    facts_retained: n as u64,
                    slices_retained: self.slices_resident(),
                    verdicts_retained: self.verdicts_resident(),
                    candidates_reanalyzed: run.stages.candidates_reanalyzed,
                    ..InvalidationStats::default()
                };
                run
            }
            Some(EditDiff::Edited {
                edited,
                affected,
                facts_dirty,
            }) => {
                let mut inv = InvalidationStats {
                    functions_edited: edited.len() as u64,
                    functions_affected: affected.iter().filter(|&&b| b).count() as u64,
                    ..InvalidationStats::default()
                };
                let n = program.functions.len();
                // PDG: rebuild only the edited functions' subgraphs
                // (per-function adjacency depends on own defs only).
                let prev_pdg = self.pdg.take().expect("resident pdg");
                let mut unchanged = vec![true; n];
                for f in &edited {
                    unchanged[f.index()] = false;
                }
                let pdg = Pdg::rebuild(&program, &prev_pdg, &unchanged);
                // Absint facts: recompute edited ∪ transitive callers,
                // seeding the builder with every clean function's values.
                if self.options.absint {
                    let prev = self.facts.take().expect("resident absint facts");
                    let (facts, invalidated) =
                        ProgramFacts::recompute(&program, &prev, &facts_dirty);
                    inv.facts_invalidated = invalidated;
                    inv.facts_retained = n as u64 - invalidated;
                    self.facts = Some(Arc::new(facts));
                }
                // Slice closures: each closure's own key set is its span.
                if let Some(sc) = &self.options.slice_cache {
                    inv.slices_invalidated = sc.evict_dirty(&affected);
                    inv.slices_retained = sc.len();
                }
                // Verdicts: evict the recorded keys the edit can reach.
                if self.options.use_cache {
                    let keys = self.prov.verdicts.take_involving(&affected);
                    inv.verdicts_invalidated = self.cache.remove_keys(&keys);
                    inv.verdicts_retained = self.cache.len();
                }
                // Compacted view: GC the affected iso entries, then
                // rebuild the per-checker regions and transplant the
                // retained (content-pinned) memo.
                if let Some(prev) = self.compact.take() {
                    let iso_keys = self.prov.iso.take_involving(&affected);
                    inv.iso_invalidated = prev.iso().remove_keys(&iso_keys);
                    self.compact = Some(CompactPdg::rebuild(
                        &program,
                        &pdg,
                        &self.set,
                        &self.options.propagate,
                        prev,
                    ));
                }
                self.pdg = Some(pdg);
                self.tracker = Some(DirtinessTracker::new(&program));
                self.program = Some(program);
                let (mut run, outcomes) = self.drive(factory, Some(&affected));
                self.outcomes = Some(outcomes);
                inv.candidates_reanalyzed = run.stages.candidates_reanalyzed;
                run.stages.facts_invalidated = inv.facts_invalidated;
                run.stages.slices_invalidated = inv.slices_invalidated;
                run.stages.verdicts_invalidated = inv.verdicts_invalidated;
                self.last = inv;
                run
            }
        }
    }

    /// Persists the resident state — program, facts, PDG partitions,
    /// recorded outcomes, verdict cache, iso memo, and eviction
    /// provenance — into one snapshot container at `path` (serve-mode
    /// `save`). Slice closures are deliberately not serialized: they are
    /// a pure memo the next live run refills, and replay never needs
    /// them. Returns bytes written. No path condition is serialized
    /// (§3.2.2: structure, facts, verdicts only).
    pub fn save(&self, path: &std::path::Path) -> Result<u64, SnapshotError> {
        let program = self.program.as_ref().ok_or_else(|| SnapshotError {
            offset: 0,
            what: "no resident program to save".to_string(),
        })?;
        let pdg = self.pdg.as_ref().expect("resident program implies pdg");
        let mut w = SnapshotWriter::new();
        snapshot::write_program(&mut w, program);
        snapshot::write_pdg(&mut w, program, pdg);
        if let Some(facts) = &self.facts {
            snapshot::write_facts(&mut w, program, facts);
        }
        if let Some(outcomes) = &self.outcomes {
            snapshot::write_outcomes(&mut w, outcomes);
        }
        snapshot::write_verdicts(&mut w, &self.cache);
        if let Some(compact) = &self.compact {
            snapshot::write_iso(&mut w, compact.iso());
        }
        snapshot::write_provenance(&mut w, snapshot::tag::PROV_VERDICTS, &self.prov.verdicts);
        snapshot::write_provenance(&mut w, snapshot::tag::PROV_ISO, &self.prov.iso);
        w.write_to(path)
    }

    /// Restores a session saved by [`Self::save`], replacing any
    /// resident state (serve-mode `load`). After a load, a `rescan` with
    /// unchanged sources is pure replay — every work item answers from
    /// the restored outcomes with zero solver queries — and a rescan
    /// with edits evicts exactly what changed, through the restored
    /// provenance. Returns bytes read (lazily, per section).
    pub fn load(&mut self, path: &std::path::Path) -> Result<u64, SnapshotError> {
        let snap = snapshot::open_file(path)?;
        let program = snapshot::read_program(&snap)?;
        let pdg = Pdg::build(&program);
        self.flush();
        if self.options.absint {
            let facts = if snap.has(snapshot::tag::FACTS, 0) {
                snapshot::read_facts(&snap, &program)?
            } else {
                // Saved by an absint-off session; recompute once.
                ProgramFacts::compute(&program)
            };
            self.facts = Some(Arc::new(facts));
        }
        if self.options.compact {
            let compact = CompactPdg::build(&program, &pdg, &self.set, &self.options.propagate);
            if snap.has(snapshot::tag::ISO, 0) {
                for (k, v) in snapshot::read_iso(&snap)? {
                    compact.iso().insert(k, v);
                }
            }
            self.compact = Some(compact);
        }
        if snap.has(snapshot::tag::VERDICTS, 0) {
            self.cache = snapshot::read_verdicts(&snap)?;
        }
        if snap.has(snapshot::tag::OUTCOMES, 0) {
            self.outcomes = Some(snapshot::read_outcomes(&snap)?);
        }
        if snap.has(snapshot::tag::PROV_VERDICTS, 0) {
            self.prov.verdicts = snapshot::read_provenance(&snap, snapshot::tag::PROV_VERDICTS)?;
        }
        if snap.has(snapshot::tag::PROV_ISO, 0) {
            self.prov.iso = snapshot::read_provenance(&snap, snapshot::tag::PROV_ISO)?;
        }
        self.tracker = Some(DirtinessTracker::new(&program));
        self.pdg = Some(pdg);
        self.program = Some(program);
        self.last = InvalidationStats::default();
        Ok(snap.bytes_read())
    }

    /// Runs the session driver against the resident state.
    fn drive(
        &self,
        factory: &(dyn Fn() -> Box<dyn FeasibilityEngine> + Sync),
        affected: Option<&[bool]>,
    ) -> (MultiAnalysisRun, ItemOutcomes) {
        let program = self.program.as_ref().expect("resident program");
        let pdg = self.pdg.as_ref().expect("resident pdg");
        let cache = self.options.use_cache.then_some(&self.cache);
        let params = SessionParams {
            facts: self.facts.clone(),
            compact: self.compact.as_ref(),
            retained: self.outcomes.as_ref(),
            affected,
            prov: Some(&self.prov),
        };
        analyze_multi_streaming_session(
            program,
            pdg,
            &self.set,
            factory,
            self.threads,
            &self.options,
            cache,
            params,
        )
    }

    fn install(&mut self, program: Program) {
        let pdg = Pdg::build(&program);
        self.facts = self
            .options
            .absint
            .then(|| Arc::new(ProgramFacts::compute(&program)));
        self.compact = self
            .options
            .compact
            .then(|| CompactPdg::build(&program, &pdg, &self.set, &self.options.propagate));
        self.tracker = Some(DirtinessTracker::new(&program));
        self.pdg = Some(pdg);
        self.program = Some(program);
    }

    fn flush(&mut self) {
        self.cache = VerdictCache::new();
        if self.options.slice_cache.is_some() {
            self.options.slice_cache = Some(Arc::new(SliceCache::new()));
        }
        self.prov = SessionProvenance::default();
        self.outcomes = None;
        self.facts = None;
        self.compact = None;
        self.pdg = None;
        self.program = None;
        self.tracker = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkers::Checker;
    use crate::engine::{analyze_multi_streaming, BugReport, Feasibility};
    use crate::graph_solver::FusionSolver;
    use fusion_ir::{compile, CompileOptions};
    use fusion_smt::solver::SolverConfig;

    fn factory() -> Box<dyn FeasibilityEngine> {
        Box::new(FusionSolver::new(SolverConfig::default()))
    }

    fn keys(run: &MultiAnalysisRun) -> Vec<(Vertex, Vertex, Feasibility, Vec<Vertex>)> {
        run.all_reports()
            .map(|r: &BugReport| (r.source, r.sink, r.verdict, r.path.nodes.clone()))
            .collect()
    }

    const BASE: &str = "extern fn deref(p);\n\
        fn callee(x) { let b = x & 3; return b; }\n\
        fn caller(a) { let v = callee(a); let q = null; let r = 1; if (v > 0) { r = q; } deref(r); return 0; }\n\
        fn lone(y) { let q = null; let r = 1; if (y > 2) { r = q; } deref(r); return 0; }\n\
        fn quiet(z) { return z * 2; }";

    // Same function list, `quiet` edited (no sources, calls nothing).
    const QUIET_EDIT: &str = "extern fn deref(p);\n\
        fn callee(x) { let b = x & 3; return b; }\n\
        fn caller(a) { let v = callee(a); let q = null; let r = 1; if (v > 0) { r = q; } deref(r); return 0; }\n\
        fn lone(y) { let q = null; let r = 1; if (y > 2) { r = q; } deref(r); return 0; }\n\
        fn quiet(z) { return z * 3; }";

    // Same function list, `callee` edited (affects `caller` transitively).
    const CALLEE_EDIT: &str = "extern fn deref(p);\n\
        fn callee(x) { let b = x & 7; return b; }\n\
        fn caller(a) { let v = callee(a); let q = null; let r = 1; if (v > 0) { r = q; } deref(r); return 0; }\n\
        fn lone(y) { let q = null; let r = 1; if (y > 2) { r = q; } deref(r); return 0; }\n\
        fn quiet(z) { return z * 2; }";

    fn compile_src(src: &str) -> Program {
        compile(src, CompileOptions::default()).expect("compile")
    }

    #[test]
    fn diff_classifies_edits() {
        let base = compile_src(BASE);
        let tracker = DirtinessTracker::new(&base);
        assert!(matches!(tracker.diff(&base), EditDiff::Unchanged));
        // A renamed/added function is structural.
        let grown = compile_src(&format!("{BASE}\nfn extra(w) {{ return w; }}"));
        assert!(matches!(tracker.diff(&grown), EditDiff::Structural));
        // Editing `callee` affects `caller` (symmetric component) and
        // dirties `caller`'s facts (transitive caller), but leaves
        // `lone` and `quiet` untouched.
        let edited = compile_src(CALLEE_EDIT);
        let EditDiff::Edited {
            edited: ed,
            affected,
            facts_dirty,
        } = tracker.diff(&edited)
        else {
            panic!("expected Edited");
        };
        let id = |name: &str| base.func_by_name(name).unwrap().id;
        assert_eq!(ed, vec![id("callee")]);
        assert!(affected[id("callee").index()]);
        assert!(affected[id("caller").index()]);
        assert!(!affected[id("lone").index()]);
        assert!(!affected[id("quiet").index()]);
        assert!(facts_dirty[id("callee").index()]);
        assert!(facts_dirty[id("caller").index()]);
        assert!(!facts_dirty[id("lone").index()]);
    }

    #[test]
    fn warm_rescan_matches_cold_scan() {
        for threads in [1usize, 2, 4] {
            let mut session = AnalysisSession::new(
                CheckerSet::single(Checker::null_deref()),
                AnalysisOptions::new(),
                threads,
            );
            session.scan(compile_src(BASE), &factory);
            let warm = session.rescan(compile_src(CALLEE_EDIT), &factory);
            let cold = analyze_multi_streaming(
                &compile_src(CALLEE_EDIT),
                &Pdg::build(&compile_src(CALLEE_EDIT)),
                &CheckerSet::single(Checker::null_deref()),
                &|| factory(),
                threads,
                &AnalysisOptions::new(),
            );
            assert_eq!(keys(&warm), keys(&cold), "threads = {threads}");
            assert_eq!(warm.candidates, cold.candidates, "threads = {threads}");
            let inv = session.last_invalidation();
            assert_eq!(inv.functions_edited, 1);
            // `lone`'s work item replayed: the warm run re-analyzed only
            // `caller`'s candidates.
            assert!(inv.candidates_reanalyzed < warm.candidates as u64);
        }
    }

    #[test]
    fn edit_outside_any_source_component_reanalyzes_nothing() {
        let mut session = AnalysisSession::new(
            CheckerSet::single(Checker::null_deref()),
            AnalysisOptions::new(),
            2,
        );
        let cold = session.scan(compile_src(BASE), &factory);
        let warm = session.rescan(compile_src(QUIET_EDIT), &factory);
        assert_eq!(keys(&warm), keys(&cold));
        let inv = session.last_invalidation();
        assert_eq!(inv.functions_edited, 1);
        assert_eq!(inv.functions_affected, 1, "quiet is its own component");
        assert_eq!(inv.candidates_reanalyzed, 0);
        assert_eq!(inv.verdicts_invalidated, 0);
        assert_eq!(inv.slices_invalidated, 0);
        assert_eq!(warm.queries, 0, "warm run issued no engine queries");
    }

    #[test]
    fn unchanged_rescan_replays_everything() {
        let mut session = AnalysisSession::new(
            CheckerSet::single(Checker::null_deref()),
            AnalysisOptions::new(),
            1,
        );
        let cold = session.scan(compile_src(BASE), &factory);
        let warm = session.rescan(compile_src(BASE), &factory);
        assert_eq!(keys(&warm), keys(&cold));
        assert_eq!(warm.queries, 0);
        assert_eq!(session.last_invalidation().candidates_reanalyzed, 0);
    }

    #[test]
    fn save_load_rescan_is_pure_replay() {
        let dir = std::env::temp_dir().join(format!("fusion-session-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.fsnp");
        let mut session = AnalysisSession::new(
            CheckerSet::single(Checker::null_deref()),
            AnalysisOptions::new(),
            2,
        );
        let cold = session.scan(compile_src(BASE), &factory);
        let written = session.save(&path).expect("save");
        assert!(written > 0);
        // A fresh session — simulating a process restart — restores the
        // saved state and replays an unchanged rescan without a single
        // solver query.
        let mut restored = AnalysisSession::new(
            CheckerSet::single(Checker::null_deref()),
            AnalysisOptions::new(),
            2,
        );
        let read = restored.load(&path).expect("load");
        assert!(read > 0);
        assert!(restored.is_resident());
        assert_eq!(restored.items_resident(), session.items_resident());
        assert_eq!(restored.verdicts_resident(), session.verdicts_resident());
        let warm = restored.rescan(compile_src(BASE), &factory);
        assert_eq!(keys(&warm), keys(&cold));
        assert_eq!(warm.queries, 0, "loaded session must replay");
        assert_eq!(restored.last_invalidation().candidates_reanalyzed, 0);
        // And an *edited* rescan after load still evicts exactly what
        // changed, through the restored provenance.
        let warm_edit = restored.rescan(compile_src(CALLEE_EDIT), &factory);
        let cold_edit = analyze_multi_streaming(
            &compile_src(CALLEE_EDIT),
            &Pdg::build(&compile_src(CALLEE_EDIT)),
            &CheckerSet::single(Checker::null_deref()),
            &|| factory(),
            2,
            &AnalysisOptions::new(),
        );
        assert_eq!(keys(&warm_edit), keys(&cold_edit));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_without_resident_program_errors() {
        let session = AnalysisSession::new(
            CheckerSet::single(Checker::null_deref()),
            AnalysisOptions::new(),
            1,
        );
        let err = session
            .save(std::path::Path::new("/nonexistent/never.fsnp"))
            .expect_err("empty session cannot save");
        assert!(err.what.contains("no resident program"), "{err}");
    }

    #[test]
    fn fingerprints_ignore_untouched_functions() {
        let base = compile_src(BASE);
        let edited = compile_src(CALLEE_EDIT);
        let a = function_fingerprints(&base);
        let b = function_fingerprints(&edited);
        let callee = base.func_by_name("callee").unwrap().id.index();
        assert_ne!(a[callee], b[callee]);
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            if i != callee {
                assert_eq!(x, y, "function {i} fingerprint must be stable");
            }
        }
    }
}

//! # fusion-ptest
//!
//! A compact, deterministic, dependency-free stand-in for the parts of the
//! `proptest` crate this workspace uses. The workspace renames this crate
//! to `proptest` (see the root `Cargo.toml`), so test files keep the
//! idiomatic `use proptest::prelude::*;` while building in an environment
//! with no registry access.
//!
//! Differences from upstream proptest, by design:
//!
//! * **No shrinking.** A failing case reports the test name, case index,
//!   and derived seed; re-running is deterministic, so the case is
//!   reproducible but not minimized.
//! * **Sampling, not exploration.** Strategies are plain samplers over a
//!   seeded RNG; `prop_recursive` bounds depth by construction.
//! * **Determinism.** Each `proptest!` test derives its RNG stream from a
//!   hash of the test name, so runs are stable across machines. Set
//!   `FUSION_PTEST_SEED` to perturb the whole suite.

#![warn(missing_docs)]

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

use fusion_rng::rngs::StdRng;
use fusion_rng::{Rng, RngCore, SampleUniform, SeedableRng};

// ---------------------------------------------------------------------------
// RNG plumbing
// ---------------------------------------------------------------------------

/// The RNG handed to strategies during sampling.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Derive a fresh stream from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        self.0.gen_range(0..n)
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A sampler for values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `self` is the leaf case and `recurse`
    /// wraps an inner strategy into one recursion level. `depth` bounds
    /// nesting; `_desired_size` and `_expected_branch` are accepted for
    /// upstream signature compatibility and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf: BoxedStrategy<Self::Value> = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let rec = recurse(cur).boxed();
            // At every level, fall back to the leaf half the time so
            // generated structures cover all depths up to `depth`.
            cur = Union::new(vec![leaf.clone(), rec]).boxed();
        }
        cur
    }

    /// Erase the concrete strategy type behind a cheap, clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

trait DynStrategy<V> {
    fn sample_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased, reference-counted strategy handle (clonable, so it can
/// be captured several times inside `prop_recursive` closures).
pub struct BoxedStrategy<V> {
    inner: Rc<dyn DynStrategy<V>>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        self.inner.sample_dyn(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-valued strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.arms.len());
        self.arms[idx].sample(rng)
    }
}

// Integer ranges are strategies.
impl<T: SampleUniform + Copy + 'static> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.0.gen_range(self.start..self.end)
    }
}

// Tuples of strategies are strategies.
impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.sample(rng),
            self.1.sample(rng),
            self.2.sample(rng),
            self.3.sample(rng),
        )
    }
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Sample an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A length specification: an exact size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for vectors of `element` values with length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.hi - self.size.lo;
            let len = if span <= 1 {
                self.size.lo
            } else {
                self.size.lo + rng.below(span)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vector strategy constructor; `size` may be a `usize` or a `Range<usize>`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases that must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is discarded, not failed.
    Reject(String),
    /// A `prop_assert*!` failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Construct a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drive one `proptest!` test: run `config.cases` passing cases, retrying
/// rejected cases up to a global budget. Deterministic per test name.
pub fn run_proptest<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let suite_seed = std::env::var("FUSION_PTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    let base = fnv1a(name.as_bytes()) ^ suite_seed;
    let mut passed = 0u32;
    let mut rejected = 0u64;
    let max_rejects = (config.cases as u64).saturating_mul(64).max(1024);
    let mut iteration = 0u64;
    while passed < config.cases {
        let seed = base.wrapping_add(iteration.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        iteration += 1;
        let mut rng = TestRng::from_seed(seed);
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "proptest '{name}': too many rejected cases \
                         ({rejected} rejects for {passed}/{} passes)",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed at case {passed} (seed {seed:#x}):\n{msg}");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests. Supports the upstream surface used here:
/// an optional `#![proptest_config(...)]` header followed by one or more
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_proptest(config, stringify!($name), |__ptest_rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), __ptest_rng);)+
                #[allow(unreachable_code)]
                let mut __ptest_case =
                    || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                __ptest_case()
            });
        }
    )*};
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__pa, __pb) = (&$a, &$b);
        $crate::prop_assert!(
            __pa == __pb,
            "assertion failed: `{:?} == {:?}`",
            __pa,
            __pb
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__pa, __pb) = (&$a, &$b);
        $crate::prop_assert!(
            __pa == __pb,
            "assertion failed: `{:?} == {:?}`: {}",
            __pa,
            __pb,
            format!($($fmt)+)
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__pa, __pb) = (&$a, &$b);
        $crate::prop_assert!(
            __pa != __pb,
            "assertion failed: `{:?} != {:?}`",
            __pa,
            __pb
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__pa, __pb) = (&$a, &$b);
        $crate::prop_assert!(
            __pa != __pb,
            "assertion failed: `{:?} != {:?}`: {}",
            __pa,
            __pb,
            format!($($fmt)+)
        );
    }};
}

/// Discard the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Uniform choice among strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The everything-you-need import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(i64),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    #[test]
    fn recursion_depth_is_bounded_and_varied() {
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = crate::TestRng::from_seed(1);
        let mut max_seen = 0;
        for _ in 0..500 {
            let t = strat.sample(&mut rng);
            let d = depth(&t);
            assert!(d <= 3, "depth {d} exceeds bound");
            max_seen = max_seen.max(d);
        }
        assert!(
            max_seen >= 2,
            "recursion never fired (max depth {max_seen})"
        );
    }

    #[test]
    fn vec_sizes_respect_range() {
        let strat = prop::collection::vec(0usize..5, 2..4);
        let mut rng = crate::TestRng::from_seed(2);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!(v.len() == 2 || v.len() == 3);
            assert!(v.iter().all(|&x| x < 5));
        }
        let exact = prop::collection::vec(any::<bool>(), 3);
        assert_eq!(exact.sample(&mut rng).len(), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_pipeline_works(x in 0u64..100, flip in any::<bool>(), v in prop::collection::vec(0i64..9, 0..6)) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(x.min(99), x);
            prop_assert_ne!(flip, !flip);
            prop_assert_ne!(x + 1, x, "successor differs from {}", x);
            prop_assert!(v.len() < 6);
        }

        #[test]
        fn oneof_hits_every_arm(tag in prop_oneof![Just(0u8), Just(1u8), 2u8..4]) {
            prop_assert!(tag < 4);
        }
    }

    #[test]
    fn runs_are_deterministic_per_name() {
        let strat = (0u64..1_000_000).boxed();
        let mut a = crate::TestRng::from_seed(99);
        let mut b = crate::TestRng::from_seed(99);
        for _ in 0..64 {
            assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        }
    }
}

//! Minimal JSON support — emission and a small parser — with no external
//! dependencies. The scanner's machine-readable output is flat and fully
//! known at compile time, so a hand-rolled emitter is simpler than a
//! serialization framework; the parser exists so tests can round-trip the
//! output instead of string-matching it.

use std::fmt::Write as _;

/// Escapes `s` as the *contents* of a JSON string literal (no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Parses one JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a position-annotated message on malformed input.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                members.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
                }
            }
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            s.parse::<f64>()
                .map(Value::Num)
                .map_err(|_| format!("invalid number `{s}` at byte {start}"))
        }
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

/// Reads the four hex digits of a `\uXXXX` escape starting at `at`.
fn parse_hex4(b: &[u8], at: usize) -> Result<u32, String> {
    let hex = b.get(at..at + 4).ok_or("truncated \\u escape")?;
    let s = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
    u32::from_str_radix(s, 16).map_err(|_| format!("bad \\u escape `{s}`"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let n = parse_hex4(b, *pos + 1)?;
                        *pos += 4;
                        match n {
                            // High surrogate: must pair with an
                            // immediately following `\uXXXX` low
                            // surrogate; the pair combines into one
                            // astral-plane scalar. Decoding the halves
                            // independently would mangle every character
                            // above U+FFFF into two replacement chars.
                            0xD800..=0xDBFF => {
                                if b.get(*pos + 1..*pos + 3) != Some(b"\\u") {
                                    return Err(format!(
                                        "lone high surrogate \\u{n:04x} at byte {}",
                                        *pos - 4
                                    ));
                                }
                                let lo = parse_hex4(b, *pos + 3)?;
                                if !(0xDC00..=0xDFFF).contains(&lo) {
                                    return Err(format!(
                                        "high surrogate \\u{n:04x} followed by \\u{lo:04x} \
                                         (not a low surrogate) at byte {}",
                                        *pos - 4
                                    ));
                                }
                                *pos += 6;
                                let c = 0x10000 + ((n - 0xD800) << 10) + (lo - 0xDC00);
                                out.push(char::from_u32(c).expect("valid surrogate pair"));
                            }
                            // Low surrogate with no preceding high half.
                            0xDC00..=0xDFFF => {
                                return Err(format!(
                                    "lone low surrogate \\u{n:04x} at byte {}",
                                    *pos - 4
                                ));
                            }
                            _ => out.push(char::from_u32(n).expect("non-surrogate BMP scalar")),
                        }
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn parses_round_trip() {
        let text = r#"{"a": [1, 2.5, -3], "b": "x\ny", "c": true, "d": null, "e": {}}"#;
        let v = Value::parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(2.5)
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("d"), Some(&Value::Null));
        assert_eq!(v.get("e"), Some(&Value::Obj(Vec::new())));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("12 34").is_err());
        assert!(Value::parse("\"abc").is_err());
    }

    #[test]
    fn escaped_output_parses_back() {
        let original = "weird \"quotes\" and \\slashes\\ and\nnewlines";
        let doc = format!("{{\"s\": \"{}\"}}", escape(original));
        let v = Value::parse(&doc).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some(original));
    }

    #[test]
    fn surrogate_pairs_combine_into_astral_scalars() {
        // U+1F600 (emoji) and U+10348 (Gothic hwair) as escaped pairs.
        let v = Value::parse("\"\\uD83D\\uDE00 and \\uD800\\uDF48\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600} and \u{10348}"));
        // BMP escapes are unaffected.
        let v = Value::parse("\"A\\uFFFD\"").unwrap();
        assert_eq!(v.as_str(), Some("A\u{FFFD}"));
    }

    #[test]
    fn astral_text_round_trips_through_escape_and_parse() {
        // `escape` passes astral chars through as raw UTF-8; the parser
        // must accept both that and the escaped-pair spelling, decoding
        // to the same string.
        let original = "emoji \u{1F600}, Gothic \u{10348}, music \u{1D11E}";
        let doc = format!("{{\"s\": \"{}\"}}", escape(original));
        let v = Value::parse(&doc).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some(original));
        let escaped =
            "{\"s\": \"emoji \\uD83D\\uDE00, Gothic \\uD800\\uDF48, music \\uD834\\uDD1E\"}";
        let v = Value::parse(escaped).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some(original));
    }

    #[test]
    fn lone_surrogates_are_rejected() {
        // Bare high half: end of string, non-escape follower, wrong escape.
        assert!(Value::parse("\"\\uD83D\"").is_err());
        assert!(Value::parse("\"\\uD83Dx\"").is_err());
        assert!(Value::parse("\"\\uD83D\\n\"").is_err());
        // Bare low half.
        assert!(Value::parse("\"\\uDE00\"").is_err());
        // Two high halves in a row.
        assert!(Value::parse("\"\\uD83D\\uD83D\"").is_err());
    }
}

//! Bottom-up SCC-respecting call-graph partitioning for `--shards K`.
//!
//! The partitioner works from the [`crate::snapshot::CallGraphInfo`]
//! summary alone — externality, def counts, callee lists — so a
//! coordinator (or a shard worker validating its plan) never needs the
//! function bodies. It computes strongly connected components of the
//! non-extern call graph with an iterative Tarjan pass, then chunks the
//! components in **bottom-up order** (callees before callers, which is
//! exactly Tarjan's completion order) into K contiguous shards balanced
//! by definition count. Keeping each SCC whole and the order bottom-up
//! means a shard's owned functions sit next to the callees whose return
//! summaries they consume, which is what keeps the cross-shard summary
//! interface demand-driven (arXiv 2109.07923) instead of all-pairs.
//!
//! Ownership is a partition: every non-extern function belongs to
//! exactly one shard; extern declarations are owned by nobody (they
//! have no definitions, hence no work items). A shard *analyzes* more
//! than it owns — see [`ShardPlan::closure`]: verdict-equivalence for an
//! owned source requires every function a dependence path or slice
//! closure from it could touch, which is conservatively the weakly
//! connected component, plus the extern declarations those functions
//! call. The closure minus the owned set is precisely what the shard
//! must import from its neighbours (facts + return summaries), surfaced
//! as the `summaries_imported` counter.

use crate::snapshot::CallGraphInfo;

/// The result of partitioning a call graph into K shards: a total
/// ownership map over non-extern functions.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    owner: Vec<Option<usize>>,
    k: usize,
}

impl ShardPlan {
    /// Partitions `info` into `k` shards. `k` is clamped to at least 1;
    /// when the program has fewer components than shards, trailing
    /// shards own nothing (and the coordinator skips them).
    pub fn compute(info: &CallGraphInfo, k: usize) -> ShardPlan {
        let k = k.max(1);
        let sccs = tarjan_sccs(info);
        let total: u64 = sccs
            .iter()
            .flat_map(|c| c.iter().map(|&f| info.def_counts[f as usize]))
            .sum();
        let mut owner = vec![None; info.len()];
        let mut shard = 0usize;
        let mut assigned = 0u64;
        for scc in &sccs {
            let weight: u64 = scc.iter().map(|&f| info.def_counts[f as usize]).sum();
            // Advance to the next shard once this one's fair share is
            // met, but never past the last shard and never leaving the
            // current SCC split.
            while shard + 1 < k && assigned * (k as u64) >= total.max(1) * (shard as u64 + 1) {
                shard += 1;
            }
            for &f in scc {
                owner[f as usize] = Some(shard);
            }
            assigned += weight;
        }
        ShardPlan { owner, k }
    }

    /// The shard count this plan was computed for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The shard owning function `f`, or `None` for externs.
    pub fn owner(&self, f: usize) -> Option<usize> {
        self.owner.get(f).copied().flatten()
    }

    /// The functions shard `s` owns, sorted ascending.
    pub fn owned(&self, s: usize) -> Vec<u32> {
        self.owner
            .iter()
            .enumerate()
            .filter(|(_, o)| **o == Some(s))
            .map(|(f, _)| f as u32)
            .collect()
    }

    /// The functions shard `s` must materialize to reproduce the
    /// unsharded verdicts of its owned work items: the weakly connected
    /// components (over non-extern call edges) containing any owned
    /// function, plus every extern declaration those functions call.
    /// Sorted ascending.
    pub fn closure(&self, info: &CallGraphInfo, s: usize) -> Vec<u32> {
        let n = info.len();
        let undirected = symmetric_edges(info);
        let mut in_closure = vec![false; n];
        let mut stack: Vec<u32> = self.owned(s);
        for &f in &stack {
            in_closure[f as usize] = true;
        }
        while let Some(f) = stack.pop() {
            for &g in &undirected[f as usize] {
                if !in_closure[g as usize] {
                    in_closure[g as usize] = true;
                    stack.push(g);
                }
            }
        }
        // Referenced externs ride along (call defs need their targets).
        let mut externs = Vec::new();
        for f in 0..n {
            if !in_closure[f] {
                continue;
            }
            for &c in &info.callees[f] {
                if info.is_extern[c as usize] && !in_closure[c as usize] {
                    in_closure[c as usize] = true;
                    externs.push(c);
                }
            }
        }
        let mut out: Vec<u32> = (0..n as u32).filter(|&f| in_closure[f as usize]).collect();
        out.sort_unstable();
        out
    }
}

/// Undirected adjacency over calls between two non-extern functions.
/// Extern nodes get no edges: a library declaration shared by two
/// otherwise-independent modules must not weld their components
/// together.
fn symmetric_edges(info: &CallGraphInfo) -> Vec<Vec<u32>> {
    let n = info.len();
    let mut adj = vec![Vec::new(); n];
    for f in 0..n {
        if info.is_extern[f] {
            continue;
        }
        for &c in &info.callees[f] {
            if info.is_extern[c as usize] {
                continue;
            }
            adj[f].push(c);
            adj[c as usize].push(f as u32);
        }
    }
    for row in &mut adj {
        row.sort_unstable();
        row.dedup();
    }
    adj
}

/// Iterative Tarjan over the non-extern call graph. Components are
/// emitted in completion order, which for a condensation DAG is
/// bottom-up: every SCC appears after all SCCs it calls into.
fn tarjan_sccs(info: &CallGraphInfo) -> Vec<Vec<u32>> {
    let n = info.len();
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next = 0u32;
    let mut sccs = Vec::new();
    // Explicit DFS frames: (node, edge cursor).
    let mut frames: Vec<(u32, usize)> = Vec::new();
    for start in 0..n {
        if info.is_extern[start] || index[start] != UNSET {
            continue;
        }
        frames.push((start as u32, 0));
        index[start] = next;
        low[start] = next;
        next += 1;
        stack.push(start as u32);
        on_stack[start] = true;
        while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
            let vi = v as usize;
            let callees = &info.callees[vi];
            if *cursor < callees.len() {
                let w = callees[*cursor] as usize;
                *cursor += 1;
                if info.is_extern[w] {
                    continue;
                }
                if index[w] == UNSET {
                    index[w] = next;
                    low[w] = next;
                    next += 1;
                    stack.push(w as u32);
                    on_stack[w] = true;
                    frames.push((w as u32, 0));
                } else if on_stack[w] {
                    low[vi] = low[vi].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(p, _)) = frames.last() {
                    let pi = p as usize;
                    low[pi] = low[pi].min(low[vi]);
                }
                if low[vi] == index[vi] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.sort_unstable();
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built summary: f0→f1→f2, f3→f4, f5 extern called by f1
    /// and f3 (two weak components bridged only by an extern).
    fn info() -> CallGraphInfo {
        CallGraphInfo {
            is_extern: vec![false, false, false, false, false, true],
            def_counts: vec![4, 4, 4, 4, 4, 0],
            callees: vec![vec![1], vec![2, 5], vec![], vec![4, 5], vec![], vec![]],
        }
    }

    #[test]
    fn ownership_is_a_partition_of_non_externs() {
        let info = info();
        for k in 1..=4 {
            let plan = ShardPlan::compute(&info, k);
            let mut seen = vec![0usize; info.len()];
            for s in 0..k {
                for f in plan.owned(s) {
                    seen[f as usize] += 1;
                }
            }
            for (f, &count) in seen.iter().enumerate() {
                let expect = usize::from(!info.is_extern[f]);
                assert_eq!(count, expect, "function {f} at k={k}");
            }
        }
    }

    #[test]
    fn sccs_stay_whole() {
        // A 3-cycle plus a tail; the cycle must land in one shard.
        let cyclic = CallGraphInfo {
            is_extern: vec![false; 4],
            def_counts: vec![2; 4],
            callees: vec![vec![1], vec![2], vec![0], vec![0]],
        };
        for k in 1..=4 {
            let plan = ShardPlan::compute(&cyclic, k);
            let owners: Vec<_> = (0..3).map(|f| plan.owner(f)).collect();
            assert_eq!(owners[0], owners[1], "k={k}");
            assert_eq!(owners[1], owners[2], "k={k}");
        }
    }

    #[test]
    fn bottom_up_order_puts_callees_no_later_than_callers() {
        let info = info();
        let plan = ShardPlan::compute(&info, 2);
        // f2 is the leaf of the first chain; its shard index must not
        // exceed its caller f1's, and f1's not exceed f0's.
        assert!(plan.owner(2) <= plan.owner(1));
        assert!(plan.owner(1) <= plan.owner(0));
    }

    #[test]
    fn closure_is_component_plus_referenced_externs() {
        let info = info();
        let plan = ShardPlan::compute(&info, 2);
        let s0 = plan.owner(0).unwrap();
        let c0 = plan.closure(&info, s0);
        // The chain {0,1,2} and its extern callee 5; never 3 or 4.
        assert!(c0.contains(&0) && c0.contains(&1) && c0.contains(&2));
        assert!(c0.contains(&5));
        assert!(!c0.contains(&3) && !c0.contains(&4));
        // The other shard owns the {3,4} component.
        let s1 = plan.owner(3).unwrap();
        assert_ne!(s0, s1, "two components at k=2 split across shards");
        let c1 = plan.closure(&info, s1);
        assert_eq!(c1, vec![3, 4, 5]);
    }

    #[test]
    fn extern_sharing_does_not_weld_components() {
        let info = info();
        let plan = ShardPlan::compute(&info, 2);
        let total_defs: u64 = info.def_counts.iter().sum();
        for s in 0..2 {
            let closure = plan.closure(&info, s);
            let defs: u64 = closure.iter().map(|&f| info.def_counts[f as usize]).sum();
            assert!(
                defs < total_defs,
                "shard {s} materializes the whole program"
            );
        }
    }

    #[test]
    fn empty_shards_are_tolerated() {
        let tiny = CallGraphInfo {
            is_extern: vec![false],
            def_counts: vec![1],
            callees: vec![vec![]],
        };
        let plan = ShardPlan::compute(&tiny, 8);
        let owned: usize = (0..8).map(|s| plan.owned(s).len()).sum();
        assert_eq!(owned, 1);
        for s in 0..8 {
            let c = plan.closure(&tiny, s);
            if plan.owned(s).is_empty() {
                assert!(c.is_empty());
            }
        }
    }
}

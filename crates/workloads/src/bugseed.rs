//! Ground truth for seeded bugs and precision/recall scoring.
//!
//! Every bug the generator injects lives in a dedicated host function, so a
//! report can be matched back unambiguously by (host function of the
//! source, checker kind). Feasible seeds found = true positives; infeasible
//! seeds reported = false positives; feasible seeds unreported = misses.
//! This gives Table 5's #TP/#FP columns exact denominators, something the
//! paper could only approximate by manual triage.

use fusion::checkers::CheckKind;
use fusion::engine::BugReport;
use fusion_ir::interner::Symbol;
use fusion_ir::ssa::Program;

/// Where a seeded bug's endpoints live (currently both in the host).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BugSite {
    /// Function containing the source.
    pub source_fn: Symbol,
    /// Function containing the sink.
    pub sink_fn: Symbol,
}

/// One seeded bug and its ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeededBug {
    /// Which checker should find it.
    pub kind: CheckKind,
    /// The host function (contains the source).
    pub host: Symbol,
    /// Whether the guarding condition is satisfiable.
    pub feasible: bool,
    /// Endpoint locations.
    pub site: BugSite,
}

/// Precision/recall counts for one checker run against the ground truth.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Score {
    /// Reports matching a feasible seed.
    pub true_positives: usize,
    /// Reports matching an infeasible seed (or nothing).
    pub false_positives: usize,
    /// Feasible seeds with no report.
    pub missed: usize,
    /// Total reports scored.
    pub reports: usize,
}

impl Score {
    /// False-positive rate among reports, in `[0, 1]`.
    pub fn fp_rate(&self) -> f64 {
        if self.reports == 0 {
            0.0
        } else {
            self.false_positives as f64 / self.reports as f64
        }
    }
}

/// Scores a checker run against the seeded ground truth.
///
/// Reports are matched by the source's containing function; multiple
/// reports against the same seed count once.
pub fn score(
    program: &Program,
    kind: CheckKind,
    seeds: &[SeededBug],
    reports: &[BugReport],
) -> Score {
    let relevant: Vec<&SeededBug> = seeds.iter().filter(|b| b.kind == kind).collect();
    let mut hit = vec![false; relevant.len()];
    let mut score = Score {
        reports: reports.len(),
        ..Default::default()
    };
    for report in reports {
        let host = program.func(report.source.func).name;
        match relevant.iter().position(|b| b.host == host) {
            Some(i) => {
                if relevant[i].feasible {
                    if !hit[i] {
                        score.true_positives += 1;
                    }
                } else {
                    score.false_positives += 1;
                }
                hit[i] = true;
            }
            None => score.false_positives += 1, // unseeded report
        }
    }
    for (i, b) in relevant.iter().enumerate() {
        if b.feasible && !hit[i] {
            score.missed += 1;
        }
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genprog::{generate, GenConfig};
    use fusion::checkers::Checker;
    use fusion::engine::{analyze, AnalysisOptions};
    use fusion::graph_solver::FusionSolver;
    use fusion_ir::{compile_ast, CompileOptions};
    use fusion_pdg::graph::Pdg;
    use fusion_smt::solver::SolverConfig;

    #[test]
    fn fusion_scores_perfectly_on_default_subject() {
        let cfg = GenConfig::default();
        let mut subject = generate(&cfg);
        let program = compile_ast(
            &subject.surface,
            &mut subject.interner,
            CompileOptions::default(),
        )
        .expect("compile");
        let pdg = Pdg::build(&program);
        for (checker, kind) in [
            (Checker::null_deref(), CheckKind::NullDeref),
            (Checker::cwe23(), CheckKind::Cwe23),
            (Checker::cwe402(), CheckKind::Cwe402),
        ] {
            let mut engine = FusionSolver::new(SolverConfig::default());
            let run = analyze(
                &program,
                &pdg,
                &checker,
                &mut engine,
                &AnalysisOptions::new(),
            );
            let s = score(&program, kind, &subject.bugs, &run.reports);
            let feasible = subject
                .bugs
                .iter()
                .filter(|b| b.kind == kind && b.feasible)
                .count();
            assert_eq!(s.true_positives, feasible, "{kind}: {s:?}");
            assert_eq!(s.false_positives, 0, "{kind}: {s:?}");
            assert_eq!(s.missed, 0, "{kind}: {s:?}");
        }
    }

    #[test]
    fn score_counts_fp_for_infeasible_seeds() {
        // Construct a fake report against an infeasible seed's host.
        let cfg = GenConfig {
            null_feasible: 0,
            null_infeasible: 1,
            cwe23_feasible: 0,
            cwe23_infeasible: 0,
            cwe402_feasible: 0,
            cwe402_infeasible: 0,
            ..Default::default()
        };
        let mut subject = generate(&cfg);
        let program = compile_ast(
            &subject.surface,
            &mut subject.interner,
            CompileOptions::default(),
        )
        .unwrap();
        let host = subject.bugs[0].host;
        let func = program.functions.iter().find(|f| f.name == host).unwrap();
        let report = fusion::engine::BugReport {
            source: fusion_pdg::graph::Vertex::new(func.id, fusion_ir::VarId(0)),
            sink: fusion_pdg::graph::Vertex::new(func.id, fusion_ir::VarId(0)),
            verdict: fusion::engine::Feasibility::Feasible,
            path: fusion_pdg::paths::DependencePath::unit(fusion_pdg::graph::Vertex::new(
                func.id,
                fusion_ir::VarId(0),
            )),
        };
        let s = score(&program, CheckKind::NullDeref, &subject.bugs, &[report]);
        assert_eq!(s.false_positives, 1);
        assert_eq!(s.true_positives, 0);
    }
}

//! The fused multi-client pass must be invisible in the output.
//!
//! `analyze_multi*` runs every checker of a [`CheckerSet`] in **one**
//! pass: one discovery traversal fans out over `(checker, source)` work
//! items, sink groups are keyed on the sink function alone so queries
//! from different checkers share solver sessions and slice closures, and
//! one verdict cache covers the whole set. None of that fusion may reach
//! the user: for every thread count (1–8), for every driver (sequential,
//! barrier, streaming), with and without the verdict cache, with and
//! without incremental sessions, each checker's reports must be
//! *byte-identical* — same sources, sinks, verdicts, witness paths, in
//! the same order — to running that checker alone the old way, one
//! single-checker pass per checker. This is the contract DESIGN.md
//! ("Multi-client fusion") claims and the CLI's `--checker all` relies
//! on.
//!
//! The second half pins the *sharing* down: the verdict-cache key is
//! checker-independent (feasibility depends on path conditions, never on
//! the client fact), so when two different checkers query the same
//! dependence paths, the second answers entirely from the cache.

use fusion::cache::VerdictCache;
use fusion::checkers::{CheckKind, Checker, CheckerSet};
use fusion::engine::{
    analyze_multi_parallel_with_cache, analyze_multi_streaming_with_cache,
    analyze_multi_with_cache, analyze_with_cache, AnalysisOptions, FeasibilityEngine,
    MultiAnalysisRun,
};
use fusion::graph_solver::FusionSolver;
use fusion::Feasibility;
use fusion_ir::{compile, CompileOptions, Program};
use fusion_pdg::graph::Pdg;
use fusion_smt::solver::SolverConfig;

/// Flows for all three default checkers, mixing feasible and infeasible
/// paths (`x * x == 3` has no solution modulo a power of two) and
/// several distinct sink functions so the drivers have real groups to
/// schedule.
fn subject() -> (Program, Pdg) {
    let mut src = String::from(
        "extern fn deref(p); extern fn gets(); extern fn fopen(p);\n\
         extern fn getpass(); extern fn sendmsg(x); extern fn send(x);\n",
    );
    for i in 0..3 {
        let lo = i * 2;
        src.push_str(&format!(
            "fn n{i}(flag) {{\n\
               let q = null; let r = 1; let s = 1;\n\
               if (flag > {lo}) {{ r = q; }}\n\
               if (flag * flag == 3) {{ s = q; }}\n\
               deref(r); deref(s);\n\
               return 0;\n\
             }}\n\
             fn t{i}(flag) {{\n\
               let a = gets();\n\
               let c = 1; let d = 1;\n\
               if (flag > {lo}) {{ c = a + {i}; }}\n\
               if (flag * flag == 3) {{ d = a + {i}; }}\n\
               fopen(c); fopen(d);\n\
               return 0;\n\
             }}\n\
             fn p{i}(flag) {{\n\
               let a = getpass();\n\
               let c = 1; let d = 1;\n\
               if (flag > {lo}) {{ c = a * 2; }}\n\
               if (flag * flag == 3) {{ d = a * 2; }}\n\
               sendmsg(c); send(d);\n\
               return 0;\n\
             }}\n",
        ));
    }
    let program = compile(&src, CompileOptions::default()).expect("compile");
    let pdg = Pdg::build(&program);
    (program, pdg)
}

/// Everything that reaches the user, in a comparable form.
type ReportKey = (
    fusion_pdg::graph::Vertex,
    fusion_pdg::graph::Vertex,
    Feasibility,
    Vec<fusion_pdg::graph::Vertex>,
);

fn keys<'a>(reports: impl IntoIterator<Item = &'a fusion::BugReport>) -> Vec<ReportKey> {
    reports
        .into_iter()
        .map(|r| (r.source, r.sink, r.verdict, r.path.nodes.clone()))
        .collect()
}

/// Per-checker `(kind, report keys, suppressed)` of a fused run.
fn breakdown_keys(run: &MultiAnalysisRun) -> Vec<(CheckKind, Vec<ReportKey>, usize)> {
    run.checkers
        .iter()
        .map(|b| (b.kind, keys(&b.reports), b.suppressed))
        .collect()
}

fn factory(incremental: bool) -> impl Fn() -> Box<dyn FeasibilityEngine> + Sync {
    move || {
        let mut engine = FusionSolver::new(SolverConfig::default());
        engine.incremental = incremental;
        Box::new(engine)
    }
}

#[test]
fn fused_equals_per_checker_loop_1_to_8_threads() {
    let (program, pdg) = subject();
    let set = CheckerSet::all();

    for use_cache in [false, true] {
        for incremental in [true, false] {
            let opts = if use_cache {
                AnalysisOptions::new()
            } else {
                AnalysisOptions::without_cache()
            };

            // The old way: one single-checker pass per checker, sharing
            // one verdict cache across the loop (as the CLI used to).
            let loop_cache = VerdictCache::new();
            let cache = use_cache.then_some(&loop_cache);
            let mut want = Vec::new();
            for checker in set.checkers() {
                let mut engine = FusionSolver::new(SolverConfig::default());
                engine.incremental = incremental;
                let run = analyze_with_cache(&program, &pdg, checker, &mut engine, &opts, cache);
                want.push((checker.kind, keys(&run.reports), run.suppressed));
            }
            assert!(
                want.iter().all(|(_, k, s)| !k.is_empty() && *s > 0),
                "every checker must both report and suppress: {:?}",
                want.iter()
                    .map(|(kind, k, s)| (*kind, k.len(), *s))
                    .collect::<Vec<_>>()
            );

            // Fused sequential.
            let seq_cache = VerdictCache::new();
            let mut engine = FusionSolver::new(SolverConfig::default());
            engine.incremental = incremental;
            let fused = analyze_multi_with_cache(
                &program,
                &pdg,
                &set,
                &mut engine,
                &opts,
                use_cache.then_some(&seq_cache),
            );
            assert_eq!(
                breakdown_keys(&fused),
                want,
                "fused sequential diverged at cache={use_cache} incremental={incremental}"
            );

            // Fused barrier and streaming, every thread count.
            for threads in 1..=8 {
                let barrier_cache = VerdictCache::new();
                let barrier = analyze_multi_parallel_with_cache(
                    &program,
                    &pdg,
                    &set,
                    &factory(incremental),
                    threads,
                    &opts,
                    use_cache.then_some(&barrier_cache),
                );
                assert_eq!(
                    breakdown_keys(&barrier),
                    want,
                    "fused barrier diverged at threads={threads} cache={use_cache} \
                     incremental={incremental}"
                );
                let stream_cache = VerdictCache::new();
                let streaming = analyze_multi_streaming_with_cache(
                    &program,
                    &pdg,
                    &set,
                    &factory(incremental),
                    threads,
                    &opts,
                    use_cache.then_some(&stream_cache),
                );
                assert_eq!(
                    breakdown_keys(&streaming),
                    want,
                    "fused streaming diverged at threads={threads} cache={use_cache} \
                     incremental={incremental}"
                );
            }
        }
    }
}

#[test]
fn cross_checker_queries_share_the_verdict_cache() {
    // Two checkers of different kinds over the *same* source and sink
    // functions: their candidates have byte-identical dependence paths,
    // so the verdict-cache key — a pure function of path content, with
    // no checker identity — must let the second checker answer every
    // query from the first checker's verdicts.
    let src = "extern fn gets(); extern fn fopen(p);\n\
         fn a(flag) {\n\
           let t = gets();\n\
           let c = 1; let d = 1;\n\
           if (flag > 1) { c = t + 1; }\n\
           if (flag * flag == 3) { d = t + 1; }\n\
           fopen(c); fopen(d);\n\
           return 0;\n\
         }";
    let program = compile(src, CompileOptions::default()).expect("compile");
    let pdg = Pdg::build(&program);
    let spec = |kind: CheckKind| Checker {
        kind,
        source_fns: vec!["gets".into()],
        sink_fns: vec!["fopen".into()],
        through_binary: true,
        through_extern: true,
        sanitizer_fns: Vec::new(),
    };
    let set = CheckerSet::new(vec![spec(CheckKind::Cwe23), spec(CheckKind::Cwe402)]);

    let cache = VerdictCache::new();
    let mut engine = FusionSolver::new(SolverConfig::default());
    let run = analyze_multi_with_cache(
        &program,
        &pdg,
        &set,
        &mut engine,
        &AnalysisOptions::new(),
        Some(&cache),
    );

    let [first, second] = &run.checkers[..] else {
        panic!("two breakdowns expected");
    };
    assert_eq!(first.candidates, second.candidates);
    assert!(first.candidates > 0, "subject must discover candidates");
    // The first client pays the solves...
    assert!(first.queries > 0, "first checker must query the engine");
    assert_eq!(
        first.cache_hits, 0,
        "nothing cached before the first client"
    );
    // ...the second answers entirely from the shared cache: identical
    // path content, identical key, zero engine queries.
    assert_eq!(
        second.queries, 0,
        "second checker must not re-solve shared paths"
    );
    assert!(second.cache_hits > 0, "second checker must hit the cache");
    assert_eq!(second.cache_misses, 0);
    // And the verdicts are verbatim the same: same findings, same
    // suppressions, independent of the client fact.
    assert_eq!(keys(&first.reports), keys(&second.reports));
    assert_eq!(first.suppressed, second.suppressed);
    assert!(first.suppressed > 0, "subject must suppress");
    assert!(!first.reports.is_empty(), "subject must report");
}

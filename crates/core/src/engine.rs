//! The analysis driver: propagate facts sparsely, then decide feasibility.
//!
//! This is the outer loop of Algorithm 5: sparse propagation collects Π
//! (with **no** conditions), and a pluggable [`FeasibilityEngine`] answers
//! `ir_based_smt_solve(Π)`. Engines implement the fused designs of this
//! crate or the conventional baselines of `fusion-baselines`; the driver,
//! reports and accounting are shared so comparisons are apples-to-apples.

use crate::checkers::Checker;
use crate::memory::{Category, MemoryAccountant, BYTES_PER_DEF};
use crate::propagate::{discover, Candidate, PropagateOptions};
use fusion_ir::ssa::Program;
use fusion_pdg::graph::{Pdg, Vertex};
use fusion_pdg::paths::DependencePath;
use std::time::{Duration, Instant};

/// The verdict on one path set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feasibility {
    /// Some execution takes the paths: a real flow.
    Feasible,
    /// No execution can take the paths.
    Infeasible,
    /// Budget exhausted before a verdict.
    Unknown,
}

/// Everything a feasibility query reports back.
#[derive(Debug, Clone, Copy)]
pub struct CheckOutcome {
    /// The verdict.
    pub feasibility: Feasibility,
    /// Wall-clock time of the query.
    pub duration: Duration,
    /// DAG node count of the condition the engine built (0 if none).
    pub condition_nodes: u64,
    /// `(context, function)` clones materialized.
    pub instances: usize,
    /// Whether preprocessing alone decided the query.
    pub preprocess_decided: bool,
}

/// A per-query record kept for the Fig. 11 scatter plot.
#[derive(Debug, Clone, Copy)]
pub struct SolveRecord {
    /// The verdict.
    pub feasibility: Feasibility,
    /// Query duration.
    pub duration: Duration,
    /// Whether preprocessing decided it.
    pub preprocess_decided: bool,
    /// Condition size (DAG nodes).
    pub condition_nodes: u64,
}

impl SolveRecord {
    /// Extracts the record from an outcome.
    pub fn from_outcome(o: &CheckOutcome) -> SolveRecord {
        SolveRecord {
            feasibility: o.feasibility,
            duration: o.duration,
            preprocess_decided: o.preprocess_decided,
            condition_nodes: o.condition_nodes,
        }
    }
}

/// A path-feasibility decision procedure — the pluggable half of the fused
/// design. Implementations must not require the caller to compute any
/// condition: they receive the dependence paths and the graph only.
pub trait FeasibilityEngine {
    /// A short identifier for tables.
    fn name(&self) -> &'static str;

    /// Decides whether the conjunction of the given paths' conditions is
    /// satisfiable (`⋀_{π ∈ Π} φ_π` of Algorithm 2).
    fn check_paths(
        &mut self,
        program: &Program,
        pdg: &Pdg,
        paths: &[DependencePath],
    ) -> CheckOutcome;

    /// The engine's memory accountant.
    fn memory(&self) -> &MemoryAccountant;

    /// Per-query records collected so far.
    fn records(&self) -> &[SolveRecord];
}

/// One reported bug.
#[derive(Debug, Clone)]
pub struct BugReport {
    /// The fact's origin.
    pub source: Vertex,
    /// The sink statement.
    pub sink: Vertex,
    /// The verdict that triggered the report ([`Feasibility::Feasible`] or,
    /// conservatively, [`Feasibility::Unknown`]).
    pub verdict: Feasibility,
    /// The witnessing (or undecided) path.
    pub path: DependencePath,
}

/// Aggregate results of one analysis run.
#[derive(Debug, Clone)]
pub struct AnalysisRun {
    /// Engine name.
    pub engine: &'static str,
    /// Bug reports (feasible or undecided candidates).
    pub reports: Vec<BugReport>,
    /// Candidates whose every path was proven infeasible.
    pub suppressed: usize,
    /// Total candidates discovered by propagation.
    pub candidates: usize,
    /// Feasibility queries issued.
    pub queries: usize,
    /// Wall-clock duration: propagation phase.
    pub propagate_time: Duration,
    /// Wall-clock duration: solving phase.
    pub solve_time: Duration,
    /// Peak tracked memory, bytes (all categories).
    pub peak_memory: u64,
}

impl AnalysisRun {
    /// Total wall-clock time.
    pub fn total_time(&self) -> Duration {
        self.propagate_time + self.solve_time
    }
}

/// Configuration of [`analyze`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalysisOptions {
    /// Propagation limits.
    pub propagate: PropagateOptions,
}

impl AnalysisOptions {
    /// Default options.
    pub fn new() -> Self {
        Self { propagate: PropagateOptions::default() }
    }
}

/// Runs one checker over a program with the given feasibility engine.
///
/// A candidate is reported when *any* of its alternative paths is feasible;
/// it is suppressed only when every path is proven infeasible; undecided
/// candidates are reported conservatively (matching how bug detectors treat
/// solver timeouts).
pub fn analyze(
    program: &Program,
    pdg: &Pdg,
    checker: &Checker,
    engine: &mut dyn FeasibilityEngine,
    options: &AnalysisOptions,
) -> AnalysisRun {
    let t0 = Instant::now();
    let candidates: Vec<Candidate> = discover(program, pdg, checker, &options.propagate);
    let propagate_time = t0.elapsed();

    let mut reports = Vec::new();
    let mut suppressed = 0usize;
    let mut queries = 0usize;
    let t1 = Instant::now();
    for cand in &candidates {
        let mut verdict = Feasibility::Infeasible;
        let mut witness: Option<&DependencePath> = None;
        for path in &cand.paths {
            queries += 1;
            let outcome = engine.check_paths(program, pdg, std::slice::from_ref(path));
            match outcome.feasibility {
                Feasibility::Feasible => {
                    verdict = Feasibility::Feasible;
                    witness = Some(path);
                    break;
                }
                Feasibility::Unknown => {
                    verdict = Feasibility::Unknown;
                    witness.get_or_insert(path);
                }
                Feasibility::Infeasible => {}
            }
        }
        match verdict {
            Feasibility::Infeasible => suppressed += 1,
            v => reports.push(BugReport {
                source: cand.source,
                sink: cand.sink,
                verdict: v,
                path: witness.expect("non-infeasible verdict has a path").clone(),
            }),
        }
    }
    let solve_time = t1.elapsed();

    // The graph itself is retained for the whole run, for every engine.
    let graph_bytes = program.size() as u64 * BYTES_PER_DEF;
    let mut mem = engine.memory().clone();
    mem.charge(Category::Graph, graph_bytes);

    AnalysisRun {
        engine: engine.name(),
        reports,
        suppressed,
        candidates: candidates.len(),
        queries,
        propagate_time,
        solve_time,
        peak_memory: mem.peak_total(),
    }
}

/// Runs one checker with per-thread engines, fanning candidates out over
/// `threads` worker threads (the paper's evaluation used fifteen). Each
/// worker owns an engine built by `factory`, so no locking is needed on
/// solver state; reports are merged and sorted for determinism.
pub fn analyze_parallel(
    program: &Program,
    pdg: &Pdg,
    checker: &Checker,
    factory: &(dyn Fn() -> Box<dyn FeasibilityEngine> + Sync),
    threads: usize,
    options: &AnalysisOptions,
) -> AnalysisRun {
    let t0 = Instant::now();
    let candidates: Vec<Candidate> = discover(program, pdg, checker, &options.propagate);
    let propagate_time = t0.elapsed();
    let threads = threads.max(1);

    struct WorkerOut {
        reports: Vec<BugReport>,
        suppressed: usize,
        queries: usize,
        peak_memory: u64,
    }

    let t1 = Instant::now();
    let outputs: Vec<WorkerOut> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for worker in 0..threads {
            let cands = &candidates;
            handles.push(scope.spawn(move || {
                let mut engine = factory();
                let mut out = WorkerOut {
                    reports: Vec::new(),
                    suppressed: 0,
                    queries: 0,
                    peak_memory: 0,
                };
                // Strided partition keeps the assignment deterministic.
                for cand in cands.iter().skip(worker).step_by(threads) {
                    let mut verdict = Feasibility::Infeasible;
                    let mut witness: Option<&DependencePath> = None;
                    for path in &cand.paths {
                        out.queries += 1;
                        let o = engine.check_paths(program, pdg, std::slice::from_ref(path));
                        match o.feasibility {
                            Feasibility::Feasible => {
                                verdict = Feasibility::Feasible;
                                witness = Some(path);
                                break;
                            }
                            Feasibility::Unknown => {
                                verdict = Feasibility::Unknown;
                                witness.get_or_insert(path);
                            }
                            Feasibility::Infeasible => {}
                        }
                    }
                    match verdict {
                        Feasibility::Infeasible => out.suppressed += 1,
                        v => out.reports.push(BugReport {
                            source: cand.source,
                            sink: cand.sink,
                            verdict: v,
                            path: witness.expect("non-infeasible has a path").clone(),
                        }),
                    }
                }
                out.peak_memory = engine.memory().peak_total();
                out
            }));
        }
        handles.into_iter().map(|h| h.join().expect("worker thread")).collect()
    });
    let solve_time = t1.elapsed();

    let mut reports: Vec<BugReport> = Vec::new();
    let mut suppressed = 0usize;
    let mut queries = 0usize;
    let mut engine_peak = 0u64;
    for o in outputs {
        reports.extend(o.reports);
        suppressed += o.suppressed;
        queries += o.queries;
        // Engines run concurrently: their peaks coexist.
        engine_peak += o.peak_memory;
    }
    reports.sort_by_key(|r| (r.source, r.sink));
    let graph_bytes = program.size() as u64 * BYTES_PER_DEF;

    AnalysisRun {
        engine: "parallel",
        reports,
        suppressed,
        candidates: candidates.len(),
        queries,
        propagate_time,
        solve_time,
        peak_memory: engine_peak + graph_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph_solver::FusionSolver;
    use fusion_ir::{compile, CompileOptions};
    use fusion_smt::solver::SolverConfig;

    fn run(src: &str) -> AnalysisRun {
        let p = compile(src, CompileOptions::default()).expect("compile");
        let g = Pdg::build(&p);
        let mut engine = FusionSolver::new(SolverConfig::default());
        analyze(&p, &g, &Checker::null_deref(), &mut engine, &AnalysisOptions::new())
    }

    #[test]
    fn reports_feasible_and_suppresses_infeasible() {
        let run = run(
            "extern fn deref(p);\n\
             fn feasible(x) { let q = null; let r = 1; if (x > 0) { r = q; } deref(r); return 0; }\n\
             fn infeasible(x) { let q = null; let r = 1; if (x > 5) { if (x < 3) { r = q; } } deref(r); return 0; }",
        );
        assert_eq!(run.candidates, 2);
        assert_eq!(run.reports.len(), 1);
        assert_eq!(run.suppressed, 1);
        assert_eq!(run.reports[0].verdict, Feasibility::Feasible);
    }

    #[test]
    fn unconditional_flow_is_reported() {
        let run = run("extern fn deref(p); fn f() { let q = null; deref(q); return 0; }");
        assert_eq!(run.reports.len(), 1);
        assert_eq!(run.suppressed, 0);
    }

    #[test]
    fn clean_program_reports_nothing() {
        let run = run("extern fn deref(p); fn f(x) { deref(x); return 0; }");
        assert_eq!(run.candidates, 0);
        assert!(run.reports.is_empty());
    }

    #[test]
    fn parallel_matches_sequential() {
        let src = "extern fn deref(p);\n\
             fn a(x) { let q = null; let r = 1; if (x > 1) { r = q; } deref(r); return 0; }\n\
             fn b(x) { let q = null; let r = 1; if (x * 2 == 5) { r = q; } deref(r); return 0; }\n\
             fn c(x) { let q = null; let r = 1; if (x == 9) { r = q; } deref(r); return 0; }";
        let p = compile(src, CompileOptions::default()).expect("compile");
        let g = Pdg::build(&p);
        let mut engine = FusionSolver::new(SolverConfig::default());
        let seq = analyze(&p, &g, &Checker::null_deref(), &mut engine, &AnalysisOptions::new());
        let factory = || -> Box<dyn FeasibilityEngine> {
            Box::new(FusionSolver::new(SolverConfig::default()))
        };
        for threads in [1usize, 2, 4] {
            let par = analyze_parallel(
                &p,
                &g,
                &Checker::null_deref(),
                &factory,
                threads,
                &AnalysisOptions::new(),
            );
            let key = |r: &crate::engine::BugReport| (r.source, r.sink);
            let mut a: Vec<_> = seq.reports.iter().map(key).collect();
            let mut b: Vec<_> = par.reports.iter().map(key).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "threads = {threads}");
            assert_eq!(seq.suppressed, par.suppressed);
        }
    }

    #[test]
    fn timings_and_memory_are_populated() {
        let run = run("extern fn deref(p); fn f() { let q = null; deref(q); return 0; }");
        assert!(run.peak_memory > 0);
        assert!(run.queries >= 1);
    }
}

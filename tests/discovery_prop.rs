//! Differential property tests for the optimized candidate discovery.
//!
//! PR 3 replaced the propagation's quadratic hot loops — the linear
//! candidate scan in `record` and the `Vec`-scan cycle check with a
//! stack clone per step — with a `(source, sink)` index map and a
//! rolling-hash visited set, and added sharded discovery
//! (`discover_all`). The original implementation is kept as
//! `discover_reference`, the pseudo-oracle: on arbitrary generated
//! programs and every checker, the optimized discovery and every shard
//! count must reproduce its candidates *exactly* — same order, same
//! paths, same links.

use fusion::checkers::Checker;
use fusion::propagate::{discover, discover_all, discover_reference, Candidate, PropagateOptions};
use fusion_ir::{compile_ast, CompileOptions};
use fusion_pdg::graph::Pdg;
use fusion_workloads::{generate, GenConfig};
use proptest::prelude::*;

/// Everything a candidate carries, in a comparable form.
type CandKey = (
    fusion_pdg::graph::Vertex,
    fusion_pdg::graph::Vertex,
    Vec<(Vec<fusion_pdg::graph::Vertex>, Vec<fusion_pdg::paths::Link>)>,
);

fn keys(cands: &[Candidate]) -> Vec<CandKey> {
    cands
        .iter()
        .map(|c| {
            (
                c.source,
                c.sink,
                c.paths
                    .iter()
                    .map(|p| (p.nodes.clone(), p.links.clone()))
                    .collect(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn optimized_discovery_matches_reference(seed in 0u64..100_000) {
        let cfg = GenConfig { seed, functions: 12, ..Default::default() };
        let mut subject = generate(&cfg);
        let program =
            compile_ast(&subject.surface, &mut subject.interner, CompileOptions::default())
                .expect("compile");
        let pdg = Pdg::build(&program);
        let opts = PropagateOptions::default();
        for checker in [Checker::null_deref(), Checker::cwe23(), Checker::cwe402()] {
            let reference = keys(&discover_reference(&program, &pdg, &checker, &opts));
            let optimized = keys(&discover(&program, &pdg, &checker, &opts));
            prop_assert_eq!(
                &optimized, &reference,
                "optimized discovery diverged, seed {} {}", seed, checker.kind
            );
        }
    }

    #[test]
    fn sharded_discovery_matches_sequential(seed in 0u64..100_000) {
        let cfg = GenConfig { seed, functions: 12, ..Default::default() };
        let mut subject = generate(&cfg);
        let program =
            compile_ast(&subject.surface, &mut subject.interner, CompileOptions::default())
                .expect("compile");
        let pdg = Pdg::build(&program);
        // Disable the small-program sequential fallback so the sharded
        // code path stays exercised regardless of work-item count.
        let opts = PropagateOptions {
            sequential_discovery_threshold: 0,
            ..PropagateOptions::default()
        };
        for checker in [Checker::null_deref(), Checker::cwe402()] {
            let sequential = discover_all(&program, &pdg, &checker, &opts, 1);
            let want = keys(&sequential.candidates);
            for shards in 2..=8 {
                let sharded = discover_all(&program, &pdg, &checker, &opts, shards);
                prop_assert_eq!(
                    &keys(&sharded.candidates), &want,
                    "sharded discovery diverged, seed {} shards {} {}",
                    seed, shards, checker.kind
                );
                prop_assert_eq!(
                    sharded.steps, sequential.steps,
                    "step counts must not depend on sharding, seed {}", seed
                );
                // Transient DFS bytes must be fully released.
                for acct in &sharded.memory {
                    prop_assert_eq!(
                        acct.current(fusion::memory::Category::Graph), 0,
                        "discovery shard leaked transient bytes, seed {}", seed
                    );
                }
            }
        }
    }
}

//! Solver playground: the SMT substrate stand-alone.
//!
//! ```sh
//! cargo run --example solver_playground
//! ```
//!
//! Demonstrates Algorithm 3 on hand-built conditions: preprocessing
//! deciding the paper's Fig. 1(b) formula without bit-blasting, a
//! bit-blasted factorization query, and the deliberate blow-up of
//! quantifier elimination by Shannon expansion.

use fusion_smt::preprocess::preprocess;
use fusion_smt::solver::{smt_solve, SolverConfig};
use fusion_smt::tactic::quantifier_eliminate_expansion;
use fusion_smt::term::{BvOp, BvPred, Sort, TermKind, TermPool};

fn main() {
    // 1. Fig. 1(b): unconstrained propagation decides sat instantly.
    let mut pool = TermPool::new();
    let names = ["x1", "y1", "z1", "c", "x2", "y2", "z2", "d"];
    let v: Vec<_> = names.iter().map(|n| pool.var(n, Sort::Bv(32))).collect();
    let two = pool.bv_const(2, 32);
    let m1 = pool.bv(BvOp::Mul, v[0], two);
    let m2 = pool.bv(BvOp::Mul, v[4], two);
    let cmp = pool.pred(BvPred::Slt, v[3], v[7]);
    let parts = vec![
        pool.eq(v[1], m1),
        pool.eq(v[2], v[1]),
        pool.eq(v[3], v[2]),
        pool.eq(v[5], m2),
        pool.eq(v[6], v[5]),
        pool.eq(v[7], v[6]),
        cmp,
    ];
    let fig1b = pool.and(&parts);
    let before = pool.dag_size(fig1b);
    let (result, stats) = smt_solve(&mut pool, fig1b, &SolverConfig::default());
    println!(
        "Fig. 1(b) condition: {before} nodes → {:?} in {} preprocessing round(s), \
         {} CNF clauses (0 = decided without bit-blasting)",
        result.is_sat(),
        stats.preprocess_rounds,
        stats.cnf_clauses
    );

    // 2. A query that genuinely needs the SAT backend: factor 391.
    let mut pool = TermPool::new();
    let x = pool.var("x", Sort::Bv(16));
    let y = pool.var("y", Sort::Bv(16));
    let prod = pool.bv(BvOp::Mul, x, y);
    let c = pool.bv_const(391, 16);
    let one = pool.bv_const(1, 16);
    let e = pool.eq(prod, c);
    let gx = pool.pred(BvPred::Ult, one, x);
    let gy = pool.pred(BvPred::Ult, one, y);
    let f = pool.and(&[e, gx, gy]);
    let (result, stats) = smt_solve(&mut pool, f, &SolverConfig::default());
    match result {
        fusion_smt::solver::SatResult::Sat(model) => {
            let TermKind::Var(vx) = *pool.kind(x) else {
                unreachable!()
            };
            let TermKind::Var(vy) = *pool.kind(y) else {
                unreachable!()
            };
            println!(
                "x * y = 391 with x, y > 1: x = {}, y = {} ({} clauses, {} conflicts)",
                model.value(vx).unwrap_or(0),
                model.value(vy).unwrap_or(0),
                stats.cnf_clauses,
                stats.sat_conflicts
            );
        }
        other => println!("unexpected: {other:?}"),
    }

    // 3. Quantifier elimination by pure expansion: watch it blow the budget.
    let mut pool = TermPool::new();
    let x = pool.var("x", Sort::Bv(32));
    let y = pool.var("y", Sort::Bv(32));
    let z = pool.var("z", Sort::Bv(32));
    let TermKind::Var(vx) = *pool.kind(x) else {
        unreachable!()
    };
    let p = pool.bv(BvOp::Mul, x, y);
    let lt = pool.pred(BvPred::Ult, p, z);
    let gt = pool.pred(BvPred::Ult, z, x);
    let f = pool.and2(lt, gt);
    match quantifier_eliminate_expansion(&mut pool, f, &[vx], 5_000) {
        Ok(r) => println!("QE finished with {} nodes", pool.dag_size(r)),
        Err(e) => println!("QE blew up exactly as §5.1 observes: {e}"),
    }

    // 4. The preprocessing pipeline as a library: inspect the residue.
    let mut pool = TermPool::new();
    let a = pool.var("a", Sort::Bv(32));
    let b = pool.var("b", Sort::Bv(32));
    let two = pool.bv_const(2, 32);
    let one = pool.bv_const(1, 32);
    let ta = pool.bv(BvOp::Mul, a, two);
    let tb0 = pool.bv(BvOp::Mul, b, two);
    let tb = pool.bv(BvOp::Add, tb0, one);
    let eq = pool.eq(ta, tb);
    let pre = preprocess(&mut pool, eq);
    println!(
        "2a = 2b + 1 preprocesses to `{}` (known-bits parity refutation)",
        pool.display(pre.term)
    );
}

//! Dynamic cross-validation: the static verdicts must agree with actual
//! executions.
//!
//! The programs are crafted so the only way `deref` can receive the value
//! 0 is through the null source (all other values are provably nonzero).
//! Brute-forcing inputs through the reference interpreter then gives
//! ground truth: a candidate is truly feasible iff some input makes the
//! trace contain `deref(0)`.

use fusion::checkers::Checker;
use fusion::engine::{analyze, AnalysisOptions, Feasibility};
use fusion::graph_solver::FusionSolver;
use fusion_ir::interp::eval_core;
use fusion_ir::{compile, CompileOptions, Program};
use fusion_pdg::graph::Pdg;
use fusion_smt::solver::SolverConfig;

/// Does any input in the sampled space make `f(x)` call `deref(0)`?
fn dynamically_triggers(program: &Program, func: &str, inputs: impl Iterator<Item = u32>) -> bool {
    let f = program.func_by_name(func).expect("function exists");
    let deref_sym = program.interner.lookup("deref").expect("deref declared");
    for x in inputs {
        let (_, trace) = eval_core(program, f.id, &[x], 1_000_000).expect("evaluates");
        if trace
            .extern_calls
            .iter()
            .any(|(name, args)| *name == deref_sym && args == &[0])
        {
            return true;
        }
    }
    false
}

fn static_verdict(program: &Program, pdg: &Pdg) -> Vec<Feasibility> {
    let mut engine = FusionSolver::new(SolverConfig::default());
    let run = analyze(
        program,
        pdg,
        &Checker::null_deref(),
        &mut engine,
        &AnalysisOptions::new(),
    );
    run.reports.iter().map(|r| r.verdict).collect()
}

/// Each case: (source text, the input range to brute force).
/// Non-null values flowing to `deref` are kept nonzero by construction.
fn check_case(src: &str, range: std::ops::Range<u32>, expect_feasible: bool) {
    let program = compile(src, CompileOptions::default()).expect("compile");
    let pdg = Pdg::build(&program);
    let verdicts = static_verdict(&program, &pdg);
    let dynamic = dynamically_triggers(&program, "f", range);
    if expect_feasible {
        assert_eq!(verdicts, vec![Feasibility::Feasible], "static must report");
        assert!(dynamic, "a concrete witness must exist");
    } else {
        assert!(
            verdicts.is_empty(),
            "static must suppress, got {verdicts:?}"
        );
        assert!(!dynamic, "no input may trigger the bug");
    }
}

#[test]
fn feasible_equality_guard_has_witness() {
    check_case(
        "extern fn deref(p);\n\
         fn f(x) { let q = null; let r = 1; if (x == 37) { r = q; } deref(r); return 0; }",
        0..64,
        true,
    );
}

#[test]
fn parity_guard_never_triggers() {
    check_case(
        "extern fn deref(p);\n\
         fn f(x) { let q = null; let r = 1; if (x * 2 == 7) { r = q; } deref(r); return 0; }",
        0..4096,
        false,
    );
}

#[test]
fn range_contradiction_never_triggers() {
    check_case(
        "extern fn deref(p);\n\
         fn f(x) { let q = null; let r = 1; if (x > 5) { if (x < 3) { r = q; } } deref(r); return 0; }",
        0..4096,
        false,
    );
}

#[test]
fn interprocedural_witness_exists() {
    check_case(
        "extern fn deref(p);\n\
         fn twice(v) { return v * 2; }\n\
         fn f(x) { let q = null; let r = 1; if (twice(x) == 14) { r = q; } deref(r); return 0; }",
        0..64,
        true,
    );
}

#[test]
fn masked_guard_never_triggers() {
    check_case(
        "extern fn deref(p);\n\
         fn f(x) { let q = null; let r = 1; if ((x & 3) == 5) { r = q; } deref(r); return 0; }",
        0..4096,
        false,
    );
}

#[test]
fn loop_unrolled_guard_matches_bounded_semantics() {
    // After two unrollings, i can be 0, 1 or 2; the guard i == 2 is
    // reachable with n >= 2 — and the interpreter's bounded semantics
    // agree exactly.
    check_case(
        "extern fn deref(p);\n\
         fn f(n) { let q = null; let r = 1; let i = 0;\n\
           while (i < n) { i = i + 1; }\n\
           if (i == 2) { r = q; } deref(r); return 0; }",
        0..8,
        true,
    );
}

#[test]
fn bitwise_guard_has_witness() {
    check_case(
        "extern fn deref(p);\n\
         fn f(x) { let q = null; let r = 1; if ((x & 7) == 5) { r = q; } deref(r); return 0; }",
        0..64,
        true,
    );
}

#[test]
fn shift_guard_never_triggers() {
    // (x << 1) is always even; equality with 9 is impossible.
    check_case(
        "extern fn deref(p);\n\
         fn f(x) { let q = null; let r = 1; if ((x << 1) == 9) { r = q; } deref(r); return 0; }",
        0..4096,
        false,
    );
}

#[test]
fn callee_guard_contradiction_never_triggers() {
    check_case(
        "extern fn deref(p);\n\
         fn make(x) { let q = null; let r = 1; if (x < 5) { r = q; } return r; }\n\
         fn f(a) { let r = 1; if (a > 10) { r = make(a); } deref(r); return 0; }",
        0..4096,
        false,
    );
}

#[test]
fn null_through_identity_chain_witness() {
    check_case(
        "extern fn deref(p);\n\
         fn id(v) { return v; }\n\
         fn f(x) { let q = null; let held = id(id(id(q))); let r = 1;\n\
           if (x > 100) { r = held; } deref(r); return 0; }",
        0..256,
        true,
    );
}

//! Quickstart: find a path-sensitive null dereference in a small program.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! The program below is the paper's Fig. 1 example: a null pointer escapes
//! `foo` only when `bar(a) < bar(b)`, a condition whose conventional path
//! condition instantiates `bar`'s return-value condition at both call
//! sites. Fusion decides it on the dependence graph without cloning `bar`
//! at all.

use fusion::checkers::Checker;
use fusion::engine::{analyze, AnalysisOptions};
use fusion::graph_solver::FusionSolver;
use fusion_ir::{compile, CompileOptions};
use fusion_pdg::graph::Pdg;
use fusion_smt::solver::SolverConfig;

const PROGRAM: &str = r#"
extern fn deref(p);

fn bar(x) {
    let y = x * 2;
    let z = y;
    return z;
}

fn foo(a, b) {
    let p = null;
    let c = bar(a);
    let d = bar(b);
    let r = 1;
    if (c < d) { r = p; }    // feasible: pick any a < b
    deref(r);
    return 0;
}

fn safe(x) {
    let p = null;
    let r = 1;
    if (x > 5) {
        if (x < 3) { r = p; }  // infeasible: x > 5 && x < 3
    }
    deref(r);
    return 0;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = compile(PROGRAM, CompileOptions::default())?;
    let pdg = Pdg::build(&program);
    println!(
        "compiled {} functions, {} PDG vertices, {} edges",
        program.functions.len(),
        pdg.stats().vertices,
        pdg.stats().edges()
    );

    let mut engine = FusionSolver::new(SolverConfig::default());
    let run = analyze(
        &program,
        &pdg,
        &Checker::null_deref(),
        &mut engine,
        &AnalysisOptions::new(),
    );

    println!(
        "\n{} candidate flow(s): {} reported, {} suppressed as infeasible",
        run.candidates,
        run.reports.len(),
        run.suppressed
    );
    for report in &run.reports {
        let func = program.func(report.source.func);
        println!(
            "  BUG ({:?}): null born at {} in `{}` reaches deref at {} — witness path has {} vertices",
            report.verdict,
            report.source.var,
            program.name(func.name),
            report.sink.var,
            report.path.nodes.len(),
        );
    }
    assert_eq!(
        run.reports.len(),
        1,
        "exactly the feasible flow is reported"
    );
    assert_eq!(
        run.suppressed, 1,
        "the contradictory guard is proven infeasible"
    );
    println!("\nthe `safe` function's candidate was suppressed: x > 5 && x < 3 is unsat.");
    Ok(())
}

//! A bounded multi-producer/multi-consumer channel for the streaming
//! discovery→solve pipeline.
//!
//! Discovery shards (producers) push completed sink groups; solve
//! workers (consumers) pop them as they arrive, so solving overlaps
//! discovery wall-time instead of waiting behind a full barrier. In the
//! fused multi-client pipeline the items are *multi-client* groups —
//! candidates from any checker, grouped and sticky-routed by sink
//! function alone — so cross-checker queries on one sink land on the
//! same consumer and share one solver session. The
//! channel is **bounded**: when solving falls behind, producers block
//! rather than queueing unbounded work (which would both balloon memory
//! and defeat the accounting invariants). Built on `std` only
//! (`Mutex<VecDeque>` + two `Condvar`s) — no external dependencies.
//!
//! Producers must announce completion via
//! [`BoundedQueue::producer_done`]; once every registered producer is
//! done and the queue drains, [`BoundedQueue::recv`] returns `None` and
//! consumers shut down.
//!
//! ## Liveness under consumer failure
//!
//! A consumer that stops receiving — most importantly, one that
//! **panics** mid-solve — would historically leave producers parked on
//! the `not_full` condvar forever: the scoped-thread join then deadlocks
//! the whole pipeline instead of propagating the panic. The channel
//! therefore supports [`BoundedQueue::close`]: closing wakes *every*
//! waiter on both condvars, makes [`BoundedQueue::send`] return `false`
//! (item refused) and [`BoundedQueue::recv`] return `None` immediately.
//! Consumers hold a [`CloseGuard`] so the close fires on unwind as well
//! as on orderly return; producers that see `send` fail stop producing
//! and still call `producer_done`, so every exit path converges.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct State<T> {
    queue: VecDeque<T>,
    /// Producers still running; `recv` only reports exhaustion when
    /// this reaches zero *and* the queue is empty.
    producers: usize,
    /// Set by [`BoundedQueue::close`]: sends are refused and receives
    /// drain nothing further. Sticky.
    closed: bool,
}

/// A bounded MPMC queue. All methods take `&self`; share by reference
/// across scoped producer/consumer threads.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (rounded up to 1), fed
    /// by exactly `producers` producers.
    pub fn new(capacity: usize, producers: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                producers,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Pushes an item, blocking while the queue is at capacity. Returns
    /// `true` if the item was enqueued, `false` if the queue was (or
    /// became, while blocked) closed — the signal that the consumer side
    /// is gone and the producer should wind down. The item is dropped in
    /// that case.
    #[must_use = "a false return means the consumer side is gone; stop producing"]
    pub fn send(&self, item: T) -> bool {
        let mut state = self.state.lock().expect("stream queue poisoned");
        while !state.closed && state.queue.len() >= self.capacity {
            state = self.not_full.wait(state).expect("stream queue poisoned");
        }
        if state.closed {
            return false;
        }
        state.queue.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        true
    }

    /// Pops an item, blocking while the queue is empty and producers
    /// remain. Returns `None` once all producers are done and the queue
    /// has drained — the consumer shutdown signal — or immediately once
    /// the queue is closed (buffered items are discarded: a closed
    /// pipeline's results are incomplete by definition and must not be
    /// half-consumed).
    pub fn recv(&self) -> Option<T> {
        let mut state = self.state.lock().expect("stream queue poisoned");
        loop {
            if state.closed {
                return None;
            }
            if let Some(item) = state.queue.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.producers == 0 {
                return None;
            }
            state = self.not_empty.wait(state).expect("stream queue poisoned");
        }
    }

    /// Marks one producer as finished. When the last producer finishes,
    /// all blocked consumers wake and drain out.
    pub fn producer_done(&self) {
        let mut state = self.state.lock().expect("stream queue poisoned");
        state.producers = state.producers.saturating_sub(1);
        let last = state.producers == 0;
        drop(state);
        if last {
            self.not_empty.notify_all();
        }
    }

    /// Closes the queue: every parked producer and consumer wakes,
    /// pending and future [`BoundedQueue::send`]s return `false`, and
    /// [`BoundedQueue::recv`] returns `None`. Idempotent. Call when the
    /// consumer side can no longer make progress (see [`CloseGuard`]),
    /// so producers blocked on a full queue are never stranded.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("stream queue poisoned");
        state.closed = true;
        drop(state);
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }
}

/// An RAII guard that [`close`]s a queue when dropped — including on
/// **panic unwind**. Each streaming consumer holds one for its own
/// queue: if the consumer dies mid-solve, the close wakes any producer
/// parked on the queue's `not_full` condvar, the producer's `send`
/// returns `false`, and the pipeline unwinds instead of deadlocking at
/// thread join.
///
/// [`close`]: BoundedQueue::close
pub struct CloseGuard<'a, T> {
    queue: &'a BoundedQueue<T>,
}

impl<'a, T> CloseGuard<'a, T> {
    /// Guards `queue`, closing it when this value drops.
    pub fn new(queue: &'a BoundedQueue<T>) -> Self {
        CloseGuard { queue }
    }
}

impl<T> Drop for CloseGuard<'_, T> {
    fn drop(&mut self) {
        self.queue.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn drains_in_fifo_order_single_threaded() {
        let q = BoundedQueue::new(8, 1);
        for i in 0..5 {
            assert!(q.send(i));
        }
        q.producer_done();
        let mut got = Vec::new();
        while let Some(x) = q.recv() {
            got.push(x);
        }
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn recv_returns_none_only_after_all_producers_finish() {
        let q = BoundedQueue::new(4, 2);
        assert!(q.send(1));
        q.producer_done();
        assert_eq!(q.recv(), Some(1));
        // One producer still live: a non-blocking check is impossible
        // with condvars, so finish it from another thread while a
        // consumer blocks in recv.
        std::thread::scope(|scope| {
            let q = &q;
            scope.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                assert!(q.send(2));
                q.producer_done();
            });
            assert_eq!(q.recv(), Some(2));
            assert_eq!(q.recv(), None);
        });
    }

    #[test]
    fn bounded_capacity_blocks_producers_until_consumed() {
        let q = BoundedQueue::new(1, 1);
        let produced = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let qr = &q;
            let pr = &produced;
            scope.spawn(move || {
                for i in 0..100 {
                    assert!(qr.send(i));
                    pr.fetch_add(1, Ordering::SeqCst);
                }
                qr.producer_done();
            });
            let mut got = Vec::new();
            while let Some(x) = qr.recv() {
                got.push(x);
                // Capacity 1: the producer can be at most one item
                // ahead of what we have consumed (plus the one in
                // flight).
                assert!(produced.load(Ordering::SeqCst) <= got.len() + 1);
            }
            assert_eq!(got.len(), 100);
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        });
    }

    #[test]
    fn many_producers_many_consumers_deliver_everything_once() {
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 4;
        const PER: usize = 250;
        let q = BoundedQueue::new(8, PRODUCERS);
        let seen = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for p in 0..PRODUCERS {
                let q = &q;
                scope.spawn(move || {
                    for i in 0..PER {
                        assert!(q.send(p * PER + i));
                    }
                    q.producer_done();
                });
            }
            for _ in 0..CONSUMERS {
                let q = &q;
                let seen = &seen;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    while let Some(x) = q.recv() {
                        local.push(x);
                    }
                    seen.lock().unwrap().extend(local);
                });
            }
        });
        let mut all = seen.into_inner().unwrap();
        all.sort_unstable();
        assert_eq!(all, (0..PRODUCERS * PER).collect::<Vec<_>>());
    }

    /// The regression for the streaming-pipeline deadlock: a consumer
    /// that panics while producers are parked on a full queue must not
    /// strand them. The close-guard wakes the producer, whose `send`
    /// reports the closure, and the producer still announces
    /// `producer_done` — every thread exits.
    #[test]
    fn panicking_consumer_releases_blocked_producers() {
        let q = BoundedQueue::new(1, 1);
        let sent = AtomicUsize::new(0);
        let refused = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|scope| {
                let q = &q;
                let sent = &sent;
                let refused = &refused;
                scope.spawn(move || {
                    // Without close() this producer parks forever on
                    // not_full once the consumer is gone: capacity is 1
                    // and nothing drains.
                    for i in 0..100 {
                        if q.send(i) {
                            sent.fetch_add(1, Ordering::SeqCst);
                        } else {
                            refused.fetch_add(1, Ordering::SeqCst);
                            break;
                        }
                    }
                    q.producer_done();
                });
                let _guard = CloseGuard::new(q);
                let first = q.recv().expect("producer sent at least one item");
                assert_eq!(first, 0);
                panic!("consumer dies mid-solve");
            });
        }));
        assert!(result.is_err(), "the consumer panic must propagate");
        assert!(refused.load(Ordering::SeqCst) >= 1, "send reported closure");
        assert!(
            sent.load(Ordering::SeqCst) < 100,
            "producer wound down early"
        );
        // The queue is closed: both sides observe shutdown immediately.
        assert!(!q.send(999));
        assert_eq!(q.recv(), None);
    }

    /// Orderly completion with a close-guard in place: the guard only
    /// fires after the consumer drained everything, so nothing is lost.
    #[test]
    fn close_guard_is_harmless_on_orderly_shutdown() {
        let q = BoundedQueue::new(2, 1);
        std::thread::scope(|scope| {
            let q = &q;
            scope.spawn(move || {
                for i in 0..10 {
                    assert!(q.send(i));
                }
                q.producer_done();
            });
            let _guard = CloseGuard::new(q);
            let mut got = Vec::new();
            while let Some(x) = q.recv() {
                got.push(x);
            }
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        });
    }

    #[test]
    fn close_is_idempotent_and_sticky() {
        let q: BoundedQueue<i32> = BoundedQueue::new(4, 1);
        q.close();
        q.close();
        assert!(!q.send(1));
        assert_eq!(q.recv(), None);
    }
}

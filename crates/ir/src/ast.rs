//! Surface abstract syntax of the Fig. 4 mini-language.
//!
//! The surface language is a structured, C-like superset of the paper's core
//! language: it has expressions with literals, `if`/`else`, `while` loops and
//! early returns. [`crate::lower`] normalizes it to the paper's loop-free,
//! SSA-form core (gated with `ite`-assignments, single exit).

use crate::interner::Symbol;

/// Unary operators in surface expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Logical negation: `!e` is 1 when `e == 0`, else 0.
    Not,
    /// Arithmetic negation modulo 2^32.
    Neg,
    /// Bitwise complement.
    BitNot,
}

/// Binary operators in surface expressions.
///
/// Comparison and logical operators produce 0/1 (C semantics); all values are
/// 32-bit words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division with the SMT-LIB convention `x / 0 = 2^32 - 1`.
    Div,
    /// Unsigned remainder with `x % 0 = x`.
    Rem,
    /// Bitwise and.
    BitAnd,
    /// Bitwise or.
    BitOr,
    /// Bitwise xor.
    BitXor,
    /// Left shift.
    Shl,
    /// Logical (unsigned) right shift.
    Shr,
    /// Signed less-than, produces 0/1.
    Lt,
    /// Signed less-or-equal, produces 0/1.
    Le,
    /// Signed greater-than, produces 0/1.
    Gt,
    /// Signed greater-or-equal, produces 0/1.
    Ge,
    /// Equality, produces 0/1.
    Eq,
    /// Disequality, produces 0/1.
    Ne,
    /// Non-short-circuit logical and: `(a != 0) & (b != 0)`.
    And,
    /// Non-short-circuit logical or: `(a != 0) | (b != 0)`.
    Or,
}

/// A surface expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal, wrapped to 32 bits during lowering.
    Int(i64),
    /// The distinguished null constant (value 0, flagged as a null source).
    Null,
    /// Variable reference.
    Var(Symbol),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Call to a named function.
    Call(Symbol, Vec<Expr>),
}

/// A surface statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `let x = e;` — introduces a block-scoped binding.
    Let(Symbol, Expr),
    /// `x = e;` — assigns to an existing binding.
    Assign(Symbol, Expr),
    /// `if (e) { .. } else { .. }` — the `else` block may be empty.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (e) { .. }` — unrolled a fixed number of times by lowering.
    While(Expr, Vec<Stmt>),
    /// `return e;`
    Return(Expr),
    /// Expression evaluated for its effects (e.g. a call to a sink).
    Expr(Expr),
}

/// A surface function definition or external declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// The function's name.
    pub name: Symbol,
    /// Parameter names, in order.
    pub params: Vec<Symbol>,
    /// Body statements; meaningless when [`Function::is_extern`] is set.
    pub body: Vec<Stmt>,
    /// External declarations have no body (`f(v1, v2, ..) = ∅` in Fig. 4).
    pub is_extern: bool,
}

/// A whole surface program: a list of functions.
///
/// The identifier interner is owned separately (see
/// [`crate::parser::parse`]) so programs can be assembled programmatically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// All functions, externs included.
    pub functions: Vec<Function>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finds a function by name.
    pub fn function(&self, name: Symbol) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }
}

impl Expr {
    /// Convenience constructor for a binary expression.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Convenience constructor for a unary expression.
    pub fn un(op: UnOp, e: Expr) -> Expr {
        Expr::Unary(op, Box::new(e))
    }

    /// Visits every sub-expression, including `self`, depth first.
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Unary(_, e) => e.walk(f),
            Expr::Binary(_, a, b) => {
                a.walk(f);
                b.walk(f);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Int(_) | Expr::Null | Expr::Var(_) => {}
        }
    }
}

/// Visits every statement in a body, depth first, including nested blocks.
pub fn walk_stmts(stmts: &[Stmt], f: &mut impl FnMut(&Stmt)) {
    for s in stmts {
        f(s);
        match s {
            Stmt::If(_, t, e) => {
                walk_stmts(t, f);
                walk_stmts(e, f);
            }
            Stmt::While(_, b) => walk_stmts(b, f),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Interner;

    #[test]
    fn walk_visits_all_subexpressions() {
        let mut i = Interner::new();
        let x = i.intern("x");
        let e = Expr::bin(BinOp::Add, Expr::Var(x), Expr::un(UnOp::Not, Expr::Int(3)));
        let mut count = 0;
        e.walk(&mut |_| count += 1);
        assert_eq!(count, 4); // add, var, not, int
    }

    #[test]
    fn walk_stmts_recurses_into_branches() {
        let mut i = Interner::new();
        let x = i.intern("x");
        let body = vec![Stmt::If(
            Expr::Var(x),
            vec![Stmt::Return(Expr::Int(1))],
            vec![Stmt::While(Expr::Var(x), vec![Stmt::Expr(Expr::Int(0))])],
        )];
        let mut count = 0;
        walk_stmts(&body, &mut |_| count += 1);
        assert_eq!(count, 4); // if, return, while, expr
    }
}

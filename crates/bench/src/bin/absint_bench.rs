//! `absint_bench` — the abstract-interpretation triage perf harness
//! (`BENCH_absint.json`).
//!
//! One comparison over a synthetic corpus: the fused multi-client scan
//! **with** abstract-interpretation triage + solver seeding
//! (`AnalysisOptions::absint = true`, the default) against the same scan
//! **without** it (the CLI's `--no-absint`). Both sides run the
//! streaming pipeline at the same thread count over the same program,
//! and their per-checker reports are asserted byte-identical — triage is
//! refute-only, so it may only make the scan cheaper, never different.
//!
//! The corpus mixes three guard populations:
//!
//! * **parity-refutable** — `x * 2 == odd` can never hold; the interval ×
//!   known-bits domain refutes these paths before any slice, translation,
//!   or solver work, and several functions carry *only* such guards so
//!   their whole sink group (slice closure, solver session) is skipped;
//! * **opaque** — `w == k` through a nonlinear churn function; only the
//!   solver can decide these, so both sides pay the same for them;
//! * **feasible** — `x > k`; reported identically by both sides.
//!
//! Output: `BENCH_absint.json` in the working directory (override with
//! `FUSION_BENCH_OUT`). With `FUSION_BENCH_ENFORCE=1` the process exits
//! non-zero unless triage refuted at least one candidate outright, opened
//! strictly fewer sessions, computed strictly fewer slice closures, and
//! finished within 100% of the untriaged wall — the CI regression gate
//! for the triage layer.

use fusion::cache::VerdictCache;
use fusion::checkers::CheckerSet;
use fusion::engine::{
    analyze_multi_streaming_with_cache, analyze_multi_with_cache, AnalysisOptions,
    FeasibilityEngine, MultiAnalysisRun,
};
use fusion::graph_solver::FusionSolver;
use fusion::slice_cache::SliceCache;
use fusion_bench::{banner, default_budget, report, scale_from_env};
use fusion_ir::{compile, CompileOptions};
use fusion_pdg::graph::Pdg;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Thread count both sides run at.
const THREADS: usize = 4;
/// Wall-clock measurements take the best of this many repetitions.
const ITERS: usize = 3;

/// Synthetic subject with triaged, opaque and feasible flows for all
/// three default checkers.
fn triage_corpus(funcs: usize, per: usize) -> String {
    let mut s = String::from(
        "extern fn deref(p); extern fn gets(); extern fn fopen(p);\n\
         extern fn getpass(); extern fn sendmsg(x);\n",
    );
    for f in 0..funcs {
        let _ = writeln!(
            s,
            "fn churn{f}(a, b) {{ let t = a * b; let u = t * t + a; \
             let v = u * b + t; return v; }}"
        );
        // Mixed function: parity-refutable, opaque, and feasible guards
        // around all three checkers' flows.
        let _ = writeln!(s, "fn mixed{f}(x, y) {{");
        let _ = writeln!(s, "  let w = churn{f}(x, y);");
        let _ = writeln!(s, "  let q = null; let t = gets(); let p = getpass();");
        for k in 0..per {
            let odd = 2 * k + 5;
            let tgt = 77 + 2 * k + f;
            let _ = writeln!(
                s,
                "  let a{k} = 1; if (x * 2 == {odd}) {{ a{k} = q; }} deref(a{k});"
            );
            let _ = writeln!(
                s,
                "  let b{k} = 1; if (w == {tgt}) {{ b{k} = t + {k}; }} fopen(b{k});"
            );
            let _ = writeln!(
                s,
                "  let c{k} = 1; if (x > {k}) {{ c{k} = p * 2; }} sendmsg(c{k});"
            );
            let _ = writeln!(
                s,
                "  let n{k} = 1; if (y > {k}) {{ n{k} = q; }} deref(n{k});"
            );
        }
        let _ = writeln!(s, "  return 0;\n}}");
        // Parity-only function: every candidate path here is refuted by
        // the known-bits domain, so with triage on this sink group does
        // zero slice/translate/solve work and its session never opens.
        let _ = writeln!(s, "fn parityonly{f}(x) {{");
        let _ = writeln!(s, "  let q = null; let t = gets();");
        for k in 0..per {
            let odd = 2 * k + 3;
            let _ = writeln!(
                s,
                "  let a{k} = 1; if (x * 2 == {odd}) {{ a{k} = q; }} deref(a{k});"
            );
            let _ = writeln!(
                s,
                "  let b{k} = 1; if (x * 4 == {odd}) {{ b{k} = t; }} fopen(b{k});"
            );
        }
        let _ = writeln!(s, "  return 0;\n}}");
    }
    s
}

fn factory() -> impl Fn() -> Box<dyn FeasibilityEngine> + Sync {
    let budget = default_budget();
    move || Box::new(FusionSolver::new(budget)) as Box<dyn FeasibilityEngine>
}

type ReportKey = (
    fusion_pdg::graph::Vertex,
    fusion_pdg::graph::Vertex,
    fusion::engine::Feasibility,
    Vec<fusion_pdg::graph::Vertex>,
);

fn breakdown_keys(run: &MultiAnalysisRun) -> Vec<Vec<ReportKey>> {
    run.checkers
        .iter()
        .map(|b| {
            b.reports
                .iter()
                .map(|r| (r.source, r.sink, r.verdict, r.path.nodes.clone()))
                .collect()
        })
        .collect()
}

/// One measured side: best wall plus the counters of the best iteration.
#[derive(Default)]
struct Side {
    wall_us: u128,
    sessions: u64,
    slices: u64,
    queries: usize,
    triaged_paths: u64,
    triaged_candidates: u64,
    sessions_skipped: u64,
    slices_skipped: u64,
    absint_refutes: u64,
}

fn measure(
    program: &fusion_ir::Program,
    pdg: &Pdg,
    set: &CheckerSet,
    absint: bool,
    want: &[Vec<ReportKey>],
    identical: &mut bool,
) -> Side {
    let make = factory();
    let mut best = Side {
        wall_us: u128::MAX,
        ..Default::default()
    };
    for _ in 0..ITERS {
        let cache = VerdictCache::new();
        let mut opts = AnalysisOptions::new().with_slice_cache(Arc::new(SliceCache::new()));
        opts.absint = absint;
        let t = Instant::now();
        let run = analyze_multi_streaming_with_cache(
            program,
            pdg,
            set,
            &make,
            THREADS,
            &opts,
            Some(&cache),
        );
        let wall = t.elapsed().as_micros();
        if breakdown_keys(&run) != want {
            *identical = false;
        }
        if wall < best.wall_us {
            best = Side {
                wall_us: wall,
                sessions: run.stages.sessions_opened,
                slices: run.stages.slices_computed,
                queries: run.checkers.iter().map(|b| b.queries).sum(),
                triaged_paths: run.stages.triaged_paths,
                triaged_candidates: run.stages.triaged_candidates,
                sessions_skipped: run.stages.sessions_skipped,
                slices_skipped: run.stages.slices_skipped,
                absint_refutes: run.stages.absint_refutes,
            };
        }
    }
    best
}

fn main() {
    banner(
        "absint_bench: abstract-interpretation triage vs --no-absint",
        "same corpus, same threads; reports asserted byte-identical",
    );
    let budget = default_budget();
    let src = triage_corpus(5, 6);
    let program = compile(&src, CompileOptions::default()).expect("corpus compiles");
    let pdg = Pdg::build(&program);
    let set = CheckerSet::all();

    // Reference transcript: sequential, triage off — the pure solver
    // pipeline the triaged runs must reproduce byte-for-byte.
    let seq_cache = VerdictCache::new();
    let mut seq_engine = FusionSolver::new(budget);
    let mut seq_opts = AnalysisOptions::new();
    seq_opts.absint = false;
    let reference = analyze_multi_with_cache(
        &program,
        &pdg,
        &set,
        &mut seq_engine,
        &seq_opts,
        Some(&seq_cache),
    );
    let want = breakdown_keys(&reference);
    assert!(
        want.iter().all(|k| !k.is_empty()),
        "every checker must report"
    );

    let mut identical = true;
    let off = measure(&program, &pdg, &set, false, &want, &mut identical);
    let on = measure(&program, &pdg, &set, true, &want, &mut identical);
    assert!(
        identical,
        "triage on/off reports must be byte-identical to the sequential reference"
    );

    let pct = if off.wall_us == 0 {
        0.0
    } else {
        100.0 * on.wall_us as f64 / off.wall_us as f64
    };

    println!("--------------------------------------------------------------");
    println!(
        "wall:     off {:>9.3}ms   on {:>9.3}ms   ({pct:.1}% of untriaged)",
        off.wall_us as f64 / 1000.0,
        on.wall_us as f64 / 1000.0,
    );
    println!(
        "queries:  off {} -> on {}   ({} path(s) triaged, {} candidate(s) fully refuted)",
        off.queries, on.queries, on.triaged_paths, on.triaged_candidates
    );
    println!(
        "sessions: off {} opened -> on {} opened ({} skipped)",
        off.sessions, on.sessions, on.sessions_skipped
    );
    println!(
        "slices:   off {} computed -> on {} computed ({} skipped); \
         {} seeded solver refutation(s)",
        off.slices, on.slices, on.slices_skipped, on.absint_refutes
    );

    let json = format!(
        "{{\n  \"scale\": {},\n  \"threads\": {THREADS},\n  \"iters\": {ITERS},\n  \
         \"untriaged_wall_us\": {},\n  \"triaged_wall_us\": {},\n  \
         \"triaged_pct_of_untriaged\": {pct:.2},\n  \
         \"untriaged_queries\": {},\n  \"triaged_queries\": {},\n  \
         \"triaged_paths\": {},\n  \"triaged_candidates\": {},\n  \
         \"untriaged_sessions_opened\": {},\n  \"triaged_sessions_opened\": {},\n  \
         \"sessions_skipped\": {},\n  \
         \"untriaged_slices_computed\": {},\n  \"triaged_slices_computed\": {},\n  \
         \"slices_skipped\": {},\n  \"absint_refutes\": {},\n  \
         \"reports_identical\": {identical}\n}}\n",
        scale_from_env(),
        off.wall_us,
        on.wall_us,
        off.queries,
        on.queries,
        on.triaged_paths,
        on.triaged_candidates,
        off.sessions,
        on.sessions,
        on.sessions_skipped,
        off.slices,
        on.slices,
        on.slices_skipped,
        on.absint_refutes,
    );
    report::write("BENCH_absint.json", &json);

    // CI gates: triage must avoid real work — at least one candidate
    // refuted outright, strictly fewer sessions and slice closures,
    // and no wall regression (≤ 100% of the untriaged run).
    let gate = report::Gate::from_env();
    gate.require(on.triaged_candidates > 0, || {
        "triage refuted no candidates".into()
    });
    gate.require(on.sessions < off.sessions, || {
        format!(
            "triaged run opened {} sessions, untriaged opened {}",
            on.sessions, off.sessions
        )
    });
    gate.require(on.slices < off.slices, || {
        format!(
            "triaged run computed {} slice closures, untriaged computed {}",
            on.slices, off.slices
        )
    });
    gate.require(on.wall_us <= off.wall_us, || {
        format!(
            "triaged wall {}us exceeds untriaged wall {}us",
            on.wall_us, off.wall_us
        )
    });
    gate.pass(
        "triage refuted candidates, opened fewer sessions, \
         computed fewer slices, and did not regress wall",
    );
}

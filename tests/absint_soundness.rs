//! Soundness properties of the abstract-interpretation triage
//! (`fusion::absint`).
//!
//! Three contracts, each checked against an independent oracle:
//!
//! 1. **Over-approximation** — on arbitrary generated programs and
//!    arbitrary concrete arguments, every definition's concrete value is
//!    admitted by its abstract fact: the interval contains it, the known
//!    bits agree with it, and the Const/Affine shape (when not Opaque)
//!    predicts it exactly. The oracle is the concrete core evaluator,
//!    which shares no code with the abstract transfer functions.
//! 2. **Refutations are genuine** — every dependence path the triage
//!    refutes is independently proven infeasible by Algorithm 4 (the
//!    unoptimized clone-everything graph solver), which never sees the
//!    abstract facts: its `translate()` pipeline is unseeded by design.
//! 3. **Refute-only invisibility** — the full fused analysis produces
//!    *byte-identical* per-checker reports with triage on and off, across
//!    every driver (sequential, barrier, streaming), thread counts 1–8,
//!    with and without the verdict cache, with and without incremental
//!    sessions. Triage may only make the scan cheaper, never different.

use fusion::absint::ProgramFacts;
use fusion::cache::VerdictCache;
use fusion::checkers::{CheckKind, Checker, CheckerSet};
use fusion::engine::{
    analyze_multi_parallel_with_cache, analyze_multi_streaming_with_cache,
    analyze_multi_with_cache, AnalysisOptions, Feasibility, FeasibilityEngine, MultiAnalysisRun,
};
use fusion::graph_solver::{FusionSolver, UnoptimizedGraphSolver};
use fusion::propagate::{discover, PropagateOptions};
use fusion_ir::interp::eval_core;
use fusion_ir::{compile, compile_ast, CompileOptions, Program};
use fusion_pdg::graph::Pdg;
use fusion_smt::solver::SolverConfig;
use fusion_workloads::{generate, GenConfig};
use proptest::prelude::*;

/// Deterministic argument material (splitmix64).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mixed small/large argument values: small ones exercise the interval
/// component near its bounds, large ones the wrapping paths.
fn gen_args(n: usize, state: &mut u64) -> Vec<u32> {
    (0..n)
        .map(|_| {
            let raw = splitmix(state);
            match raw & 3 {
                0 => (raw >> 8) as u32 % 7,
                1 => u32::MAX - ((raw >> 8) as u32 % 5),
                _ => (raw >> 16) as u32,
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn abstract_facts_over_approximate_concrete_evaluation(
        seed in 0u64..100_000,
        arg_seed in 0u64..100_000,
    ) {
        let cfg = GenConfig { seed, functions: 10, ..Default::default() };
        let mut subject = generate(&cfg);
        let program =
            compile_ast(&subject.surface, &mut subject.interner, CompileOptions::default())
                .expect("compile");
        let facts = ProgramFacts::compute(&program);
        prop_assert!(facts.matches(&program));
        let mut state = seed ^ (arg_seed << 17) ^ 0xabcd_ef01;
        for func in &program.functions {
            if func.is_extern {
                continue;
            }
            for _trial in 0..4 {
                let args = gen_args(func.params.len(), &mut state);
                let Ok((ev, _)) = eval_core(&program, func.id, &args, 100_000) else {
                    continue; // pathological speculative call tree
                };
                for def in &func.defs {
                    let v = ev.values[def.var.index()];
                    let av = facts.value(func.id, def.var);
                    prop_assert!(
                        av.contains(v),
                        "seed {seed}: {}:{} = {v} outside {av:?}",
                        program.name(func.name),
                        def.var
                    );
                    prop_assert!(
                        av.shape_matches(v, &args),
                        "seed {seed}: {}:{} = {v} contradicts shape {av:?} (args {args:?})",
                        program.name(func.name),
                        def.var
                    );
                }
                prop_assert!(
                    facts.ret_fact(func.id).contains(ev.ret),
                    "seed {seed}: return fact of {} excludes {}",
                    program.name(func.name),
                    ev.ret
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn triage_refutations_are_unsat_under_algorithm_4(seed in 0u64..100_000) {
        let cfg = GenConfig { seed, functions: 10, ..Default::default() };
        let mut subject = generate(&cfg);
        let program =
            compile_ast(&subject.surface, &mut subject.interner, CompileOptions::default())
                .expect("compile");
        let pdg = Pdg::build(&program);
        let facts = ProgramFacts::compute(&program);
        // Algorithm 4 never sees the facts: `translate()` is unseeded by
        // design, so its verdicts are an independent oracle.
        let mut unopt = UnoptimizedGraphSolver::new(SolverConfig::default());
        for checker in [Checker::null_deref(), Checker::cwe23(), Checker::cwe402()] {
            let candidates = discover(&program, &pdg, &checker, &PropagateOptions::default());
            for cand in &candidates {
                for path in &cand.paths {
                    if !facts.path_refuted(&program, path, checker.kind) {
                        continue;
                    }
                    let out = unopt.check_paths(&program, &pdg, std::slice::from_ref(path));
                    prop_assert_eq!(
                        out.feasibility,
                        Feasibility::Infeasible,
                        "seed {}: triage refuted a path Algorithm 4 calls {:?} ({})",
                        seed,
                        out.feasibility,
                        checker.kind
                    );
                }
            }
        }
    }
}

/// Flows for all three default checkers with guards the triage *can*
/// refute (`flag * 2 == 5` fails on parity) next to guards it cannot
/// (`flag > k`, `flag * flag == 3` — the square's bits are unknown), so
/// both the triaged and the solver-decided code paths are exercised.
fn subject() -> (Program, Pdg) {
    let mut src = String::from(
        "extern fn deref(p); extern fn gets(); extern fn fopen(p);\n\
         extern fn getpass(); extern fn sendmsg(x); extern fn send(x);\n",
    );
    for i in 0..3 {
        let lo = i * 2;
        src.push_str(&format!(
            "fn n{i}(flag) {{\n\
               let q = null; let r = 1; let s = 1; let u = 1;\n\
               if (flag > {lo}) {{ r = q; }}\n\
               if (flag * 2 == 5) {{ s = q; }}\n\
               if (flag * flag == 3) {{ u = q; }}\n\
               deref(r); deref(s); deref(u);\n\
               return 0;\n\
             }}\n\
             fn t{i}(flag) {{\n\
               let a = gets();\n\
               let c = 1; let d = 1;\n\
               if (flag > {lo}) {{ c = a + {i}; }}\n\
               if (flag * 2 == 5) {{ d = a + {i}; }}\n\
               fopen(c); fopen(d);\n\
               return 0;\n\
             }}\n\
             fn p{i}(flag) {{\n\
               let a = getpass();\n\
               let c = 1; let d = 1;\n\
               if (flag > {lo}) {{ c = a * 2; }}\n\
               if (flag * 2 == 5) {{ d = a * 2; }}\n\
               sendmsg(c); send(d);\n\
               return 0;\n\
             }}\n",
        ));
    }
    let program = compile(&src, CompileOptions::default()).expect("compile");
    let pdg = Pdg::build(&program);
    (program, pdg)
}

type ReportKey = (
    fusion_pdg::graph::Vertex,
    fusion_pdg::graph::Vertex,
    Feasibility,
    Vec<fusion_pdg::graph::Vertex>,
);

fn breakdown_keys(run: &MultiAnalysisRun) -> Vec<(CheckKind, Vec<ReportKey>, usize)> {
    run.checkers
        .iter()
        .map(|b| {
            (
                b.kind,
                b.reports
                    .iter()
                    .map(|r| (r.source, r.sink, r.verdict, r.path.nodes.clone()))
                    .collect(),
                b.suppressed,
            )
        })
        .collect()
}

fn factory(incremental: bool) -> impl Fn() -> Box<dyn FeasibilityEngine> + Sync {
    move || {
        let mut engine = FusionSolver::new(SolverConfig::default());
        engine.incremental = incremental;
        Box::new(engine)
    }
}

#[test]
fn triage_on_equals_triage_off_across_all_drivers() {
    let (program, pdg) = subject();
    let set = CheckerSet::all();

    for use_cache in [true, false] {
        for incremental in [true, false] {
            let base = if use_cache {
                AnalysisOptions::new()
            } else {
                AnalysisOptions::without_cache()
            };
            let mut on = base.clone();
            on.absint = true;
            let mut off = base.clone();
            off.absint = false;

            // Reference: sequential with triage OFF — the pure solver
            // pipeline, no abstract facts anywhere.
            let off_cache = VerdictCache::new();
            let mut engine = FusionSolver::new(SolverConfig::default());
            engine.incremental = incremental;
            let reference = analyze_multi_with_cache(
                &program,
                &pdg,
                &set,
                &mut engine,
                &off,
                use_cache.then_some(&off_cache),
            );
            let want = breakdown_keys(&reference);
            assert!(
                want.iter().all(|(_, k, s)| !k.is_empty() && *s > 0),
                "subject must both report and suppress for every checker"
            );
            assert_eq!(
                reference.stages.triaged_paths, 0,
                "triage disabled must do zero triage"
            );

            // Sequential with triage ON: identical bytes, nonzero triage.
            let on_cache = VerdictCache::new();
            let mut engine = FusionSolver::new(SolverConfig::default());
            engine.incremental = incremental;
            let triaged = analyze_multi_with_cache(
                &program,
                &pdg,
                &set,
                &mut engine,
                &on,
                use_cache.then_some(&on_cache),
            );
            assert_eq!(
                breakdown_keys(&triaged),
                want,
                "triage changed sequential reports at cache={use_cache} \
                 incremental={incremental}"
            );
            assert!(
                triaged.stages.triaged_paths > 0,
                "the parity guards must be triaged"
            );
            assert!(
                triaged.stages.triaged_candidates > 0,
                "fully-refuted candidates must skip the solver entirely"
            );

            // Barrier and streaming drivers, triage on and off, every
            // thread count.
            for threads in 1..=8 {
                for (label, opts) in [("on", &on), ("off", &off)] {
                    let c1 = VerdictCache::new();
                    let barrier = analyze_multi_parallel_with_cache(
                        &program,
                        &pdg,
                        &set,
                        &factory(incremental),
                        threads,
                        opts,
                        use_cache.then_some(&c1),
                    );
                    assert_eq!(
                        breakdown_keys(&barrier),
                        want,
                        "barrier absint={label} diverged at threads={threads} \
                         cache={use_cache} incremental={incremental}"
                    );
                    let c2 = VerdictCache::new();
                    let streaming = analyze_multi_streaming_with_cache(
                        &program,
                        &pdg,
                        &set,
                        &factory(incremental),
                        threads,
                        opts,
                        use_cache.then_some(&c2),
                    );
                    assert_eq!(
                        breakdown_keys(&streaming),
                        want,
                        "streaming absint={label} diverged at threads={threads} \
                         cache={use_cache} incremental={incremental}"
                    );
                }
            }
        }
    }
}

#[test]
fn triage_counters_report_avoided_work() {
    let (program, pdg) = subject();
    let set = CheckerSet::all();
    let cache = VerdictCache::new();
    let mut engine = FusionSolver::new(SolverConfig::default());
    let run = analyze_multi_with_cache(
        &program,
        &pdg,
        &set,
        &mut engine,
        &AnalysisOptions::new(),
        Some(&cache),
    );
    // Fully-triaged candidates skip their slice closure; their groups may
    // skip the session.
    assert!(run.stages.triaged_paths >= run.stages.triaged_candidates);
    assert!(run.stages.slices_skipped > 0);
    // Triage never *adds* queries: every triaged candidate with all paths
    // refuted contributes zero queries.
    let mut engine_off = FusionSolver::new(SolverConfig::default());
    let mut off = AnalysisOptions::new();
    off.absint = false;
    let cache_off = VerdictCache::new();
    let run_off = analyze_multi_with_cache(
        &program,
        &pdg,
        &set,
        &mut engine_off,
        &off,
        Some(&cache_off),
    );
    let q_on: usize = run.checkers.iter().map(|b| b.queries).sum();
    let q_off: usize = run_off.checkers.iter().map(|b| b.queries).sum();
    assert!(
        q_on < q_off,
        "triage must strictly reduce solver queries ({q_on} vs {q_off})"
    );
    assert!(
        run.stages.sessions_opened <= run_off.stages.sessions_opened,
        "triage must never open more sessions"
    );
    assert!(
        run.stages.slices_computed < run_off.stages.slices_computed,
        "fully-triaged candidates must skip slice closures"
    );
}

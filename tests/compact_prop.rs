//! Property test: PDG compaction is report-preserving on arbitrary
//! generated subjects.
//!
//! The pre-discovery graph-reduction pass (frontier pruning, summary-
//! chain collapse, isomorphic-verdict sharing — DESIGN.md "PDG
//! compaction") removes *work*, never *findings*: for any generated
//! program, any driver (sequential, barrier, streaming), any thread
//! count 1–8, with and without the verdict cache, with and without
//! incremental sessions, with and without abstract-interpretation
//! triage, the compacted scan must produce per-checker reports
//! byte-identical — same sources, sinks, verdicts, witness paths, in
//! the same order — to the uncompacted sequential scan.
//!
//! The second assertion pins the replay layer down: a collapsed summary
//! chain is re-expanded into the *original* vertex sequence when a path
//! is recorded, so the [`path_set_key`] of every reported witness path
//! is bit-for-bit the key plain discovery would have produced. This is
//! what lets compacted and uncompacted runs share one verdict-cache
//! population.

use fusion::cache::VerdictCache;
use fusion::checkers::CheckerSet;
use fusion::engine::{
    analyze_multi_parallel_with_cache, analyze_multi_streaming_with_cache,
    analyze_multi_with_cache, AnalysisOptions, FeasibilityEngine, MultiAnalysisRun,
};
use fusion::graph_solver::FusionSolver;
use fusion::{path_set_key, Feasibility, Key128};
use fusion_ir::{compile_ast, CompileOptions, Program};
use fusion_pdg::graph::Pdg;
use fusion_smt::solver::SolverConfig;
use fusion_workloads::{generate, GenConfig};
use proptest::prelude::*;

/// Everything that reaches the user, plus the verdict-cache key of the
/// witness path — the latter must survive chain collapse bit-for-bit.
type ReportKey = (
    fusion_pdg::graph::Vertex,
    fusion_pdg::graph::Vertex,
    Feasibility,
    Vec<fusion_pdg::graph::Vertex>,
    Key128,
);

fn breakdown_keys(program: &Program, run: &MultiAnalysisRun) -> Vec<Vec<ReportKey>> {
    run.checkers
        .iter()
        .map(|b| {
            b.reports
                .iter()
                .map(|r| {
                    (
                        r.source,
                        r.sink,
                        r.verdict,
                        r.path.nodes.clone(),
                        path_set_key(program, std::slice::from_ref(&r.path)),
                    )
                })
                .collect()
        })
        .collect()
}

/// One `(cache, incremental, absint)` configuration and its options.
fn options(cache: bool, absint: bool, compact: bool) -> AnalysisOptions {
    let base = if cache {
        AnalysisOptions::new()
    } else {
        AnalysisOptions::without_cache()
    };
    AnalysisOptions {
        absint,
        compact,
        ..base
    }
}

fn factory(incremental: bool) -> impl Fn() -> Box<dyn FeasibilityEngine> + Sync {
    move || {
        let mut engine = FusionSolver::new(SolverConfig::default());
        engine.incremental = incremental;
        Box::new(engine)
    }
}

fn sequential(
    program: &Program,
    pdg: &Pdg,
    set: &CheckerSet,
    incremental: bool,
    opts: &AnalysisOptions,
    cache: Option<&VerdictCache>,
) -> MultiAnalysisRun {
    let mut engine = FusionSolver::new(SolverConfig::default());
    engine.incremental = incremental;
    analyze_multi_with_cache(program, pdg, set, &mut engine, opts, cache)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn compaction_preserves_reports_everywhere(seed in 0u64..100_000) {
        let cfg = GenConfig { seed, functions: 8, ..Default::default() };
        let mut subject = generate(&cfg);
        let program =
            compile_ast(&subject.surface, &mut subject.interner, CompileOptions::default())
                .expect("compile");
        let pdg = Pdg::build(&program);
        let set = CheckerSet::all();

        // All (cache, incremental, absint) configurations. The
        // uncompacted sequential run of each is the reference its
        // compacted runs must reproduce.
        let combos: Vec<(bool, bool, bool)> = (0..8)
            .map(|i| (i & 1 != 0, i & 2 != 0, i & 4 != 0))
            .collect();
        let mut wants = Vec::new();
        for &(use_cache, incremental, absint) in &combos {
            let plain_cache = VerdictCache::new();
            let plain = sequential(
                &program,
                &pdg,
                &set,
                incremental,
                &options(use_cache, absint, false),
                use_cache.then_some(&plain_cache),
            );
            let want = breakdown_keys(&program, &plain);
            prop_assert_eq!(plain.stages.vertices_pruned, 0);

            let on_cache = VerdictCache::new();
            let compacted = sequential(
                &program,
                &pdg,
                &set,
                incremental,
                &options(use_cache, absint, true),
                use_cache.then_some(&on_cache),
            );
            prop_assert_eq!(
                breakdown_keys(&program, &compacted),
                want.clone(),
                "sequential diverged at seed {} cache={} incremental={} absint={}",
                seed, use_cache, incremental, absint
            );
            wants.push(want);
        }

        // Barrier and streaming, every thread count 1–8, rotating
        // through the configurations so each driver sees all of them
        // across the sweep.
        for threads in 1..=8usize {
            let (use_cache, incremental, absint) = combos[threads - 1];
            let want = &wants[threads - 1];
            let opts = options(use_cache, absint, true);
            let barrier_cache = VerdictCache::new();
            let barrier = analyze_multi_parallel_with_cache(
                &program,
                &pdg,
                &set,
                &factory(incremental),
                threads,
                &opts,
                use_cache.then_some(&barrier_cache),
            );
            prop_assert_eq!(
                &breakdown_keys(&program, &barrier),
                want,
                "barrier diverged at seed {} threads={} cache={} incremental={} absint={}",
                seed, threads, use_cache, incremental, absint
            );
            let stream_cache = VerdictCache::new();
            let streaming = analyze_multi_streaming_with_cache(
                &program,
                &pdg,
                &set,
                &factory(incremental),
                threads,
                &opts,
                use_cache.then_some(&stream_cache),
            );
            prop_assert_eq!(
                &breakdown_keys(&program, &streaming),
                want,
                "streaming diverged at seed {} threads={} cache={} incremental={} absint={}",
                seed, threads, use_cache, incremental, absint
            );
        }
    }
}

//! Equality saturation over the hash-consed term pool.
//!
//! The fixed-order pipeline in [`crate::preprocess`] applies each rewrite
//! rule once per fixpoint round, so an equivalence that only becomes
//! visible after *another* rule fires in a different subterm can be missed.
//! This module removes the ordering problem the standard way: an **e-graph**
//! (a union-find over *e-classes* of [`TermKind`]-shaped e-nodes, kept
//! congruent by a rebuild worklist) is populated from a [`TermPool`] root,
//! saturated under a bounded rewrite schedule, and lowered back to the pool
//! by cost-based extraction — the egg/egg-smol `TermDag` idiom and the
//! extraction-gym extractor zoo.
//!
//! Everything here is an *equivalence* on terms: for any assignment of the
//! free variables (consistent with the [`BitsSeeds`] facts, which are
//! unconditional program invariants), the extracted term evaluates exactly
//! like the input. No satisfiability-only tricks, no path conditions, no
//! caching of anything query-dependent — the pass is a pure term-to-term
//! simplifier, which is what lets the engine run it *once per function
//! fragment before instantiation* (§3.2.3) without violating §3.2.2.
//!
//! Safety rails (the saturation can only help, never hurt):
//!
//! * hard caps on e-node count and rebuild iterations with a clean
//!   fall-through to the unsimplified input term;
//! * every rule is idempotent under re-application, and the schedule stops
//!   at the first change-free iteration (*saturated*);
//! * extraction only returns the new term when it is no larger (DAG nodes)
//!   than the input.
//!
//! Determinism: classes are scanned in ascending id order, the union-find
//! always keeps the *smallest* class id as canonical, and every tie-break
//! in extraction prefers the lowest node index — no hash-map iteration
//! order ever influences the result.

use crate::preprocess::BitsSeeds;
use crate::term::{mask, BvOp, BvPred, Sort, TermId, TermKind, TermPool, Value, VarIdx};
use std::collections::{BTreeSet, HashMap, HashSet};

// ---------------------------------------------------------------------------
// Configuration and statistics
// ---------------------------------------------------------------------------

/// Which cost-based extractor lowers the saturated e-graph back to a term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExtractorKind {
    /// Greedy bottom-up **tree** cost (the classic Bellman fixpoint);
    /// fastest, but shared subterms are double-counted in the cost.
    BottomUp,
    /// Greedy **DAG** cost: each class carries its reachable-class set so
    /// shared subterms are counted once; synchronous fixpoint sweeps.
    #[default]
    GreedyDag,
    /// Global greedy DAG cost in the extraction-gym shape: a term dag with
    /// per-term reachability sets, improvements propagated through a
    /// parent worklist.
    GlobalGreedyDag,
}

impl ExtractorKind {
    /// Stable lowercase name (bench tables, CLI).
    pub fn name(self) -> &'static str {
        match self {
            ExtractorKind::BottomUp => "bottom-up",
            ExtractorKind::GreedyDag => "greedy-dag",
            ExtractorKind::GlobalGreedyDag => "global-greedy-dag",
        }
    }

    /// All extractors, for comparison harnesses.
    pub const ALL: [ExtractorKind; 3] = [
        ExtractorKind::BottomUp,
        ExtractorKind::GreedyDag,
        ExtractorKind::GlobalGreedyDag,
    ];
}

/// Bounds and selection for one e-graph simplification pass.
#[derive(Debug, Clone, Copy)]
pub struct EGraphConfig {
    /// Master switch. Defaults to on unless the `FUSION_NO_EGRAPH`
    /// environment variable is set (the CI rerun leg), mirroring
    /// `FUSION_NO_COMPACT`.
    pub enabled: bool,
    /// Extraction strategy.
    pub extractor: ExtractorKind,
    /// Hard cap on live e-nodes; exceeding it abandons the pass and
    /// returns the input term unchanged.
    pub max_enodes: usize,
    /// Rewrite-schedule iterations (each scans every class once).
    pub max_iters: u32,
    /// Congruence-rebuild sweeps per saturation, across all iterations;
    /// exceeding it abandons the pass (the AC rules can never loop the
    /// rebuild forever, but the cap makes that a proof-free guarantee).
    pub max_rebuilds: u32,
}

impl Default for EGraphConfig {
    fn default() -> Self {
        EGraphConfig {
            enabled: std::env::var_os("FUSION_NO_EGRAPH").is_none(),
            extractor: ExtractorKind::default(),
            max_enodes: 2048,
            max_iters: 4,
            max_rebuilds: 64,
        }
    }
}

impl EGraphConfig {
    /// A disabled config (identity pass).
    pub fn disabled() -> Self {
        EGraphConfig {
            enabled: false,
            ..EGraphConfig::default()
        }
    }
}

/// Counters of one (or, summed, many) e-graph passes.
#[derive(Debug, Clone, Copy, Default)]
pub struct EGraphStats {
    /// Canonical e-classes at the end of saturation.
    pub classes: u64,
    /// Live e-nodes at the end of saturation.
    pub enodes: u64,
    /// Successful rule-driven unions (rewrites applied).
    pub rewrites: u64,
    /// Passes that reached a change-free iteration before any cap.
    pub saturated: u64,
    /// Passes abandoned by the e-node or rebuild cap (the input term was
    /// returned unchanged).
    pub cap_hits: u64,
    /// Input DAG size (pool nodes), summed.
    pub nodes_before: u64,
    /// Output DAG size after extraction, summed (equals `nodes_before`
    /// for disabled, capped, or non-improving passes).
    pub nodes_after: u64,
}

impl EGraphStats {
    /// Sums another pass's counters into this one.
    pub fn absorb(&mut self, other: &EGraphStats) {
        self.classes += other.classes;
        self.enodes += other.enodes;
        self.rewrites += other.rewrites;
        self.saturated += other.saturated;
        self.cap_hits += other.cap_hits;
        self.nodes_before += other.nodes_before;
        self.nodes_after += other.nodes_after;
    }

    /// DAG nodes removed by extraction (0 when nothing improved).
    pub fn nodes_saved(&self) -> u64 {
        self.nodes_before.saturating_sub(self.nodes_after)
    }
}

// ---------------------------------------------------------------------------
// E-nodes and e-classes
// ---------------------------------------------------------------------------

/// Identifier of an e-class. Only canonical ids (see [`EGraph::find`]) name
/// live classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub u32);

impl ClassId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// An e-node: one [`TermKind`] constructor whose children are e-classes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ENode {
    /// Boolean constant.
    BoolConst(bool),
    /// Bit-vector constant.
    BvConst {
        /// Width in bits.
        width: u32,
        /// Value, `< 2^width`.
        value: u64,
    },
    /// Free variable (metadata lives in the originating pool).
    Var(VarIdx),
    /// Boolean negation.
    Not(ClassId),
    /// N-ary conjunction (children canonical, sorted, deduplicated).
    And(Vec<ClassId>),
    /// N-ary disjunction (children canonical, sorted, deduplicated).
    Or(Vec<ClassId>),
    /// Equality (operands sorted).
    Eq(ClassId, ClassId),
    /// If-then-else on a boolean condition.
    Ite {
        /// Condition class.
        cond: ClassId,
        /// Value when true.
        then_t: ClassId,
        /// Value when false.
        else_t: ClassId,
    },
    /// Binary bit-vector operation (commutative ops keep operands sorted).
    Bv(BvOp, ClassId, ClassId),
    /// Bit-vector comparison.
    Pred(BvPred, ClassId, ClassId),
}

impl ENode {
    /// Child classes, in stored order.
    pub fn children(&self) -> Vec<ClassId> {
        match self {
            ENode::BoolConst(_) | ENode::BvConst { .. } | ENode::Var(_) => Vec::new(),
            ENode::Not(x) => vec![*x],
            ENode::And(xs) | ENode::Or(xs) => xs.clone(),
            ENode::Eq(a, b) | ENode::Bv(_, a, b) | ENode::Pred(_, a, b) => vec![*a, *b],
            ENode::Ite {
                cond,
                then_t,
                else_t,
            } => vec![*cond, *then_t, *else_t],
        }
    }
}

/// Per-class known-bits facts (mask of known positions + their values).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Bits {
    known: u64,
    value: u64,
}

impl Bits {
    fn low_run(&self) -> u32 {
        (!self.known).trailing_zeros()
    }

    /// Merges knowledge about the *same* value (e-class members are equal,
    /// so their known masks union).
    fn join_equal(&mut self, other: Bits) {
        let new = other.known & !self.known;
        self.known |= other.known;
        self.value |= other.value & new;
    }
}

#[derive(Debug, Clone)]
struct EClass {
    /// Member e-nodes; canonical after each rebuild, insertion-ordered.
    nodes: Vec<ENode>,
    sort: Sort,
    /// Constant value of the whole class, when known.
    konst: Option<Value>,
    /// Known-bits facts (BV classes; recomputed each schedule iteration).
    /// Includes seeded facts, so it may only *refute* (rewrite an `Eq` to
    /// `false`), never substitute — see [`EClass::bits_pure`].
    bits: Bits,
    /// Seed-free known-bits facts: knowledge derivable from the term
    /// structure alone. Only these may turn a class into a constant
    /// ([`EGraph::rule_bits_to_const`]) — substituting a value that only
    /// external facts imply would erase the variable's own constraints
    /// from the formula.
    bits_pure: Bits,
}

// ---------------------------------------------------------------------------
// The e-graph
// ---------------------------------------------------------------------------

/// Union-find over e-classes of [`ENode`]s with congruence closure.
#[derive(Debug)]
pub struct EGraph {
    parent: Vec<u32>,
    classes: Vec<EClass>,
    memo: HashMap<ENode, ClassId>,
    /// Classes merged since the last completed rebuild sweep.
    dirty: Vec<ClassId>,
    n_nodes: usize,
    rebuild_sweeps: u32,
    rewrites: u64,
    max_enodes: usize,
    max_rebuilds: u32,
}

impl EGraph {
    /// An empty e-graph with the given caps.
    pub fn new(cfg: &EGraphConfig) -> EGraph {
        EGraph {
            parent: Vec::new(),
            classes: Vec::new(),
            memo: HashMap::new(),
            dirty: Vec::new(),
            n_nodes: 0,
            rebuild_sweeps: 0,
            rewrites: 0,
            max_enodes: cfg.max_enodes,
            max_rebuilds: cfg.max_rebuilds,
        }
    }

    /// Canonical representative of `c`.
    pub fn find(&self, c: ClassId) -> ClassId {
        let mut i = c.0;
        while self.parent[i as usize] != i {
            i = self.parent[i as usize];
        }
        ClassId(i)
    }

    /// Live e-node count.
    pub fn enode_count(&self) -> usize {
        self.n_nodes
    }

    /// Canonical class count.
    pub fn class_count(&self) -> usize {
        (0..self.parent.len() as u32)
            .filter(|&i| self.parent[i as usize] == i)
            .count()
    }

    /// Member nodes of a canonical class.
    pub fn nodes(&self, c: ClassId) -> &[ENode] {
        &self.classes[self.find(c).index()].nodes
    }

    /// Sort of a class.
    pub fn sort(&self, c: ClassId) -> Sort {
        self.classes[self.find(c).index()].sort
    }

    /// Constant value of a class, when the analysis proved one.
    pub fn constant(&self, c: ClassId) -> Option<Value> {
        self.classes[self.find(c).index()].konst
    }

    /// All canonical class ids, ascending.
    pub fn canonical_ids(&self) -> Vec<ClassId> {
        (0..self.parent.len() as u32)
            .map(ClassId)
            .filter(|&c| self.parent[c.index()] == c.0)
            .collect()
    }

    fn fresh_class(&mut self, sort: Sort) -> ClassId {
        let id = ClassId(self.parent.len() as u32);
        self.parent.push(id.0);
        self.classes.push(EClass {
            nodes: Vec::new(),
            sort,
            konst: None,
            bits: Bits::default(),
            bits_pure: Bits::default(),
        });
        id
    }

    /// Canonicalizes an e-node: children through `find`, n-ary children
    /// sorted + deduplicated, commutative binary operands sorted.
    fn canon_node(&self, node: ENode) -> ENode {
        match node {
            ENode::BoolConst(_) | ENode::BvConst { .. } | ENode::Var(_) => node,
            ENode::Not(x) => ENode::Not(self.find(x)),
            ENode::And(xs) => {
                let mut ys: Vec<ClassId> = xs.into_iter().map(|x| self.find(x)).collect();
                ys.sort_unstable();
                ys.dedup();
                ENode::And(ys)
            }
            ENode::Or(xs) => {
                let mut ys: Vec<ClassId> = xs.into_iter().map(|x| self.find(x)).collect();
                ys.sort_unstable();
                ys.dedup();
                ENode::Or(ys)
            }
            ENode::Eq(a, b) => {
                let (a, b) = (self.find(a), self.find(b));
                if a <= b {
                    ENode::Eq(a, b)
                } else {
                    ENode::Eq(b, a)
                }
            }
            ENode::Ite {
                cond,
                then_t,
                else_t,
            } => ENode::Ite {
                cond: self.find(cond),
                then_t: self.find(then_t),
                else_t: self.find(else_t),
            },
            ENode::Bv(op, a, b) => {
                let (a, b) = (self.find(a), self.find(b));
                if op.commutative() && b < a {
                    ENode::Bv(op, b, a)
                } else {
                    ENode::Bv(op, a, b)
                }
            }
            ENode::Pred(p, a, b) => ENode::Pred(p, self.find(a), self.find(b)),
        }
    }

    /// A canonical node that is definitionally equal to one of its
    /// children (single-child conjunction/disjunction) collapses to it.
    fn identity_of(node: &ENode) -> Option<ClassId> {
        match node {
            ENode::And(xs) | ENode::Or(xs) if xs.len() == 1 => Some(xs[0]),
            _ => None,
        }
    }

    /// Constant evaluation of a node from its children's class constants.
    /// Short-circuits where sound (`false ∈ And`, `true ∈ Or`, known
    /// `Ite` condition).
    fn eval_node(&self, node: &ENode) -> Option<Value> {
        let kc = |c: ClassId| self.classes[self.find(c).index()].konst;
        match node {
            ENode::BoolConst(b) => Some(Value::Bool(*b)),
            ENode::BvConst { value, .. } => Some(Value::Bv(*value)),
            ENode::Var(_) => None,
            ENode::Not(x) => kc(*x).map(|v| Value::Bool(!v.as_bool())),
            ENode::And(xs) => {
                let mut all = true;
                for &x in xs {
                    match kc(x) {
                        Some(Value::Bool(false)) => return Some(Value::Bool(false)),
                        Some(Value::Bool(true)) => {}
                        _ => all = false,
                    }
                }
                all.then_some(Value::Bool(true))
            }
            ENode::Or(xs) => {
                let mut all = true;
                for &x in xs {
                    match kc(x) {
                        Some(Value::Bool(true)) => return Some(Value::Bool(true)),
                        Some(Value::Bool(false)) => {}
                        _ => all = false,
                    }
                }
                all.then_some(Value::Bool(false))
            }
            ENode::Eq(a, b) => {
                if self.find(*a) == self.find(*b) {
                    return Some(Value::Bool(true));
                }
                match (kc(*a), kc(*b)) {
                    (Some(x), Some(y)) => Some(Value::Bool(x == y)),
                    _ => None,
                }
            }
            ENode::Ite {
                cond,
                then_t,
                else_t,
            } => match kc(*cond) {
                Some(Value::Bool(true)) => kc(*then_t),
                Some(Value::Bool(false)) => kc(*else_t),
                _ => match (kc(*then_t), kc(*else_t)) {
                    (Some(x), Some(y)) if x == y => Some(x),
                    _ => None,
                },
            },
            ENode::Bv(op, a, b) => {
                let w = match self.sort(*a) {
                    Sort::Bv(w) => w,
                    Sort::Bool => return None,
                };
                match (kc(*a), kc(*b)) {
                    (Some(Value::Bv(x)), Some(Value::Bv(y))) => Some(Value::Bv(op.eval(x, y, w))),
                    _ => None,
                }
            }
            ENode::Pred(p, a, b) => {
                let w = match self.sort(*a) {
                    Sort::Bv(w) => w,
                    Sort::Bool => return None,
                };
                match (kc(*a), kc(*b)) {
                    (Some(Value::Bv(x)), Some(Value::Bv(y))) => Some(Value::Bool(p.eval(x, y, w))),
                    _ => None,
                }
            }
        }
    }

    fn node_sort(&self, node: &ENode) -> Sort {
        match node {
            ENode::BoolConst(_) => Sort::Bool,
            ENode::BvConst { width, .. } => Sort::Bv(*width),
            ENode::Var(_) => unreachable!("variables are added via add_var"),
            ENode::Not(_) | ENode::And(_) | ENode::Or(_) | ENode::Eq(..) | ENode::Pred(..) => {
                Sort::Bool
            }
            ENode::Ite { then_t, .. } => self.sort(*then_t),
            ENode::Bv(_, a, _) => self.sort(*a),
        }
    }

    /// Adds (or finds) a node, returning its class. Constant folding is
    /// built in: a node whose children decide its value is merged with
    /// that constant's class on the spot.
    pub fn add(&mut self, node: ENode) -> ClassId {
        let node = self.canon_node(node);
        if let Some(target) = Self::identity_of(&node) {
            return target;
        }
        if let Some(&c) = self.memo.get(&node) {
            return self.find(c);
        }
        let sort = self.node_sort(&node);
        let konst = self.eval_node(&node);
        let id = self.fresh_class(sort);
        self.classes[id.index()].nodes.push(node.clone());
        self.classes[id.index()].konst = konst;
        self.memo.insert(node, id);
        self.n_nodes += 1;
        if let Some(v) = konst {
            let kc = self.add_const(v, sort);
            self.union(id, kc);
        }
        id
    }

    /// Adds a variable class (population only; rules never mint variables).
    pub fn add_var(&mut self, v: VarIdx, sort: Sort) -> ClassId {
        let node = ENode::Var(v);
        if let Some(&c) = self.memo.get(&node) {
            return self.find(c);
        }
        let id = self.fresh_class(sort);
        self.classes[id.index()].nodes.push(node.clone());
        self.memo.insert(node, id);
        self.n_nodes += 1;
        id
    }

    fn add_const(&mut self, v: Value, sort: Sort) -> ClassId {
        let node = match (v, sort) {
            (Value::Bool(b), _) => ENode::BoolConst(b),
            (Value::Bv(x), Sort::Bv(w)) => ENode::BvConst {
                width: w,
                value: x & mask(w),
            },
            (Value::Bv(_), Sort::Bool) => unreachable!("bv constant with bool sort"),
        };
        if let Some(&c) = self.memo.get(&node) {
            return self.find(c);
        }
        let id = self.fresh_class(sort);
        self.classes[id.index()].nodes.push(node.clone());
        self.classes[id.index()].konst = Some(v);
        self.memo.insert(node, id);
        self.n_nodes += 1;
        id
    }

    /// Merges two classes. Returns whether anything changed. The smaller
    /// class id always wins, keeping representatives deterministic.
    pub fn union(&mut self, a: ClassId, b: ClassId) -> bool {
        let (a, b) = (self.find(a), self.find(b));
        if a == b {
            return false;
        }
        let (win, lose) = if a < b { (a, b) } else { (b, a) };
        debug_assert_eq!(
            self.classes[win.index()].sort,
            self.classes[lose.index()].sort,
            "union across sorts"
        );
        self.parent[lose.index()] = win.0;
        let lost = std::mem::take(&mut self.classes[lose.index()].nodes);
        self.classes[win.index()].nodes.extend(lost);
        let lost_konst = self.classes[lose.index()].konst.take();
        let lost_bits = self.classes[lose.index()].bits;
        let w = &mut self.classes[win.index()];
        if w.konst.is_none() {
            w.konst = lost_konst;
        }
        w.bits.join_equal(lost_bits);
        self.dirty.push(win);
        true
    }

    /// Restores congruence: canonicalizes every node, deduplicates, and
    /// merges classes that now share a node, sweeping until clean or the
    /// sweep cap is hit (returns `false` on cap).
    pub fn rebuild(&mut self) -> bool {
        while !self.dirty.is_empty() {
            if self.rebuild_sweeps >= self.max_rebuilds {
                return false;
            }
            self.rebuild_sweeps += 1;
            self.dirty.clear();
            self.memo.clear();
            let mut pending: Vec<(ClassId, ClassId)> = Vec::new();
            let ids = self.canonical_ids();
            for &cid in &ids {
                let nodes = std::mem::take(&mut self.classes[cid.index()].nodes);
                let mut kept: Vec<ENode> = Vec::with_capacity(nodes.len());
                let mut seen: HashSet<ENode> = HashSet::with_capacity(nodes.len());
                for n in nodes {
                    let n = self.canon_node(n);
                    if let Some(target) = Self::identity_of(&n) {
                        pending.push((cid, target));
                        self.n_nodes -= 1;
                        continue;
                    }
                    if !seen.insert(n.clone()) {
                        self.n_nodes -= 1;
                        continue; // duplicate inside the class
                    }
                    match self.memo.get(&n) {
                        Some(&other) => {
                            // Congruent node in another class: merge.
                            pending.push((cid, other));
                            self.n_nodes -= 1;
                        }
                        None => {
                            self.memo.insert(n.clone(), cid);
                            kept.push(n);
                        }
                    }
                }
                self.classes[cid.index()].nodes = kept;
                // Upward constant propagation: a merge elsewhere may have
                // decided a child, deciding this class.
                if self.classes[cid.index()].konst.is_none() {
                    let found = self.classes[cid.index()]
                        .nodes
                        .iter()
                        .find_map(|n| self.eval_node(n));
                    if let Some(v) = found {
                        self.classes[cid.index()].konst = Some(v);
                        let sort = self.classes[cid.index()].sort;
                        pending.push((cid, ClassId(u32::MAX))); // placeholder
                        let at = pending.len() - 1;
                        let kc = self.add_const(v, sort);
                        pending[at].1 = kc;
                    }
                }
            }
            for (a, b) in pending {
                self.union(a, b);
            }
        }
        true
    }

    // -- population -------------------------------------------------------

    /// Populates the e-graph from a pool term, returning its class.
    pub fn add_term(&mut self, pool: &TermPool, t: TermId) -> ClassId {
        let mut map: HashMap<TermId, ClassId> = HashMap::new();
        // Iterative postorder over the DAG.
        let mut stack: Vec<(TermId, bool)> = vec![(t, false)];
        while let Some((u, expanded)) = stack.pop() {
            if map.contains_key(&u) {
                continue;
            }
            if !expanded {
                stack.push((u, true));
                for c in pool.children(u) {
                    if !map.contains_key(&c) {
                        stack.push((c, false));
                    }
                }
                continue;
            }
            let cls = match pool.kind(u) {
                TermKind::BoolConst(b) => self.add(ENode::BoolConst(*b)),
                TermKind::BvConst { width, value } => self.add(ENode::BvConst {
                    width: *width,
                    value: *value,
                }),
                TermKind::Var(v) => self.add_var(*v, pool.var_sort(*v)),
                TermKind::Not(x) => {
                    let xc = map[x];
                    self.add(ENode::Not(xc))
                }
                TermKind::And(xs) => {
                    let cs: Vec<ClassId> = xs.iter().map(|x| map[x]).collect();
                    self.add(ENode::And(cs))
                }
                TermKind::Or(xs) => {
                    let cs: Vec<ClassId> = xs.iter().map(|x| map[x]).collect();
                    self.add(ENode::Or(cs))
                }
                TermKind::Eq(a, b) => {
                    let (ac, bc) = (map[a], map[b]);
                    self.add(ENode::Eq(ac, bc))
                }
                TermKind::Ite {
                    cond,
                    then_t,
                    else_t,
                } => {
                    let (cc, tc, ec) = (map[cond], map[then_t], map[else_t]);
                    self.add(ENode::Ite {
                        cond: cc,
                        then_t: tc,
                        else_t: ec,
                    })
                }
                TermKind::Bv(op, a, b) => {
                    let (ac, bc) = (map[a], map[b]);
                    self.add(ENode::Bv(*op, ac, bc))
                }
                TermKind::Pred(p, a, b) => {
                    let (ac, bc) = (map[a], map[b]);
                    self.add(ENode::Pred(*p, ac, bc))
                }
            };
            map.insert(u, cls);
        }
        self.find(map[&t])
    }

    // -- known bits --------------------------------------------------------

    /// Recomputes per-class known-bits facts by bounded fixpoint iteration
    /// (class members are equal, so each node's transfer *adds* knowledge).
    ///
    /// Runs up to two fixpoints: first seed-blind, into `bits_pure` (the
    /// only knowledge allowed to *substitute*, via
    /// [`EGraph::rule_bits_to_const`]); then with the seeds folded in,
    /// into `bits` (which may additionally *refute* equalities, matching
    /// the seeded preprocessor's discipline). With no seeds the two maps
    /// coincide and the second fixpoint is skipped.
    fn analyze_bits(&mut self, seeds: &BitsSeeds) {
        let ids = self.canonical_ids();
        self.bits_fixpoint(&ids, &BitsSeeds::default());
        for &c in &ids {
            self.classes[c.index()].bits_pure = self.classes[c.index()].bits;
        }
        if !seeds.is_empty() {
            self.bits_fixpoint(&ids, seeds);
        }
    }

    fn bits_fixpoint(&mut self, ids: &[ClassId], seeds: &BitsSeeds) {
        for &c in ids {
            self.classes[c.index()].bits = Bits::default();
        }
        for _round in 0..4 {
            let mut changed = false;
            for &c in ids {
                let w = match self.classes[c.index()].sort {
                    Sort::Bv(w) => w,
                    Sort::Bool => continue,
                };
                let m = mask(w);
                let mut acc = self.classes[c.index()].bits;
                if let Some(Value::Bv(v)) = self.classes[c.index()].konst {
                    acc.join_equal(Bits {
                        known: m,
                        value: v & m,
                    });
                }
                let nodes = self.classes[c.index()].nodes.clone();
                for n in &nodes {
                    let t = self.transfer_bits(n, seeds, w);
                    acc.join_equal(t);
                }
                if acc != self.classes[c.index()].bits {
                    self.classes[c.index()].bits = acc;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }

    fn bits_of(&self, c: ClassId) -> Bits {
        self.classes[self.find(c).index()].bits
    }

    fn transfer_bits(&self, node: &ENode, seeds: &BitsSeeds, w: u32) -> Bits {
        let m = mask(w);
        match node {
            ENode::BvConst { value, .. } => Bits {
                known: m,
                value: value & m,
            },
            ENode::Var(v) => match seeds.get(*v) {
                Some((known, value)) => Bits {
                    known: known & m,
                    value: value & known & m,
                },
                None => Bits::default(),
            },
            ENode::Bv(op, a, b) => {
                let ka = self.bits_of(*a);
                let kb = self.bits_of(*b);
                match op {
                    BvOp::And => {
                        let known0 = (ka.known & !ka.value) | (kb.known & !kb.value);
                        let known1 = (ka.known & ka.value) & (kb.known & kb.value);
                        Bits {
                            known: (known0 | known1) & m,
                            value: known1 & m,
                        }
                    }
                    BvOp::Or => {
                        let known1 = (ka.known & ka.value) | (kb.known & kb.value);
                        let known0 = (ka.known & !ka.value) & (kb.known & !kb.value);
                        Bits {
                            known: (known0 | known1) & m,
                            value: known1 & m,
                        }
                    }
                    BvOp::Xor => {
                        let known = ka.known & kb.known;
                        Bits {
                            known,
                            value: (ka.value ^ kb.value) & known,
                        }
                    }
                    BvOp::Add | BvOp::Sub => {
                        let j = ka.low_run().min(kb.low_run()).min(w);
                        if j == 0 {
                            Bits::default()
                        } else {
                            let jm = mask(j);
                            let v = if *op == BvOp::Add {
                                ka.value.wrapping_add(kb.value)
                            } else {
                                ka.value.wrapping_sub(kb.value)
                            };
                            Bits {
                                known: jm,
                                value: v & jm,
                            }
                        }
                    }
                    BvOp::Mul => {
                        let j = ka.low_run().min(kb.low_run()).min(w);
                        if j == 0 {
                            Bits::default()
                        } else {
                            let jm = mask(j);
                            Bits {
                                known: jm,
                                value: ka.value.wrapping_mul(kb.value) & jm,
                            }
                        }
                    }
                    BvOp::Shl => match self.classes[self.find(*b).index()].konst {
                        Some(Value::Bv(k)) if k < w as u64 => {
                            let low = mask(k as u32);
                            Bits {
                                known: ((ka.known << k) | low) & m,
                                value: (ka.value << k) & m & ((ka.known << k) | low),
                            }
                        }
                        _ => Bits::default(),
                    },
                    BvOp::Lshr => match self.classes[self.find(*b).index()].konst {
                        Some(Value::Bv(k)) if k < w as u64 => {
                            let high = m & !(m >> k);
                            Bits {
                                known: ((ka.known >> k) | high) & m,
                                value: (ka.value >> k) & m,
                            }
                        }
                        _ => Bits::default(),
                    },
                    BvOp::Ashr | BvOp::Udiv | BvOp::Urem => Bits::default(),
                }
            }
            ENode::Ite { then_t, else_t, .. } => {
                let ka = self.bits_of(*then_t);
                let kb = self.bits_of(*else_t);
                let agree = ka.known & kb.known & !(ka.value ^ kb.value);
                Bits {
                    known: agree,
                    value: ka.value & agree,
                }
            }
            _ => Bits::default(),
        }
    }

    // -- rewrite schedule --------------------------------------------------

    /// One saturation: alternating rule application and congruence
    /// rebuilds under the configured bounds. Returns `false` when a cap
    /// was hit (the caller must fall through to the unsimplified term).
    pub fn saturate(
        &mut self,
        seeds: &BitsSeeds,
        cfg: &EGraphConfig,
        stats: &mut EGraphStats,
    ) -> bool {
        if !self.rebuild() {
            return false;
        }
        for _ in 0..cfg.max_iters {
            stats.iter_count();
            self.analyze_bits(seeds);
            let before_unions = self.rewrites;
            let before_nodes = self.n_nodes;
            self.apply_rules();
            if !self.rebuild() {
                return false;
            }
            if self.n_nodes > self.max_enodes {
                return false;
            }
            if self.rewrites == before_unions && self.n_nodes == before_nodes {
                stats.saturated += 1;
                break;
            }
        }
        stats.rewrites += self.rewrites;
        true
    }

    /// Scans a snapshot of every canonical class and applies every rule.
    fn apply_rules(&mut self) {
        let ids = self.canonical_ids();
        let mut work: Vec<(ClassId, ENode)> = Vec::new();
        for &c in &ids {
            for n in &self.classes[c.index()].nodes {
                work.push((c, n.clone()));
            }
        }
        for (c, n) in work {
            let c = self.find(c);
            self.rule_bits_to_const(c);
            match n {
                ENode::Not(x) => self.rules_not(c, x),
                ENode::And(ref xs) => self.rules_nary(c, xs.clone(), true),
                ENode::Or(ref xs) => self.rules_nary(c, xs.clone(), false),
                ENode::Eq(a, b) => self.rules_eq(c, a, b),
                ENode::Ite {
                    cond,
                    then_t,
                    else_t,
                } => self.rules_ite(c, cond, then_t, else_t),
                ENode::Bv(op, a, b) => self.rules_bv(c, op, a, b),
                ENode::Pred(p, a, b) => self.rules_pred(c, p, a, b),
                _ => {}
            }
        }
    }

    fn unite(&mut self, a: ClassId, b: ClassId) {
        if self.union(a, b) {
            self.rewrites += 1;
        }
    }

    fn unite_new(&mut self, c: ClassId, node: ENode) {
        let n = self.add(node);
        self.unite(c, n);
    }

    fn konst_bv(&self, c: ClassId) -> Option<u64> {
        match self.classes[self.find(c).index()].konst {
            Some(Value::Bv(v)) => Some(v),
            _ => None,
        }
    }

    fn konst_bool(&self, c: ClassId) -> Option<bool> {
        match self.classes[self.find(c).index()].konst {
            Some(Value::Bool(b)) => Some(b),
            _ => None,
        }
    }

    fn width_of(&self, c: ClassId) -> Option<u32> {
        match self.sort(c) {
            Sort::Bv(w) => Some(w),
            Sort::Bool => None,
        }
    }

    /// A class whose every bit is known *is* that constant. Only the
    /// seed-blind facts may fire here: knowledge that exists solely
    /// because of external seeds must not substitute a constant for a
    /// variable — the variable's own defining constraints would collapse
    /// to `true` and the formula would silently weaken.
    fn rule_bits_to_const(&mut self, c: ClassId) {
        let Some(w) = self.width_of(c) else { return };
        if self.classes[c.index()].konst.is_some() {
            return;
        }
        let bits = self.classes[self.find(c).index()].bits_pure;
        if bits.known == mask(w) {
            let kc = self.add_const(Value::Bv(bits.value & mask(w)), Sort::Bv(w));
            self.unite(c, kc);
        }
    }

    fn rules_not(&mut self, c: ClassId, x: ClassId) {
        let x = self.find(x);
        // Involution: ¬¬a = a; and comparison duals: ¬(a<b) = (b≤a).
        let peers = self.classes[x.index()].nodes.clone();
        for n in peers {
            match n {
                ENode::Not(y) => {
                    self.unite(c, y);
                }
                ENode::Pred(p, a, b) => {
                    let dual = match p {
                        BvPred::Ult => ENode::Pred(BvPred::Ule, b, a),
                        BvPred::Ule => ENode::Pred(BvPred::Ult, b, a),
                        BvPred::Slt => ENode::Pred(BvPred::Sle, b, a),
                        BvPred::Sle => ENode::Pred(BvPred::Slt, b, a),
                    };
                    self.unite_new(c, dual);
                }
                _ => {}
            }
        }
    }

    /// Conjunction/disjunction laws: flatten nested same-op children
    /// (bounded), drop the identity element, annihilate on the absorbing
    /// element, and refute `a ∧ ¬a` / prove `a ∨ ¬a`.
    fn rules_nary(&mut self, c: ClassId, xs: Vec<ClassId>, is_and: bool) {
        const MAX_FLAT: usize = 24;
        let mut leaves: Vec<ClassId> = Vec::new();
        let mut frontier: Vec<ClassId> = xs.iter().map(|&x| self.find(x)).collect();
        let mut guard: HashSet<ClassId> = HashSet::new();
        guard.insert(c);
        let mut overflow = false;
        while let Some(x) = frontier.pop() {
            if leaves.len() + frontier.len() > MAX_FLAT {
                overflow = true;
                break;
            }
            // Expand one nesting level when the child class itself holds a
            // same-op node (never through a class already on the path —
            // self-referential classes stay leaves).
            let sub = if guard.contains(&x) {
                None
            } else {
                self.classes[x.index()].nodes.iter().find_map(|n| match n {
                    ENode::And(ys) if is_and => Some(ys.clone()),
                    ENode::Or(ys) if !is_and => Some(ys.clone()),
                    _ => None,
                })
            };
            match sub {
                Some(ys) => {
                    guard.insert(x);
                    frontier.extend(ys.into_iter().map(|y| self.find(y)));
                }
                None => leaves.push(x),
            }
        }
        if overflow {
            leaves.extend(frontier);
        }
        leaves.sort_unstable();
        leaves.dedup();
        // Identity / annihilator on constants.
        let mut kept: Vec<ClassId> = Vec::new();
        for &l in &leaves {
            match self.konst_bool(l) {
                Some(b) if b == is_and => {} // identity element: drop
                Some(_) => {
                    // Absorbing element decides the whole class.
                    let k = self.add(ENode::BoolConst(!is_and));
                    self.unite(c, k);
                    return;
                }
                None => kept.push(l),
            }
        }
        // Complement pair: a and ¬a together decide the class.
        let kept_set: BTreeSet<ClassId> = kept.iter().copied().collect();
        for &l in &kept {
            let comp = self.classes[l.index()].nodes.iter().find_map(|n| match n {
                ENode::Not(y) => Some(self.find(*y)),
                _ => None,
            });
            if let Some(y) = comp {
                if kept_set.contains(&y) {
                    let k = self.add(ENode::BoolConst(!is_and));
                    self.unite(c, k);
                    return;
                }
            }
        }
        match kept.len() {
            0 => {
                let k = self.add(ENode::BoolConst(is_and));
                self.unite(c, k);
            }
            1 => self.unite(c, kept[0]),
            _ => {
                let node = if is_and {
                    ENode::And(kept)
                } else {
                    ENode::Or(kept)
                };
                self.unite_new(c, node);
            }
        }
    }

    fn rules_eq(&mut self, c: ClassId, a: ClassId, b: ClassId) {
        let (a, b) = (self.find(a), self.find(b));
        if a == b {
            let k = self.add(ENode::BoolConst(true));
            self.unite(c, k);
            return;
        }
        // Known-bits refutation (seeded): a bit known on both sides with
        // different values makes the equality false.
        if let (Some(wa), Some(_)) = (self.width_of(a), self.width_of(b)) {
            let (ba, bb) = (self.bits_of(a), self.bits_of(b));
            let both = ba.known & bb.known & mask(wa);
            if both & (ba.value ^ bb.value) != 0 {
                let k = self.add(ENode::BoolConst(false));
                self.unite(c, k);
                return;
            }
        }
        // Ite/const fusion: `ite(c, t, e) = k` with constant arms and k.
        for (ite_side, other) in [(a, b), (b, a)] {
            let Some(k) = self.konst_bv(other) else {
                continue;
            };
            let ite = self.classes[ite_side.index()]
                .nodes
                .iter()
                .find_map(|n| match n {
                    ENode::Ite {
                        cond,
                        then_t,
                        else_t,
                    } => Some((*cond, *then_t, *else_t)),
                    _ => None,
                });
            let Some((cond, then_t, else_t)) = ite else {
                continue;
            };
            let (Some(vt), Some(ve)) = (self.konst_bv(then_t), self.konst_bv(else_t)) else {
                continue;
            };
            match (vt == k, ve == k) {
                (true, true) => self.unite_new(c, ENode::BoolConst(true)),
                (true, false) => self.unite(c, self.find(cond)),
                (false, true) => self.unite_new(c, ENode::Not(cond)),
                (false, false) => self.unite_new(c, ENode::BoolConst(false)),
            }
            return;
        }
    }

    fn rules_ite(&mut self, c: ClassId, cond: ClassId, then_t: ClassId, else_t: ClassId) {
        let (then_t, else_t) = (self.find(then_t), self.find(else_t));
        if then_t == else_t {
            self.unite(c, then_t);
            return;
        }
        match self.konst_bool(cond) {
            Some(true) => self.unite(c, then_t),
            Some(false) => self.unite(c, else_t),
            None => {}
        }
    }

    fn rules_bv(&mut self, c: ClassId, op: BvOp, a: ClassId, b: ClassId) {
        let (a, b) = (self.find(a), self.find(b));
        let Some(w) = self.width_of(c) else { return };
        let m = mask(w);
        let ka = self.konst_bv(a);
        let kb = self.konst_bv(b);
        // Identity / absorption / annihilator laws.
        match op {
            BvOp::Add => {
                if ka == Some(0) {
                    self.unite(c, b);
                } else if kb == Some(0) {
                    self.unite(c, a);
                } else if a == b {
                    // x + x = x << 1 (strength-reduced doubling).
                    let one = self.add_const(Value::Bv(1), Sort::Bv(w));
                    self.unite_new(c, ENode::Bv(BvOp::Shl, a, one));
                }
            }
            BvOp::Sub => {
                if kb == Some(0) {
                    self.unite(c, a);
                } else if a == b {
                    let z = self.add_const(Value::Bv(0), Sort::Bv(w));
                    self.unite(c, z);
                }
            }
            BvOp::Mul => {
                for (k, other) in [(ka, b), (kb, a)] {
                    match k {
                        Some(0) => {
                            let z = self.add_const(Value::Bv(0), Sort::Bv(w));
                            self.unite(c, z);
                            return;
                        }
                        Some(1) => {
                            self.unite(c, other);
                            return;
                        }
                        Some(v) if v.is_power_of_two() => {
                            // Strength reduction: ×2^k = << k.
                            let sh =
                                self.add_const(Value::Bv(v.trailing_zeros() as u64), Sort::Bv(w));
                            self.unite_new(c, ENode::Bv(BvOp::Shl, other, sh));
                            return;
                        }
                        _ => {}
                    }
                }
                // Shift-add decomposition: ×k with few set bits blasts to
                // popcount−1 ripple adders instead of a full w-step
                // multiplier. The e-class keeps both forms; the cost model
                // (multiplies are expensive) lets extraction pick the sum
                // of shifts.
                for (k, other) in [(ka, b), (kb, a)] {
                    let Some(v) = k else { continue };
                    let v = v & m;
                    if v < 3 || v.is_power_of_two() || v.count_ones() > 4 {
                        continue;
                    }
                    let mut acc: Option<ClassId> = None;
                    for p in 0..w as u64 {
                        if v & (1u64 << p) == 0 {
                            continue;
                        }
                        let part = if p == 0 {
                            other
                        } else {
                            let sh = self.add_const(Value::Bv(p), Sort::Bv(w));
                            self.add(ENode::Bv(BvOp::Shl, other, sh))
                        };
                        acc = Some(match acc {
                            None => part,
                            Some(s) => self.add(ENode::Bv(BvOp::Add, s, part)),
                        });
                    }
                    if let Some(s) = acc {
                        self.unite(c, s);
                    }
                }
            }
            BvOp::Udiv => match kb {
                Some(1) => self.unite(c, a),
                Some(v) if v.is_power_of_two() && v != 0 => {
                    let sh = self.add_const(Value::Bv(v.trailing_zeros() as u64), Sort::Bv(w));
                    self.unite_new(c, ENode::Bv(BvOp::Lshr, a, sh));
                }
                _ => {}
            },
            BvOp::Urem => {
                if kb == Some(1) || a == b {
                    // x % 1 = 0; x % x = 0 (x % 0 = x per SMT-LIB, so the
                    // x = 0 case of x % x is still 0).
                    let z = self.add_const(Value::Bv(0), Sort::Bv(w));
                    self.unite(c, z);
                } else if let Some(v) = kb {
                    if v.is_power_of_two() {
                        let km = self.add_const(Value::Bv(v - 1), Sort::Bv(w));
                        self.unite_new(c, ENode::Bv(BvOp::And, a, km));
                    }
                }
            }
            BvOp::And => {
                if ka == Some(0) || kb == Some(0) {
                    let z = self.add_const(Value::Bv(0), Sort::Bv(w));
                    self.unite(c, z);
                } else if ka == Some(m) {
                    self.unite(c, b);
                } else if kb == Some(m) || a == b {
                    self.unite(c, a);
                }
            }
            BvOp::Or => {
                if ka == Some(m) || kb == Some(m) {
                    let f = self.add_const(Value::Bv(m), Sort::Bv(w));
                    self.unite(c, f);
                } else if ka == Some(0) {
                    self.unite(c, b);
                } else if kb == Some(0) || a == b {
                    self.unite(c, a);
                }
            }
            BvOp::Xor => {
                if a == b {
                    let z = self.add_const(Value::Bv(0), Sort::Bv(w));
                    self.unite(c, z);
                } else if ka == Some(0) {
                    self.unite(c, b);
                } else if kb == Some(0) {
                    self.unite(c, a);
                }
            }
            BvOp::Shl | BvOp::Lshr | BvOp::Ashr => {
                if kb == Some(0) {
                    self.unite(c, a);
                } else if ka == Some(0) {
                    let z = self.add_const(Value::Bv(0), Sort::Bv(w));
                    self.unite(c, z);
                }
            }
        }
        // Associativity + commutativity canonicalization: rebuild the
        // whole same-op chain right-leaning over sorted leaves with the
        // constants folded into one (commutative ops only).
        if op.commutative() {
            self.rule_ac_chain(c, op, w);
        }
    }

    /// Gathers the maximal same-op chain under `c` (bounded, cycle-safe),
    /// folds its constant leaves, sorts the rest, and re-adds the chain in
    /// canonical right-leaning shape. Different associations/commutations
    /// of one multiset of leaves all canonicalize to the same nodes and
    /// merge.
    fn rule_ac_chain(&mut self, c: ClassId, op: BvOp, w: u32) {
        const MAX_LEAVES: usize = 12;
        let identity: u64 = match op {
            BvOp::Add | BvOp::Or | BvOp::Xor => 0,
            BvOp::Mul => 1,
            BvOp::And => mask(w),
            _ => return,
        };
        let mut leaves: Vec<ClassId> = Vec::new();
        let mut acc: u64 = identity;
        let mut frontier: Vec<ClassId> = vec![c];
        let mut guard: HashSet<ClassId> = HashSet::new();
        let mut expanded_any = false;
        while let Some(x) = frontier.pop() {
            if leaves.len() > MAX_LEAVES {
                return; // chain too wide; leave it to smaller rules
            }
            let x = self.find(x);
            if let Some(v) = self.konst_bv(x) {
                acc = op.eval(acc, v, w);
                continue;
            }
            let sub = if guard.contains(&x) {
                None
            } else {
                self.classes[x.index()].nodes.iter().find_map(|n| match n {
                    ENode::Bv(o, a, b) if *o == op => Some((*a, *b)),
                    _ => None,
                })
            };
            match sub {
                Some((a, b)) => {
                    guard.insert(x);
                    if x != c {
                        expanded_any = true;
                    }
                    frontier.push(a);
                    frontier.push(b);
                }
                None => leaves.push(x),
            }
        }
        // Without nested structure or constant folding the chain is
        // already canonical — re-adding would only churn.
        if !expanded_any && acc == identity {
            return;
        }
        leaves.sort_unstable();
        let mut chain: Option<ClassId> = None;
        for &l in &leaves {
            chain = Some(match chain {
                None => l,
                Some(t) => self.add(ENode::Bv(op, t, l)),
            });
        }
        if acc != identity || chain.is_none() {
            let kc = self.add_const(Value::Bv(acc), Sort::Bv(w));
            chain = Some(match chain {
                None => kc,
                Some(t) => self.add(ENode::Bv(op, t, kc)),
            });
        }
        let root = chain.expect("chain has at least the constant");
        self.unite(c, root);
    }

    fn rules_pred(&mut self, c: ClassId, p: BvPred, a: ClassId, b: ClassId) {
        let (a, b) = (self.find(a), self.find(b));
        if a == b {
            // a<a is false, a≤a is true.
            let v = matches!(p, BvPred::Ule | BvPred::Sle);
            self.unite_new(c, ENode::BoolConst(v));
            return;
        }
        let Some(w) = self.width_of(a) else { return };
        // Ite/cmp fusion: p(ite(c,t,e), k) with constant t, e, k folds to
        // the condition, its negation, or a constant.
        for (ite_side, other, swapped) in [(a, b, false), (b, a, true)] {
            let Some(k) = self.konst_bv(other) else {
                continue;
            };
            let ite = self.classes[ite_side.index()]
                .nodes
                .iter()
                .find_map(|n| match n {
                    ENode::Ite {
                        cond,
                        then_t,
                        else_t,
                    } => Some((*cond, *then_t, *else_t)),
                    _ => None,
                });
            let Some((cond, then_t, else_t)) = ite else {
                continue;
            };
            let (Some(vt), Some(ve)) = (self.konst_bv(then_t), self.konst_bv(else_t)) else {
                continue;
            };
            let (bt, be) = if swapped {
                (p.eval(k, vt, w), p.eval(k, ve, w))
            } else {
                (p.eval(vt, k, w), p.eval(ve, k, w))
            };
            match (bt, be) {
                (true, true) => self.unite_new(c, ENode::BoolConst(true)),
                (false, false) => self.unite_new(c, ENode::BoolConst(false)),
                (true, false) => self.unite(c, self.find(cond)),
                (false, true) => self.unite_new(c, ENode::Not(cond)),
            }
            return;
        }
    }
}

impl EGraphStats {
    fn iter_count(&mut self) {
        // Not a public counter — `rewrites`/`saturated` carry the signal —
        // but keeping the hook makes the schedule's shape explicit.
    }
}

// ---------------------------------------------------------------------------
// Extraction
// ---------------------------------------------------------------------------

/// Per-node cost: rough bit-blasting weight. All costs are ≥ 1, which is
/// what makes minimum-cost selections acyclic. Constants are strictly
/// cheaper than variables so a class containing both always extracts the
/// constant — picking the variable would leave it free in the output
/// after its (now-trivial) defining equation has been dropped.
fn node_cost(n: &ENode) -> u64 {
    match n {
        ENode::BoolConst(_) | ENode::BvConst { .. } => 1,
        ENode::Var(_) => 2,
        ENode::Not(_) => 2,
        ENode::And(xs) | ENode::Or(xs) => 1 + xs.len() as u64,
        ENode::Eq(..) | ENode::Pred(..) => 2,
        ENode::Ite { .. } => 3,
        ENode::Bv(op, ..) => match op {
            // A w-bit multiplier blasts to ~w ripple adders; division is
            // worse still. Pricing them near their clause weight is what
            // makes shift-add decompositions win extraction.
            BvOp::Mul => 24,
            BvOp::Udiv | BvOp::Urem => 48,
            _ => 2,
        },
    }
}

/// [`node_cost`] over a pool term, for comparing an extraction against the
/// input it came from.
fn term_cost(n: &TermKind) -> u64 {
    match n {
        TermKind::BoolConst(_) | TermKind::BvConst { .. } => 1,
        TermKind::Var(_) => 2,
        TermKind::Not(_) => 2,
        TermKind::And(xs) | TermKind::Or(xs) => 1 + xs.len() as u64,
        TermKind::Eq(..) | TermKind::Pred(..) => 2,
        TermKind::Ite { .. } => 3,
        TermKind::Bv(op, ..) => match op {
            BvOp::Mul => 24,
            BvOp::Udiv | BvOp::Urem => 48,
            _ => 2,
        },
    }
}

/// Sum of [`term_cost`] over the distinct nodes of `t`'s DAG (iterative).
fn dag_cost(pool: &TermPool, t: TermId) -> u64 {
    let mut seen = HashSet::new();
    let mut stack = vec![t];
    let mut total = 0u64;
    while let Some(u) = stack.pop() {
        if !seen.insert(u) {
            continue;
        }
        let kind = pool.kind(u);
        total = total.saturating_add(term_cost(kind));
        match kind {
            TermKind::Not(a) => stack.push(*a),
            TermKind::And(xs) | TermKind::Or(xs) => stack.extend(xs.iter().copied()),
            TermKind::Eq(a, b) | TermKind::Bv(_, a, b) | TermKind::Pred(_, a, b) => {
                stack.push(*a);
                stack.push(*b);
            }
            TermKind::Ite {
                cond,
                then_t,
                else_t,
            } => {
                stack.push(*cond);
                stack.push(*then_t);
                stack.push(*else_t);
            }
            _ => {}
        }
    }
    total
}

/// A per-class node selection: `choice[class] = Some(index into
/// `EGraph::nodes(class)`)` for every class reachable from the root.
pub type Extraction = Vec<Option<usize>>;

/// A cost-based extractor lowering a saturated e-graph to one node choice
/// per class (the extraction-gym interface shape).
pub trait Extractor {
    /// Stable name for tables and stats.
    fn name(&self) -> &'static str;
    /// Chooses one node per canonical class (indices into
    /// [`EGraph::nodes`]); `None` for unreachable/unchoosable classes.
    fn choose(&self, eg: &EGraph, root: ClassId) -> Extraction;
}

/// Constructs the extractor for a [`ExtractorKind`].
pub fn extractor_for(kind: ExtractorKind) -> Box<dyn Extractor> {
    match kind {
        ExtractorKind::BottomUp => Box::new(BottomUpExtractor),
        ExtractorKind::GreedyDag => Box::new(GreedyDagExtractor),
        ExtractorKind::GlobalGreedyDag => Box::new(GlobalGreedyDagExtractor),
    }
}

/// Greedy bottom-up **tree-cost** extraction: the classic Bellman fixpoint
/// `cost(C) = min over nodes (node_cost + Σ cost(child))`.
pub struct BottomUpExtractor;

impl Extractor for BottomUpExtractor {
    fn name(&self) -> &'static str {
        ExtractorKind::BottomUp.name()
    }

    fn choose(&self, eg: &EGraph, _root: ClassId) -> Extraction {
        let n = eg.parent.len();
        let mut cost: Vec<u64> = vec![u64::MAX; n];
        let mut pick: Extraction = vec![None; n];
        let ids = eg.canonical_ids();
        loop {
            let mut changed = false;
            for &c in &ids {
                for (i, node) in eg.classes[c.index()].nodes.iter().enumerate() {
                    let mut total = node_cost(node);
                    let mut ok = true;
                    for ch in node.children() {
                        let cc = cost[eg.find(ch).index()];
                        if cc == u64::MAX {
                            ok = false;
                            break;
                        }
                        total = total.saturating_add(cc);
                    }
                    if ok && total < cost[c.index()] {
                        cost[c.index()] = total;
                        pick[c.index()] = Some(i);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        pick
    }
}

/// Greedy **DAG-cost** extraction: each class carries the set of classes
/// its chosen term reaches, so shared subterms are charged once.
/// Synchronous sweeps with a fixed bound keep it deterministic even if the
/// greedy costs oscillate on cyclic e-graphs.
pub struct GreedyDagExtractor;

impl Extractor for GreedyDagExtractor {
    fn name(&self) -> &'static str {
        ExtractorKind::GreedyDag.name()
    }

    fn choose(&self, eg: &EGraph, _root: ClassId) -> Extraction {
        const MAX_SWEEPS: usize = 24;
        let n = eg.parent.len();
        let mut state: Vec<Option<(usize, BTreeSet<ClassId>, u64)>> = vec![None; n];
        let ids = eg.canonical_ids();
        for _ in 0..MAX_SWEEPS {
            let mut changed = false;
            for &c in &ids {
                let mut best: Option<(usize, BTreeSet<ClassId>, u64)> = None;
                'nodes: for (i, node) in eg.classes[c.index()].nodes.iter().enumerate() {
                    let mut reach: BTreeSet<ClassId> = BTreeSet::new();
                    reach.insert(c);
                    for ch in node.children() {
                        let ch = eg.find(ch);
                        match &state[ch.index()] {
                            Some((_, r, _)) => {
                                if r.contains(&c) {
                                    continue 'nodes; // would cycle through c
                                }
                                reach.extend(r.iter().copied());
                            }
                            None => continue 'nodes,
                        }
                    }
                    // DAG cost: each reached class charges its chosen
                    // node once; this class charges the candidate node.
                    let mut total = node_cost(node);
                    let mut ok = true;
                    for &r in &reach {
                        if r == c {
                            continue;
                        }
                        match &state[r.index()] {
                            Some((j, _, _)) => {
                                total = total
                                    .saturating_add(node_cost(&eg.classes[r.index()].nodes[*j]))
                            }
                            None => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if !ok {
                        continue;
                    }
                    if best.as_ref().is_none_or(|(_, _, bc)| total < *bc) {
                        best = Some((i, reach, total));
                    }
                }
                if let Some(b) = best {
                    let replace = match &state[c.index()] {
                        None => true,
                        Some((i, _, cost)) => b.2 < *cost || (b.2 == *cost && b.0 < *i),
                    };
                    if replace && state[c.index()].as_ref() != Some(&b) {
                        state[c.index()] = Some(b);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        state.into_iter().map(|s| s.map(|(i, _, _)| i)).collect()
    }
}

/// Global greedy DAG extraction in the extraction-gym shape: a term dag
/// whose entries carry per-term reachability sets, improvements pushed to
/// parents through a worklist. Distinct from [`GreedyDagExtractor`] in
/// that candidate terms are built asynchronously from whatever each
/// child's best term is at the time, so improvements cascade globally.
pub struct GlobalGreedyDagExtractor;

impl Extractor for GlobalGreedyDagExtractor {
    fn name(&self) -> &'static str {
        ExtractorKind::GlobalGreedyDag.name()
    }

    fn choose(&self, eg: &EGraph, _root: ClassId) -> Extraction {
        let n = eg.parent.len();
        let ids = eg.canonical_ids();
        // parents[c] = (parent class, node index) pairs referencing c.
        let mut parents: Vec<Vec<(ClassId, usize)>> = vec![Vec::new(); n];
        for &c in &ids {
            for (i, node) in eg.classes[c.index()].nodes.iter().enumerate() {
                let mut seen = BTreeSet::new();
                for ch in node.children() {
                    let ch = eg.find(ch);
                    if seen.insert(ch) {
                        parents[ch.index()].push((c, i));
                    }
                }
            }
        }
        // Best term per class: (node index, reach set, dag cost).
        let mut best: Vec<Option<(usize, BTreeSet<ClassId>, u64)>> = vec![None; n];
        let mut queue: BTreeSet<ClassId> = BTreeSet::new();
        // Seed with leaves.
        for &c in &ids {
            for (i, node) in eg.classes[c.index()].nodes.iter().enumerate() {
                if node.children().is_empty() {
                    let mut reach = BTreeSet::new();
                    reach.insert(c);
                    let cand = (i, reach, node_cost(node));
                    if best[c.index()]
                        .as_ref()
                        .is_none_or(|(bi, _, bc)| cand.2 < *bc || (cand.2 == *bc && i < *bi))
                    {
                        best[c.index()] = Some(cand);
                        queue.insert(c);
                    }
                }
            }
        }
        let mut budget = 16usize.saturating_mul(n.max(1));
        while let Some(c) = queue.pop_first() {
            if budget == 0 {
                break;
            }
            budget -= 1;
            for &(p, i) in &parents[c.index()] {
                let node = &eg.classes[p.index()].nodes[i];
                let mut reach: BTreeSet<ClassId> = BTreeSet::new();
                reach.insert(p);
                let mut ok = true;
                for ch in node.children() {
                    let ch = eg.find(ch);
                    match &best[ch.index()] {
                        Some((_, r, _)) => {
                            if r.contains(&p) {
                                ok = false;
                                break;
                            }
                            reach.extend(r.iter().copied());
                        }
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    continue;
                }
                let mut total = node_cost(node);
                for &r in &reach {
                    if r == p {
                        continue;
                    }
                    match &best[r.index()] {
                        Some((j, _, _)) => {
                            total =
                                total.saturating_add(node_cost(&eg.classes[r.index()].nodes[*j]))
                        }
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    continue;
                }
                let improves = best[p.index()]
                    .as_ref()
                    .is_none_or(|(bi, _, bc)| total < *bc || (total == *bc && i < *bi));
                if improves {
                    best[p.index()] = Some((i, reach, total));
                    queue.insert(p);
                }
            }
        }
        best.into_iter().map(|s| s.map(|(i, _, _)| i)).collect()
    }
}

/// Lowers an extraction back to the pool, iteratively (no recursion, so
/// deep conditions cannot overflow the stack). Returns `None` when the
/// root has no chosen node (extraction failed; callers fall through).
pub fn lower(
    eg: &EGraph,
    choices: &Extraction,
    root: ClassId,
    pool: &mut TermPool,
) -> Option<TermId> {
    let root = eg.find(root);
    let mut done: HashMap<ClassId, TermId> = HashMap::new();
    let mut stack: Vec<ClassId> = vec![root];
    while let Some(&c) = stack.last() {
        let c = eg.find(c);
        if done.contains_key(&c) {
            stack.pop();
            continue;
        }
        let i = (*choices.get(c.index())?)?;
        let node = &eg.classes[c.index()].nodes[i];
        let mut missing = false;
        for ch in node.children() {
            let ch = eg.find(ch);
            if !done.contains_key(&ch) {
                stack.push(ch);
                missing = true;
            }
        }
        if missing {
            continue;
        }
        stack.pop();
        let t = match node {
            ENode::BoolConst(b) => pool.bool_const(*b),
            ENode::BvConst { width, value } => pool.bv_const(*value, *width),
            ENode::Var(v) => {
                let name = pool.var_name(*v).to_owned();
                let sort = pool.var_sort(*v);
                pool.var(&name, sort)
            }
            ENode::Not(x) => {
                let xt = done[&eg.find(*x)];
                pool.not(xt)
            }
            ENode::And(xs) => {
                let ts: Vec<TermId> = xs.iter().map(|x| done[&eg.find(*x)]).collect();
                pool.and(&ts)
            }
            ENode::Or(xs) => {
                let ts: Vec<TermId> = xs.iter().map(|x| done[&eg.find(*x)]).collect();
                pool.or(&ts)
            }
            ENode::Eq(a, b) => {
                let (at, bt) = (done[&eg.find(*a)], done[&eg.find(*b)]);
                pool.eq(at, bt)
            }
            ENode::Ite {
                cond,
                then_t,
                else_t,
            } => {
                let (ct, tt, et) = (
                    done[&eg.find(*cond)],
                    done[&eg.find(*then_t)],
                    done[&eg.find(*else_t)],
                );
                pool.ite(ct, tt, et)
            }
            ENode::Bv(op, a, b) => {
                let (at, bt) = (done[&eg.find(*a)], done[&eg.find(*b)]);
                pool.bv(*op, at, bt)
            }
            ENode::Pred(p, a, b) => {
                let (at, bt) = (done[&eg.find(*a)], done[&eg.find(*b)]);
                pool.pred(*p, at, bt)
            }
        };
        done.insert(c, t);
    }
    done.get(&root).copied()
}

// ---------------------------------------------------------------------------
// The pass
// ---------------------------------------------------------------------------

/// Simplifies `t` by bounded equality saturation and cost-based
/// extraction. Pure term-to-term equivalence: for every assignment
/// consistent with `seeds`, the result evaluates exactly like `t`. On any
/// cap hit or non-improvement the input term is returned unchanged.
pub fn egraph_simplify(
    pool: &mut TermPool,
    t: TermId,
    seeds: &BitsSeeds,
    cfg: &EGraphConfig,
) -> (TermId, EGraphStats) {
    let mut stats = EGraphStats::default();
    if !cfg.enabled {
        return (t, stats);
    }
    let before = pool.dag_size(t);
    stats.nodes_before = before as u64;
    stats.nodes_after = before as u64;
    if matches!(
        pool.kind(t),
        TermKind::BoolConst(_) | TermKind::BvConst { .. } | TermKind::Var(_)
    ) {
        return (t, stats);
    }
    if before > cfg.max_enodes {
        stats.cap_hits = 1;
        return (t, stats);
    }
    let mut eg = EGraph::new(cfg);
    let root = eg.add_term(pool, t);
    let completed = eg.saturate(seeds, cfg, &mut stats);
    stats.classes = eg.class_count() as u64;
    stats.enodes = eg.enode_count() as u64;
    if !completed {
        // Clean fall-through: caps guarantee bounded work, never a worse
        // answer.
        stats.cap_hits = 1;
        stats.rewrites = eg.rewrites;
        return (t, stats);
    }
    let root = eg.find(root);
    let extractor = extractor_for(cfg.extractor);
    let choices = extractor.choose(&eg, root);
    let Some(out) = lower(&eg, &choices, root, pool) else {
        return (t, stats);
    };
    debug_assert_eq!(pool.sort(out), pool.sort(t), "extraction changed sort");
    // Keep the extraction only when it does not cost more than the input
    // under the blasting-weight model. Node count alone would reject
    // shift-add decompositions, which trade a few extra cheap nodes for
    // the removal of a w-step multiplier.
    if dag_cost(pool, out) <= dag_cost(pool, t) {
        stats.nodes_after = pool.dag_size(out) as u64;
        (out, stats)
    } else {
        (t, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::BvPred;

    fn cfg() -> EGraphConfig {
        EGraphConfig {
            enabled: true,
            ..EGraphConfig::default()
        }
    }

    fn eval_eq(pool: &TermPool, a: TermId, b: TermId, envs: &[HashMap<VarIdx, u64>]) {
        for env in envs {
            assert_eq!(
                pool.eval(a, env),
                pool.eval(b, env),
                "semantics changed under {env:?}: {} vs {}",
                pool.display(a),
                pool.display(b)
            );
        }
    }

    fn envs_for(pool: &TermPool, t: TermId) -> Vec<HashMap<VarIdx, u64>> {
        let vars = pool.free_vars(t);
        let mut envs = Vec::new();
        for seed in [0u64, 1, 7, 0xFFFF_FFFF_FFFF_FFFF, 0x1234_5678_9abc_def0] {
            let mut env = HashMap::new();
            let mut s = seed;
            for &v in &vars {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                env.insert(v, s);
            }
            envs.push(env);
        }
        envs
    }

    #[test]
    fn constant_folding_through_the_graph() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(32));
        let a = p.bv_const(3, 32);
        let b = p.bv_const(4, 32);
        let xa = p.bv(BvOp::Add, x, a);
        let l = p.bv(BvOp::Add, xa, b); // (x+3)+4
        let seven = p.bv_const(7, 32);
        let r = p.bv(BvOp::Add, x, seven); // x+7
        let f = p.eq(l, r); // equal only after reassociating + folding
        let (out, st) = egraph_simplify(&mut p, f, &BitsSeeds::new(), &cfg());
        assert_eq!(p.as_bool_const(out), Some(true), "{}", p.display(out));
        assert!(st.rewrites > 0);
    }

    #[test]
    fn ac_canonicalization_joins_associations() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(16));
        let y = p.var("y", Sort::Bv(16));
        let z = p.var("z", Sort::Bv(16));
        let xy = p.bv(BvOp::Add, x, y);
        let l = p.bv(BvOp::Add, xy, z); // (x+y)+z
        let yz = p.bv(BvOp::Add, y, z);
        let r = p.bv(BvOp::Add, x, yz); // x+(y+z)
        let f = p.eq(l, r);
        let (out, _) = egraph_simplify(&mut p, f, &BitsSeeds::new(), &cfg());
        assert_eq!(p.as_bool_const(out), Some(true), "{}", p.display(out));
    }

    #[test]
    fn strength_reduction_prefers_shift() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(32));
        let eight = p.bv_const(8, 32);
        let m = p.bv(BvOp::Mul, x, eight);
        let k = p.bv_const(40, 32);
        let f = p.eq(m, k);
        let (out, _) = egraph_simplify(&mut p, f, &BitsSeeds::new(), &cfg());
        // The extracted side uses a shift, not the multiply.
        let txt = p.display(out);
        assert!(!txt.contains("mul"), "{txt}");
        eval_eq(&p, f, out, &envs_for(&p, f));
    }

    #[test]
    fn identity_and_annihilator_laws() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(8));
        let z = p.bv_const(0, 8);
        let add0 = p.bv(BvOp::Add, x, z);
        let sub = p.bv(BvOp::Sub, add0, x); // (x+0)-x = 0
        let f = p.eq(sub, z);
        let (out, _) = egraph_simplify(&mut p, f, &BitsSeeds::new(), &cfg());
        assert_eq!(p.as_bool_const(out), Some(true), "{}", p.display(out));
    }

    #[test]
    fn cmp_fusion_folds_ite() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(32));
        let y = p.var("y", Sort::Bv(32));
        let c = p.pred(BvPred::Ult, x, y);
        let one = p.bv_const(1, 32);
        let zero = p.bv_const(0, 32);
        let ite = p.ite(c, one, zero);
        let f = p.eq(ite, one); // (x<y ? 1 : 0) == 1  ⇔  x<y
        let (out, _) = egraph_simplify(&mut p, f, &BitsSeeds::new(), &cfg());
        assert_eq!(out, c, "{}", p.display(out));
    }

    #[test]
    fn seeded_known_bits_refute_parity() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(32));
        let vx = match *p.kind(x) {
            TermKind::Var(v) => v,
            _ => unreachable!(),
        };
        let five = p.bv_const(5, 32);
        let f = p.eq(x, five); // x even (seeded) vs 5: impossible
        let mut seeds = BitsSeeds::new();
        seeds.insert(vx, 1, 0); // low bit known 0
        let (out, _) = egraph_simplify(&mut p, f, &seeds, &cfg());
        assert_eq!(p.as_bool_const(out), Some(false), "{}", p.display(out));
        // Unseeded, the equality must survive.
        let (out2, _) = egraph_simplify(&mut p, f, &BitsSeeds::new(), &cfg());
        assert!(p.as_bool_const(out2).is_none());
    }

    #[test]
    fn every_extractor_preserves_semantics() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(16));
        let y = p.var("y", Sort::Bv(16));
        let four = p.bv_const(4, 16);
        let m = p.bv(BvOp::Mul, x, four);
        let yx = p.bv(BvOp::Add, y, x);
        let xy = p.bv(BvOp::Add, x, y);
        let e1 = p.eq(m, xy);
        let lt = p.pred(BvPred::Ult, yx, m);
        let z = p.bv(BvOp::Xor, x, x);
        let zero = p.bv_const(0, 16);
        let e2 = p.eq(z, zero);
        let f = p.and(&[e1, lt, e2]);
        let envs = envs_for(&p, f);
        for kind in ExtractorKind::ALL {
            let mut c = cfg();
            c.extractor = kind;
            let (out, st) = egraph_simplify(&mut p, f, &BitsSeeds::new(), &c);
            eval_eq(&p, f, out, &envs);
            assert!(st.nodes_after <= st.nodes_before, "{kind:?}");
        }
    }

    #[test]
    fn caps_fall_through_to_input() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(32));
        let mut t = x;
        for i in 1..40u64 {
            let k = p.bv_const(i | 1, 32);
            t = p.bv(BvOp::Mul, t, k);
        }
        let z = p.bv_const(9, 32);
        let f = p.eq(t, z);
        let tiny = EGraphConfig {
            enabled: true,
            max_enodes: 8,
            ..EGraphConfig::default()
        };
        let (out, st) = egraph_simplify(&mut p, f, &BitsSeeds::new(), &tiny);
        assert_eq!(out, f, "cap hit must return the input unchanged");
        assert_eq!(st.cap_hits, 1);
        assert_eq!(st.nodes_saved(), 0);
    }

    #[test]
    fn disabled_pass_is_identity() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(8));
        let two = p.bv_const(2, 8);
        let m = p.bv(BvOp::Mul, x, two);
        let f = p.eq(m, two);
        let (out, st) = egraph_simplify(&mut p, f, &BitsSeeds::new(), &EGraphConfig::disabled());
        assert_eq!(out, f);
        assert_eq!(st.rewrites, 0);
        assert_eq!(st.nodes_saved(), 0);
    }

    #[test]
    fn not_pred_dual_and_complement_pair() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(8));
        let y = p.var("y", Sort::Bv(8));
        let lt = p.pred(BvPred::Ult, x, y);
        let nlt = p.not(lt);
        let ge = p.pred(BvPred::Ule, y, x);
        let f1 = p.eq(nlt, ge); // ¬(x<y) ⇔ y≤x — polymorphic eq on bools
        let (out, _) = egraph_simplify(&mut p, f1, &BitsSeeds::new(), &cfg());
        assert_eq!(p.as_bool_const(out), Some(true), "{}", p.display(out));
        // a ∧ ¬a is false even when hidden behind distinct nodes.
        let contradiction = p.and2(lt, nlt);
        let (out2, _) = egraph_simplify(&mut p, contradiction, &BitsSeeds::new(), &cfg());
        assert_eq!(p.as_bool_const(out2), Some(false), "{}", p.display(out2));
    }

    #[test]
    fn deterministic_across_runs() {
        let mut p1 = TermPool::new();
        let mut p2 = TermPool::new();
        let build = |p: &mut TermPool| {
            let x = p.var("x", Sort::Bv(32));
            let y = p.var("y", Sort::Bv(32));
            let two = p.bv_const(2, 32);
            let m = p.bv(BvOp::Mul, x, two);
            let s = p.bv(BvOp::Add, m, y);
            let s2 = p.bv(BvOp::Add, y, m);
            let e = p.eq(s, s2);
            let u = p.pred(BvPred::Ult, s, m);
            p.and2(e, u)
        };
        let f1 = build(&mut p1);
        let f2 = build(&mut p2);
        let (o1, s1) = egraph_simplify(&mut p1, f1, &BitsSeeds::new(), &cfg());
        let (o2, s2) = egraph_simplify(&mut p2, f2, &BitsSeeds::new(), &cfg());
        assert_eq!(p1.display(o1), p2.display(o2));
        assert_eq!(s1.rewrites, s2.rewrites);
        assert_eq!(s1.classes, s2.classes);
    }
}

//! A bounded multi-producer/multi-consumer channel for the streaming
//! discovery→solve pipeline.
//!
//! Discovery shards (producers) push completed sink groups; solve
//! workers (consumers) pop them as they arrive, so solving overlaps
//! discovery wall-time instead of waiting behind a full barrier. In the
//! fused multi-client pipeline the items are *multi-client* groups —
//! candidates from any checker, grouped and sticky-routed by sink
//! function alone — so cross-checker queries on one sink land on the
//! same consumer and share one solver session. The
//! channel is **bounded**: when solving falls behind, producers block
//! rather than queueing unbounded work (which would both balloon memory
//! and defeat the accounting invariants). Built on `std` only
//! (`Mutex<VecDeque>` + two `Condvar`s) — no external dependencies.
//!
//! Producers must announce completion via
//! [`BoundedQueue::producer_done`]; once every registered producer is
//! done and the queue drains, [`BoundedQueue::recv`] returns `None` and
//! consumers shut down.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct State<T> {
    queue: VecDeque<T>,
    /// Producers still running; `recv` only reports exhaustion when
    /// this reaches zero *and* the queue is empty.
    producers: usize,
}

/// A bounded MPMC queue. All methods take `&self`; share by reference
/// across scoped producer/consumer threads.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (rounded up to 1), fed
    /// by exactly `producers` producers.
    pub fn new(capacity: usize, producers: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                producers,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Pushes an item, blocking while the queue is at capacity.
    pub fn send(&self, item: T) {
        let mut state = self.state.lock().expect("stream queue poisoned");
        while state.queue.len() >= self.capacity {
            state = self.not_full.wait(state).expect("stream queue poisoned");
        }
        state.queue.push_back(item);
        drop(state);
        self.not_empty.notify_one();
    }

    /// Pops an item, blocking while the queue is empty and producers
    /// remain. Returns `None` once all producers are done and the queue
    /// has drained — the consumer shutdown signal.
    pub fn recv(&self) -> Option<T> {
        let mut state = self.state.lock().expect("stream queue poisoned");
        loop {
            if let Some(item) = state.queue.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.producers == 0 {
                return None;
            }
            state = self.not_empty.wait(state).expect("stream queue poisoned");
        }
    }

    /// Marks one producer as finished. When the last producer finishes,
    /// all blocked consumers wake and drain out.
    pub fn producer_done(&self) {
        let mut state = self.state.lock().expect("stream queue poisoned");
        state.producers = state.producers.saturating_sub(1);
        let last = state.producers == 0;
        drop(state);
        if last {
            self.not_empty.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn drains_in_fifo_order_single_threaded() {
        let q = BoundedQueue::new(8, 1);
        for i in 0..5 {
            q.send(i);
        }
        q.producer_done();
        let mut got = Vec::new();
        while let Some(x) = q.recv() {
            got.push(x);
        }
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn recv_returns_none_only_after_all_producers_finish() {
        let q = BoundedQueue::new(4, 2);
        q.send(1);
        q.producer_done();
        assert_eq!(q.recv(), Some(1));
        // One producer still live: a non-blocking check is impossible
        // with condvars, so finish it from another thread while a
        // consumer blocks in recv.
        std::thread::scope(|scope| {
            let q = &q;
            scope.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                q.send(2);
                q.producer_done();
            });
            assert_eq!(q.recv(), Some(2));
            assert_eq!(q.recv(), None);
        });
    }

    #[test]
    fn bounded_capacity_blocks_producers_until_consumed() {
        let q = BoundedQueue::new(1, 1);
        let produced = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let qr = &q;
            let pr = &produced;
            scope.spawn(move || {
                for i in 0..100 {
                    qr.send(i);
                    pr.fetch_add(1, Ordering::SeqCst);
                }
                qr.producer_done();
            });
            let mut got = Vec::new();
            while let Some(x) = qr.recv() {
                got.push(x);
                // Capacity 1: the producer can be at most one item
                // ahead of what we have consumed (plus the one in
                // flight).
                assert!(produced.load(Ordering::SeqCst) <= got.len() + 1);
            }
            assert_eq!(got.len(), 100);
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        });
    }

    #[test]
    fn many_producers_many_consumers_deliver_everything_once() {
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 4;
        const PER: usize = 250;
        let q = BoundedQueue::new(8, PRODUCERS);
        let seen = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for p in 0..PRODUCERS {
                let q = &q;
                scope.spawn(move || {
                    for i in 0..PER {
                        q.send(p * PER + i);
                    }
                    q.producer_done();
                });
            }
            for _ in 0..CONSUMERS {
                let q = &q;
                let seen = &seen;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    while let Some(x) = q.recv() {
                        local.push(x);
                    }
                    seen.lock().unwrap().extend(local);
                });
            }
        });
        let mut all = seen.into_inner().unwrap();
        all.sort_unstable();
        assert_eq!(all, (0..PRODUCERS * PER).collect::<Vec<_>>());
    }
}

//! `pipeline_bench` — the streaming-pipeline perf harness
//! (`BENCH_pipeline.json`).
//!
//! Three comparisons over a fixed corpus (a synthetic many-source
//! hot-sink program plus two scaled workload subjects):
//!
//! * **barrier vs streaming** — `analyze_parallel_with_cache` (discover
//!   everything, then solve) against `analyze_streaming_with_cache`
//!   (discovery shards push completed sink groups through a bounded
//!   channel into solve workers), same thread count, reports asserted
//!   byte-identical against the sequential driver;
//! * **slices cold vs memoized** — a cold run against a second run
//!   sharing the same [`SliceCache`]: the warm run must answer its
//!   closure requests from the memo;
//! * **discovery throughput** — `discover_all` at 1 shard vs the bench
//!   thread count, DFS steps per second.
//!
//! Output: `BENCH_pipeline.json` in the working directory (override with
//! `FUSION_BENCH_OUT`). With `FUSION_BENCH_ENFORCE=1` the process exits
//! non-zero when streaming is more than 5% slower than the barrier
//! pipeline or the slice memo records no hits — the CI regression gate.

use fusion::cache::VerdictCache;
use fusion::checkers::Checker;
use fusion::engine::{
    analyze_parallel_with_cache, analyze_streaming_with_cache, analyze_with_cache, AnalysisOptions,
    AnalysisRun, FeasibilityEngine,
};
use fusion::graph_solver::FusionSolver;
use fusion::propagate::{discover_all, PropagateOptions};
use fusion::slice_cache::SliceCache;
use fusion_bench::{banner, build_subject, default_budget, report, scale_from_env};
use fusion_ir::{compile, CompileOptions, Program};
use fusion_pdg::graph::Pdg;
use fusion_workloads::SUBJECTS;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Thread count the barrier-vs-streaming comparison runs at (the ISSUE's
/// "≥ 4 threads" acceptance point).
const THREADS: usize = 4;
/// Wall-clock measurements take the best of this many repetitions.
const ITERS: usize = 3;

/// Synthetic subject: `funcs` functions, each holding one opaque
/// nonlinear core guarding `sinks` null-deref candidates — many sources
/// across many sink groups, so discovery shards and solve workers both
/// have real work to overlap.
fn hot_sink_source(funcs: usize, sinks: usize) -> String {
    let mut s = String::from("extern fn deref(p);\n");
    for f in 0..funcs {
        let _ = writeln!(
            s,
            "fn churn{f}(a, b) {{ let t = a * b; let u = t * t + a; \
             let v = u * b + t; let z = v * v + u; return z; }}"
        );
        let _ = writeln!(s, "fn hot{f}(x, y) {{");
        let _ = writeln!(s, "  let w = churn{f}(x, y);");
        for k in 0..sinks {
            let target = 77 + 2 * k + f;
            let _ = writeln!(
                s,
                "  let q{k} = null; let r{k} = 1; if (w == {target}) {{ r{k} = q{k}; }} deref(r{k});"
            );
        }
        let _ = writeln!(
            s,
            "  let qz = null; let rz = 1; if (x * x == 3) {{ rz = qz; }} deref(rz);"
        );
        let _ = writeln!(s, "  return 0;\n}}");
    }
    s
}

struct Entry {
    name: String,
    program: Program,
    pdg: Pdg,
}

fn corpus() -> Vec<Entry> {
    let mut entries = Vec::new();
    let hot = hot_sink_source(8, 12);
    let program = compile(&hot, CompileOptions::default()).expect("corpus compiles");
    let pdg = Pdg::build(&program);
    entries.push(Entry {
        name: "hot-sinks".into(),
        program,
        pdg,
    });
    let scale = scale_from_env();
    for spec in &SUBJECTS[..2] {
        let subject = build_subject(spec, scale);
        entries.push(Entry {
            name: spec.name.to_string(),
            program: subject.program,
            pdg: subject.pdg,
        });
    }
    entries
}

fn factory() -> impl Fn() -> Box<dyn FeasibilityEngine> + Sync {
    let budget = default_budget();
    move || Box::new(FusionSolver::new(budget)) as Box<dyn FeasibilityEngine>
}

type ReportKey = (
    fusion_pdg::graph::Vertex,
    fusion_pdg::graph::Vertex,
    fusion::engine::Feasibility,
    Vec<fusion_pdg::graph::Vertex>,
);

fn keys(run: &AnalysisRun) -> Vec<ReportKey> {
    run.reports
        .iter()
        .map(|r| (r.source, r.sink, r.verdict, r.path.nodes.clone()))
        .collect()
}

fn main() {
    banner(
        "pipeline_bench: barrier vs streaming discovery→solve",
        "same corpus, same threads; reports asserted identical to sequential",
    );
    let budget = default_budget();
    let checker = Checker::null_deref();
    let make = factory();

    let mut barrier_us: u128 = 0;
    let mut streaming_us: u128 = 0;
    let mut reports_identical = true;
    let mut slices_cold: u64 = 0;
    let mut slices_warm: u64 = 0;
    let mut slice_hits: u64 = 0;
    let mut slice_requests: u64 = 0;
    let mut discovery_steps: u64 = 0;
    let mut discovery_seq_us: u128 = 0;
    let mut discovery_shard_us: u128 = 0;

    for entry in corpus() {
        // Sequential reference transcript (fresh caches).
        let mut seq_engine = FusionSolver::new(budget);
        let seq_cache = VerdictCache::new();
        let seq = analyze_with_cache(
            &entry.program,
            &entry.pdg,
            &checker,
            &mut seq_engine,
            &AnalysisOptions::new(),
            Some(&seq_cache),
        );
        let want = keys(&seq);

        // Barrier vs streaming: best of ITERS, fresh caches per
        // repetition so both modes run cold.
        let mut best_barrier = u128::MAX;
        let mut best_streaming = u128::MAX;
        for _ in 0..ITERS {
            let cache = VerdictCache::new();
            let opts = AnalysisOptions::new();
            let t = Instant::now();
            let run = analyze_parallel_with_cache(
                &entry.program,
                &entry.pdg,
                &checker,
                &make,
                THREADS,
                &opts,
                Some(&cache),
            );
            best_barrier = best_barrier.min(t.elapsed().as_micros());
            if keys(&run) != want {
                reports_identical = false;
            }

            let cache = VerdictCache::new();
            let opts = AnalysisOptions::new();
            let t = Instant::now();
            let run = analyze_streaming_with_cache(
                &entry.program,
                &entry.pdg,
                &checker,
                &make,
                THREADS,
                &opts,
                Some(&cache),
            );
            best_streaming = best_streaming.min(t.elapsed().as_micros());
            if keys(&run) != want {
                reports_identical = false;
            }
        }
        barrier_us += best_barrier;
        streaming_us += best_streaming;

        // Slice memoization: cold run vs warm run sharing one SliceCache
        // (fresh verdict caches both, so the warm run re-queries).
        let shared = Arc::new(SliceCache::new());
        let opts = AnalysisOptions::new().with_slice_cache(Arc::clone(&shared));
        let cold_cache = VerdictCache::new();
        let cold = analyze_streaming_with_cache(
            &entry.program,
            &entry.pdg,
            &checker,
            &make,
            THREADS,
            &opts,
            Some(&cold_cache),
        );
        let warm_cache = VerdictCache::new();
        let warm = analyze_streaming_with_cache(
            &entry.program,
            &entry.pdg,
            &checker,
            &make,
            THREADS,
            &opts,
            Some(&warm_cache),
        );
        if keys(&cold) != want || keys(&warm) != want {
            reports_identical = false;
        }
        slices_cold += cold.stages.slices_computed;
        slices_warm += warm.stages.slices_computed;
        slice_hits += warm.slice.hits;
        slice_requests += warm.slice.hits + warm.slice.misses;

        // Discovery throughput: 1 shard vs THREADS shards.
        let popts = PropagateOptions::default();
        let t = Instant::now();
        let seq_d = discover_all(&entry.program, &entry.pdg, &checker, &popts, 1);
        discovery_seq_us += t.elapsed().as_micros();
        let t = Instant::now();
        let par_d = discover_all(&entry.program, &entry.pdg, &checker, &popts, THREADS);
        discovery_shard_us += t.elapsed().as_micros();
        assert_eq!(
            seq_d.candidates.len(),
            par_d.candidates.len(),
            "{}: sharded discovery changed the candidate set",
            entry.name
        );
        discovery_steps += seq_d.steps;

        println!(
            "  {:<16} barrier={:>8}us streaming={:>8}us slices cold/warm={}/{}",
            entry.name,
            best_barrier,
            best_streaming,
            cold.stages.slices_computed,
            warm.stages.slices_computed,
        );
    }
    assert!(
        reports_identical,
        "pipeline modes must report byte-identically"
    );

    let steps_per_sec = |us: u128| -> f64 {
        if us == 0 {
            0.0
        } else {
            discovery_steps as f64 / (us as f64 / 1e6)
        }
    };
    let hit_rate = if slice_requests == 0 {
        0.0
    } else {
        slice_hits as f64 / slice_requests as f64
    };
    let streaming_pct = if barrier_us == 0 {
        0.0
    } else {
        100.0 * streaming_us as f64 / barrier_us as f64
    };

    println!("--------------------------------------------------------------");
    println!(
        "barrier:   {:>9.3}ms   streaming: {:>9.3}ms   ({streaming_pct:.1}% of barrier)",
        barrier_us as f64 / 1000.0,
        streaming_us as f64 / 1000.0,
    );
    println!(
        "slices:    cold {} -> memoized {} ({}x reduction); warm hit rate {:.2}",
        slices_cold,
        slices_warm,
        if slices_warm == 0 {
            slices_cold as f64
        } else {
            slices_cold as f64 / slices_warm as f64
        },
        hit_rate,
    );
    println!(
        "discovery: {} steps; {:.0} steps/s at 1 shard, {:.0} steps/s at {THREADS} shards",
        discovery_steps,
        steps_per_sec(discovery_seq_us),
        steps_per_sec(discovery_shard_us),
    );

    let json = format!(
        "{{\n  \"scale\": {},\n  \"threads\": {THREADS},\n  \"iters\": {ITERS},\n  \
         \"barrier_wall_us\": {barrier_us},\n  \"streaming_wall_us\": {streaming_us},\n  \
         \"streaming_pct_of_barrier\": {streaming_pct:.2},\n  \
         \"slices_computed_cold\": {slices_cold},\n  \
         \"slices_computed_memoized\": {slices_warm},\n  \
         \"slice_warm_hit_rate\": {hit_rate:.4},\n  \
         \"discovery\": {{\"steps\": {discovery_steps}, \"seq_us\": {discovery_seq_us}, \
         \"sharded_us\": {discovery_shard_us}, \"steps_per_sec_seq\": {:.0}, \
         \"steps_per_sec_sharded\": {:.0}}},\n  \
         \"reports_identical\": {reports_identical}\n}}\n",
        scale_from_env(),
        steps_per_sec(discovery_seq_us),
        steps_per_sec(discovery_shard_us),
    );
    report::write("BENCH_pipeline.json", &json);

    // CI gates: streaming within 105% of barrier; memo must hit.
    let gate = report::Gate::from_env();
    gate.require(streaming_us as f64 <= barrier_us as f64 * 1.05, || {
        format!(
            "streaming wall {streaming_us}us exceeds 105% of \
             barrier wall {barrier_us}us"
        )
    });
    gate.require(slice_hits > 0, || {
        "slice memo recorded no hits on the warm runs".into()
    });
    gate.pass("streaming within 105% of barrier, slice memo hit");
}

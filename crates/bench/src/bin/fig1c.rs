//! Figure 1(c) — memory breakdown of the conventional design on the four
//! industrial-sized subjects: what share of peak memory is path conditions?
//!
//! The paper: "path conditions may consume over 72% of the runtime
//! memory." The categorized accountant measures this directly.

use fusion::checkers::Checker;
use fusion::engine::FeasibilityEngine;
use fusion::memory::{Category, CATEGORIES};
use fusion_baselines::PinpointEngine;
use fusion_bench::{banner, build_subject, default_budget, run_checker, scale_from_env};
use fusion_workloads::large_subjects;

fn main() {
    banner(
        "Figure 1(c): memory usage breakdown of the conventional design",
        "share of peak tracked memory per category (Pinpoint, null exceptions)",
    );
    let scale = scale_from_env();
    let checker = Checker::null_deref();
    println!(
        "{:>8} | {:>16} {:>12} {:>8} {:>12}",
        "program", "path-conditions", "summaries", "graph", "solver-state"
    );
    for spec in large_subjects() {
        let subject = build_subject(spec, scale);
        let mut engine = PinpointEngine::new(default_budget());
        let _run = run_checker(&subject, &checker, &mut engine);
        // Merge in the graph charge the driver accounts separately.
        let mut mem = engine.memory().clone();
        mem.charge(
            Category::Graph,
            subject.program.size() as u64 * fusion::memory::BYTES_PER_DEF,
        );
        let shares: Vec<String> = CATEGORIES
            .iter()
            .map(|&c| format!("{:>5.1}%", 100.0 * mem.peak_share(c)))
            .collect();
        println!(
            "{:>8} | {:>16} {:>12} {:>8} {:>12}",
            spec.name, shares[0], shares[1], shares[2], shares[3]
        );
    }
    println!("\npaper: path conditions >= 72% of memory on these subjects; the");
    println!("conditions (clones) plus cached summaries should dominate here too.");
}

//! Figure 11 — per-instance SMT solving time: the dependence-graph-based
//! solver vs the standalone solver on the same instances.
//!
//! For every feasibility query the analysis issues, the harness times the
//! Fusion solver (Algorithm 6) and the standalone pipeline (Algorithm 4:
//! clone everything, then Algorithm 3). It reports the sat/unsat shares,
//! the fraction decided during preprocessing (paper: 60% / 40% / 21%),
//! mean speedups by verdict (paper: 3.0x sat, 1.8x unsat, 2.5x overall)
//! and a bucketed ASCII scatter of the time pairs.

use fusion::cache::VerdictCache;
use fusion::checkers::Checker;
use fusion::engine::{Feasibility, FeasibilityEngine};
use fusion::graph_solver::{FusionSolver, UnoptimizedGraphSolver};
use fusion::propagate::{discover, PropagateOptions};
use fusion_bench::{banner, build_subject, default_budget, scale_from_env};
use fusion_workloads::SUBJECTS;

/// (fusion time, standalone time, verdict, preprocess-decided).
type Pair = (f64, f64, Feasibility, bool);

fn main() {
    banner(
        "Figure 11: time of SMT solving on all benchmarks",
        "graph-based solver (Alg. 6) vs standalone solving of the cloned condition (Alg. 4)",
    );
    let scale = scale_from_env();
    let checker = Checker::null_deref();
    let mut pairs: Vec<Pair> = Vec::new();
    // The shared verdict cache of the solve pipeline, consulted alongside
    // the timed solves to report what fraction of queries it absorbs.
    let cache = VerdictCache::new();
    for spec in &SUBJECTS {
        let subject = build_subject(spec, scale);
        let candidates = discover(
            &subject.program,
            &subject.pdg,
            &checker,
            &PropagateOptions::default(),
        );
        let mut fused = FusionSolver::new(default_budget());
        let mut standalone = UnoptimizedGraphSolver::new(default_budget());
        for cand in &candidates {
            for path in &cand.paths {
                let key = VerdictCache::key(&subject.program, std::slice::from_ref(path));
                let cached = cache.get(key);
                let f =
                    fused.check_paths(&subject.program, &subject.pdg, std::slice::from_ref(path));
                if let Some(v) = cached {
                    assert_eq!(v, f.feasibility, "a cache hit must never flip a verdict");
                }
                cache.insert(key, f.feasibility);
                let s = standalone.check_paths(
                    &subject.program,
                    &subject.pdg,
                    std::slice::from_ref(path),
                );
                if f.feasibility == s.feasibility {
                    pairs.push((
                        f.duration.as_secs_f64(),
                        s.duration.as_secs_f64(),
                        f.feasibility,
                        f.preprocess_decided,
                    ));
                }
            }
        }
    }
    let total = pairs.len().max(1);
    let sat = pairs
        .iter()
        .filter(|p| p.2 == Feasibility::Feasible)
        .count();
    let unsat = pairs
        .iter()
        .filter(|p| p.2 == Feasibility::Infeasible)
        .count();
    let pre = pairs.iter().filter(|p| p.3).count();
    println!(
        "\ninstances: {total} ({}% sat, {}% unsat, {}% decided in preprocessing)",
        100 * sat / total,
        100 * unsat / total,
        100 * pre / total
    );
    println!("paper:     310,462 (60% sat, 40% unsat, 21% decided in preprocessing)");

    let mean_speedup = |filter: &dyn Fn(&Pair) -> bool| -> f64 {
        let sel: Vec<&Pair> = pairs.iter().filter(|p| filter(p)).collect();
        if sel.is_empty() {
            return 0.0;
        }
        let ratios: f64 = sel.iter().map(|p| (p.1.max(1e-7)) / (p.0.max(1e-7))).sum();
        ratios / sel.len() as f64
    };
    println!(
        "\nmean speedup (standalone / graph-based): sat {:.2}x, unsat {:.2}x, overall {:.2}x",
        mean_speedup(&|p| p.2 == Feasibility::Feasible),
        mean_speedup(&|p| p.2 == Feasibility::Infeasible),
        mean_speedup(&|_| true),
    );
    println!("paper:                                   sat 3.0x,  unsat 1.8x,  overall ~2.5x");

    // Bucketed scatter: log-time grid, x = graph-based, y = standalone.
    println!("\nscatter (log buckets; '.'<3, '+'<10, '#'>=10 instances; diagonal marked '\\')");
    let bucket = |t: f64| -> usize {
        // 10us .. 1s in 6 decades-ish buckets
        let l = (t.max(1e-5)).log10(); // -5 .. 0
        ((l + 5.0).floor() as usize).min(5)
    };
    let mut grid = [[0usize; 6]; 6];
    for p in &pairs {
        grid[bucket(p.1)][bucket(p.0)] += 1;
    }
    let labels = ["10us", "0.1ms", "1ms", "10ms", "0.1s", "1s+"];
    for y in (0..6).rev() {
        let mut row = format!("{:>6} |", labels[y]);
        for (x, _) in labels.iter().enumerate() {
            let n = grid[y][x];
            let c = if n == 0 {
                if x == y {
                    '\\'
                } else {
                    ' '
                }
            } else if n < 3 {
                '.'
            } else if n < 10 {
                '+'
            } else {
                '#'
            };
            row.push_str(&format!("  {c}  "));
        }
        println!("{row}");
    }
    println!("        {}", labels.map(|l| format!("{l:^5}")).join(" "));
    println!("        (x axis: graph-based solver; points above the diagonal mean it wins)");

    let cs = cache.stats();
    println!(
        "\nverdict cache: {} hits / {} misses ({:.0}% hit rate), {} entries, {} B retained",
        cs.hits,
        cs.misses,
        cs.hit_rate() * 100.0,
        cs.entries,
        cs.bytes
    );
}

//! Partitioned ("out-of-core") analysis: per-shard sub-program
//! extraction, demand-driven summary import, and the deterministic
//! merge/replay coordinator behind `fusion-scan --shards K`.
//!
//! A shard owns a slice of the call graph ([`crate::partition`]) and
//! materializes only its verdict-closure from the snapshot — a dense,
//! renumbered sub-program whose peak footprint scales with the shard,
//! not the program. It imports the absint facts + return summaries of
//! closure functions it doesn't own (the cross-shard summary interface;
//! `summaries_imported` counts them), solves **only its owned work
//! items** (non-owned closure items are masked off with empty retained
//! records), and exports the recorded outcomes remapped to global
//! identities.
//!
//! The coordinator merges every shard's outcome set and replays it over
//! the full program with an all-false affected mask — the session
//! driver's replay path then reassembles the canonical, checker-major
//! report without a single solver query, which is what makes sharded
//! reports **byte-identical** to the unsharded pipeline at any K
//! (`tests/shard_determinism.rs` pins this). Outcomes are dependence
//! structure and verdicts only — no path condition crosses a shard
//! boundary, upholding §3.2.2 across process boundaries too.

use crate::cache::VerdictCache;
use crate::checkers::CheckerSet;
use crate::compact::CompactPdg;
use crate::engine::{
    analyze_multi_streaming_session, AnalysisOptions, BugReport, CandVerdict, FeasibilityEngine,
    ItemOutcomes, ItemRecord, MultiAnalysisRun, SessionParams,
};
use crate::partition::ShardPlan;
use crate::propagate::multi_source_vertices;
use crate::snapshot::{
    self, open_bytes, open_file, CallGraphInfo, RawFunction, Snapshot, SnapshotError,
    SnapshotWriter,
};
use fusion_ir::interner::Interner;
use fusion_ir::ssa::{CallSite, CallSiteId, Def, DefKind, FuncId, Function, Program, VarId};
use fusion_pdg::graph::{Pdg, Vertex};
use fusion_pdg::paths::{DependencePath, Link};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// A dense sub-program materialized for one shard, with the maps back
/// to global identities.
pub struct SubProgram {
    /// The renumbered program (fresh interner, dense function and
    /// call-site ids preserving the closure's relative order).
    pub program: Program,
    /// Local function index → global function id.
    pub to_global_func: Vec<u32>,
    /// Local call-site index → global call-site id.
    pub to_global_site: Vec<u32>,
}

/// Extracts the sub-program for `closure` (sorted global function
/// indices) from a snapshot, reading only those functions' sections.
pub fn extract_subprogram(snap: &Snapshot, closure: &[u32]) -> Result<SubProgram, SnapshotError> {
    let to_local: HashMap<u32, u32> = closure
        .iter()
        .enumerate()
        .map(|(l, &g)| (g, l as u32))
        .collect();
    let mut interner = Interner::new();
    let mut functions = Vec::with_capacity(closure.len());
    let mut call_sites: Vec<CallSite> = Vec::new();
    let mut to_global_site = Vec::new();
    for (local, &global) in closure.iter().enumerate() {
        let raw: RawFunction = snapshot::read_function(snap, global)?;
        let id = FuncId(local as u32);
        let name = interner.intern(&raw.name);
        let mut defs = Vec::with_capacity(raw.defs.len());
        for (j, (dname, kind, guard)) in raw.defs.into_iter().enumerate() {
            let kind = match kind {
                DefKind::Call { callee, args, site } => {
                    let local_callee = *to_local.get(&callee.0).ok_or_else(|| SnapshotError {
                        offset: 0,
                        what: format!(
                            "function {global} calls {} outside its shard closure",
                            callee.0
                        ),
                    })?;
                    let local_site = CallSiteId(call_sites.len() as u32);
                    call_sites.push(CallSite {
                        caller: id,
                        stmt: VarId(j as u32),
                        callee: FuncId(local_callee),
                    });
                    to_global_site.push(site.0);
                    DefKind::Call {
                        callee: FuncId(local_callee),
                        args,
                        site: local_site,
                    }
                }
                other => other,
            };
            defs.push(Def {
                var: VarId(j as u32),
                kind,
                guard,
                name: interner.intern(&dname),
            });
        }
        functions.push(Function {
            name,
            id,
            params: raw.params,
            defs,
            ret: raw.ret,
            is_extern: raw.is_extern,
        });
    }
    Ok(SubProgram {
        program: Program {
            functions,
            call_sites,
            interner,
        },
        to_global_func: closure.to_vec(),
        to_global_site,
    })
}

/// What one shard hands back to the coordinator.
pub struct ShardOutput {
    /// Recorded outcomes of the shard's owned work items, remapped to
    /// global function and call-site identities.
    pub outcomes: ItemOutcomes,
    /// Owned-function summaries this shard produced (`summaries_exported`).
    pub exported: u64,
    /// Non-owned, non-extern closure functions whose facts/summaries the
    /// shard imported instead of recomputing (`summaries_imported`).
    pub imported: u64,
    /// Peak tracked memory of the shard's run, bytes.
    pub peak_memory: u64,
    /// Solver queries the shard issued (live work on owned items).
    pub queries: usize,
}

/// Runs one shard against an opened snapshot: extract the closure
/// sub-program, import facts, solve owned items, and remap the recorded
/// outcomes back to global identities.
#[allow(clippy::too_many_arguments)]
pub fn run_shard(
    snap: &Snapshot,
    info: &CallGraphInfo,
    plan: &ShardPlan,
    s: usize,
    set: &CheckerSet,
    factory: &(dyn Fn() -> Box<dyn FeasibilityEngine> + Sync),
    threads: usize,
    options: &AnalysisOptions,
    cache: Option<&VerdictCache>,
) -> Result<ShardOutput, SnapshotError> {
    let owned = plan.owned(s);
    let closure = plan.closure(info, s);
    let sub = extract_subprogram(snap, &closure)?;
    let n_local = sub.program.functions.len();
    let pdg = Pdg::build(&sub.program);

    // Demand-driven summary import: the whole-program facts of every
    // closure function arrive from the snapshot; the shard recomputes
    // nothing, and functions outside the closure are never touched.
    let facts = if options.absint
        && snap.has(snapshot::tag::FACTS, closure.first().copied().unwrap_or(0))
    {
        let mut funcs = Vec::with_capacity(n_local);
        let mut rets = Vec::with_capacity(n_local);
        for &g in &closure {
            let (vals, ret) = snapshot::read_func_facts(snap, g)?;
            funcs.push(vals);
            rets.push(ret);
        }
        Some(Arc::new(crate::absint::ProgramFacts::from_parts(
            n_local,
            sub.program.size(),
            funcs,
            rets,
        )))
    } else {
        None
    };

    let compact = options
        .compact
        .then(|| CompactPdg::build(&sub.program, &pdg, set, &options.propagate));

    // Owned mask over local ids; closure functions the shard doesn't own
    // get synthetic empty records so their items replay to nothing
    // instead of running live.
    let mut affected = vec![false; n_local];
    let mut owned_iter = owned.iter().peekable();
    for (local, &global) in closure.iter().enumerate() {
        if owned_iter.peek() == Some(&&global) {
            affected[local] = true;
            owned_iter.next();
        }
    }
    let mut retained = ItemOutcomes::default();
    for (id, src) in multi_source_vertices(&sub.program, set) {
        if !affected[src.func.index()] {
            retained.insert_record(
                (id.0, src),
                ItemRecord {
                    verdicts: Vec::new(),
                    steps: 0,
                },
            );
        }
    }

    let params = SessionParams {
        facts,
        compact: compact.as_ref(),
        retained: Some(&retained),
        affected: Some(&affected),
        prov: None,
    };
    let (run, outcomes) = analyze_multi_streaming_session(
        &sub.program,
        &pdg,
        set,
        factory,
        threads,
        options,
        cache,
        params,
    );

    // Export only owned items, remapped to global identities.
    let mut global = ItemOutcomes::default();
    for (&(checker, src), rec) in outcomes.records() {
        if !affected[src.func.index()] {
            continue;
        }
        let verdicts = rec
            .verdicts
            .iter()
            .map(|v| remap_verdict(v, &sub))
            .collect();
        global.insert_record(
            (
                checker,
                Vertex {
                    func: FuncId(sub.to_global_func[src.func.index()]),
                    var: src.var,
                },
            ),
            ItemRecord {
                verdicts,
                steps: rec.steps,
            },
        );
    }

    let imported = closure
        .iter()
        .filter(|&&g| !info.is_extern[g as usize])
        .count() as u64
        - owned.len() as u64;
    Ok(ShardOutput {
        outcomes: global,
        exported: owned.len() as u64,
        imported,
        peak_memory: run.peak_memory,
        queries: run.queries,
    })
}

fn remap_vertex(v: Vertex, sub: &SubProgram) -> Vertex {
    Vertex {
        func: FuncId(sub.to_global_func[v.func.index()]),
        var: v.var,
    }
}

fn remap_verdict(v: &CandVerdict, sub: &SubProgram) -> CandVerdict {
    match v {
        CandVerdict::Suppressed => CandVerdict::Suppressed,
        CandVerdict::Report(r) => CandVerdict::Report(BugReport {
            source: remap_vertex(r.source, sub),
            sink: remap_vertex(r.sink, sub),
            verdict: r.verdict,
            path: DependencePath {
                nodes: r.path.nodes.iter().map(|&n| remap_vertex(n, sub)).collect(),
                links: r
                    .path
                    .links
                    .iter()
                    .map(|l| match l {
                        Link::Local => Link::Local,
                        Link::Enter(site) => {
                            Link::Enter(CallSiteId(sub.to_global_site[site.index()]))
                        }
                        Link::Exit(site) => {
                            Link::Exit(CallSiteId(sub.to_global_site[site.index()]))
                        }
                    })
                    .collect(),
            },
        }),
    }
}

/// Merges per-shard outcome sets. Key spaces are disjoint (each shard
/// exports only items it owns), so insertion order is immaterial.
pub fn merge_outcomes(parts: Vec<ItemOutcomes>) -> ItemOutcomes {
    let mut merged = ItemOutcomes::default();
    for part in parts {
        for (&key, rec) in part.records() {
            merged.insert_record(key, rec.clone());
        }
    }
    merged
}

/// Replays a merged outcome set over the full program: every work item
/// is masked unaffected, so the session driver reassembles the
/// canonical checker-major report purely from the records — zero
/// discovery, zero solver queries.
///
/// The driver consults the dependence graph only for *live* items, so
/// when the merge covers every work item (the normal case — shard
/// ownership partitions the items) the replay hands it an empty graph
/// instead of paying a whole-program [`Pdg::build`]. A merge with a
/// hole falls back to the real graph and re-solves the missing items.
pub fn replay_merged(
    program: &Program,
    set: &CheckerSet,
    factory: &(dyn Fn() -> Box<dyn FeasibilityEngine> + Sync),
    threads: usize,
    options: &AnalysisOptions,
    cache: Option<&VerdictCache>,
    merged: &ItemOutcomes,
) -> MultiAnalysisRun {
    let complete = multi_source_vertices(program, set)
        .iter()
        .all(|&(id, src)| merged.get(id, src).is_some());
    let empty = Program {
        functions: Vec::new(),
        call_sites: Vec::new(),
        interner: Interner::new(),
    };
    let pdg = Pdg::build(if complete { &empty } else { program });
    let affected = vec![false; program.functions.len()];
    let params = SessionParams {
        facts: None,
        compact: None,
        retained: Some(merged),
        affected: Some(&affected),
        prov: None,
    };
    let (run, _) = analyze_multi_streaming_session(
        program, &pdg, set, factory, threads, options, cache, params,
    );
    run
}

/// The result of a partitioned scan.
pub struct ShardedRun {
    /// The canonical merged report (byte-identical to an unsharded scan)
    /// with the sharding counters stamped into `stages`.
    pub run: MultiAnalysisRun,
    /// Peak tracked memory of each non-empty shard's run, bytes.
    pub shard_peaks: Vec<u64>,
}

/// Serializes `outcomes` into a standalone snapshot container (the
/// worker→coordinator transport for multi-process scans).
pub fn outcomes_container(outcomes: &ItemOutcomes) -> Vec<u8> {
    let mut w = SnapshotWriter::new();
    snapshot::write_outcomes(&mut w, outcomes);
    w.finish()
}

/// Builds the program+facts snapshot a partitioned scan distributes to
/// its shards. Returns the assembled container bytes.
pub fn scan_snapshot(program: &Program, options: &AnalysisOptions) -> Vec<u8> {
    let mut w = SnapshotWriter::new();
    snapshot::write_program(&mut w, program);
    if options.absint {
        let facts = crate::absint::ProgramFacts::compute(program);
        snapshot::write_facts(&mut w, program, &facts);
    }
    w.finish()
}

/// Runs a partitioned scan in-process: snapshot the program, run each
/// shard sequentially against it, merge, and replay. `snapshot_dir`
/// routes the container through a file (exercising the on-disk path);
/// `None` keeps it in memory.
#[allow(clippy::too_many_arguments)]
pub fn analyze_sharded(
    program: &Program,
    set: &CheckerSet,
    factory: &(dyn Fn() -> Box<dyn FeasibilityEngine> + Sync),
    threads: usize,
    options: &AnalysisOptions,
    cache: Option<&VerdictCache>,
    k: usize,
    snapshot_dir: Option<&Path>,
) -> Result<ShardedRun, SnapshotError> {
    let bytes = scan_snapshot(program, options);
    let bytes_written = bytes.len() as u64;
    let snap = match snapshot_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir).map_err(|e| SnapshotError {
                offset: 0,
                what: format!("create {}: {e}", dir.display()),
            })?;
            let path = dir.join("scan.fsnp");
            std::fs::write(&path, &bytes).map_err(|e| SnapshotError {
                offset: 0,
                what: format!("write {}: {e}", path.display()),
            })?;
            open_file(&path)?
        }
        None => open_bytes(bytes)?,
    };
    let info = CallGraphInfo::of_program(program);
    let plan = ShardPlan::compute(&info, k);
    let mut parts = Vec::new();
    let mut shard_peaks = Vec::new();
    let mut exported = 0u64;
    let mut imported = 0u64;
    for s in 0..plan.k() {
        if plan.owned(s).is_empty() {
            continue;
        }
        let out = run_shard(
            &snap, &info, &plan, s, set, factory, threads, options, cache,
        )?;
        exported += out.exported;
        imported += out.imported;
        shard_peaks.push(out.peak_memory);
        parts.push(out.outcomes);
    }
    let merged = merge_outcomes(parts);
    let mut run = replay_merged(program, set, factory, threads, options, cache, &merged);
    run.stages.shards = k as u64;
    run.stages.summaries_exported = exported;
    run.stages.summaries_imported = imported;
    run.stages.snapshot_bytes_written = bytes_written;
    run.stages.snapshot_bytes_read = snap.bytes_read();
    Ok(ShardedRun { run, shard_peaks })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph_solver::FusionSolver;
    use fusion_ir::{compile, CompileOptions};
    use fusion_smt::solver::SolverConfig;

    const SRC: &str = "extern fn deref(p);\n\
        fn leaf(x) { let b = x & 7; return b; }\n\
        fn use_a(p) { let v = leaf(p); let q = null; let r = 1; if (v > 2) { r = q; } deref(r); return 0; }\n\
        fn iso_b(z) { let q = null; let r = 1; if (z < 1) { r = q; } deref(r); return r; }";

    fn factory() -> impl Fn() -> Box<dyn FeasibilityEngine> + Sync {
        || Box::new(FusionSolver::new(SolverConfig::default())) as Box<dyn FeasibilityEngine>
    }

    #[test]
    fn subprogram_extraction_is_dense_and_valid() {
        let program = compile(SRC, CompileOptions::default()).expect("compile");
        let mut w = SnapshotWriter::new();
        snapshot::write_program(&mut w, &program);
        let snap = open_bytes(w.finish()).expect("open");
        let info = CallGraphInfo::of_program(&program);
        let plan = ShardPlan::compute(&info, 2);
        for s in 0..2 {
            if plan.owned(s).is_empty() {
                continue;
            }
            let closure = plan.closure(&info, s);
            let sub = extract_subprogram(&snap, &closure).expect("extract");
            assert_eq!(sub.program.functions.len(), closure.len());
            let errs = fusion_ir::validate::check_program(&sub.program);
            assert!(errs.is_empty(), "shard {s} sub-program: {errs:?}");
        }
    }

    #[test]
    fn sharded_matches_unsharded() {
        let program = compile(SRC, CompileOptions::default()).expect("compile");
        let pdg = Pdg::build(&program);
        let set = CheckerSet::new(crate::checkers::default_checkers());
        let options = AnalysisOptions::new();
        let fac = factory();
        let facts = Arc::new(crate::absint::ProgramFacts::compute(&program));
        let (base, _) = analyze_multi_streaming_session(
            &program,
            &pdg,
            &set,
            &fac,
            1,
            &options,
            None,
            SessionParams {
                facts: Some(facts),
                ..SessionParams::default()
            },
        );
        for k in [1usize, 2, 4] {
            let sharded =
                analyze_sharded(&program, &set, &fac, 1, &options, None, k, None).expect("sharded");
            assert_eq!(sharded.run.queries, 0, "replay must not query at k={k}");
            let base_reports: Vec<_> = base.all_reports().collect();
            let got: Vec<_> = sharded.run.all_reports().collect();
            assert_eq!(base_reports.len(), got.len(), "k={k}");
            for (a, b) in base_reports.iter().zip(&got) {
                assert_eq!(a.source, b.source, "k={k}");
                assert_eq!(a.sink, b.sink, "k={k}");
                assert_eq!(a.verdict, b.verdict, "k={k}");
                assert_eq!(a.path.nodes, b.path.nodes, "k={k}");
                assert_eq!(a.path.links, b.path.links, "k={k}");
            }
            assert_eq!(sharded.run.stages.shards, k as u64);
        }
    }

    #[test]
    fn outcome_container_round_trips_through_merge() {
        let program = compile(SRC, CompileOptions::default()).expect("compile");
        let options = AnalysisOptions::new();
        let set = CheckerSet::new(crate::checkers::default_checkers());
        let fac = factory();
        let snap = open_bytes(scan_snapshot(&program, &options)).expect("open");
        let info = CallGraphInfo::of_program(&program);
        let plan = ShardPlan::compute(&info, 2);
        let mut parts = Vec::new();
        for s in 0..2 {
            if plan.owned(s).is_empty() {
                continue;
            }
            let out =
                run_shard(&snap, &info, &plan, s, &set, &fac, 1, &options, None).expect("shard");
            // Cross the process-boundary transport and back.
            let container = outcomes_container(&out.outcomes);
            let reread = snapshot::read_outcomes(&open_bytes(container).expect("open outcomes"))
                .expect("read outcomes");
            assert_eq!(reread.len(), out.outcomes.len());
            parts.push(reread);
        }
        let merged = merge_outcomes(parts);
        let run = replay_merged(&program, &set, &fac, 1, &options, None, &merged);
        assert_eq!(run.queries, 0);
        assert!(run.all_reports().count() > 0, "replay reproduces reports");
    }
}

//! Bit-blasting: Tseitin translation of bit-vector terms to CNF.
//!
//! The "specific solver" stage of Algorithm 3 in the paper: when
//! preprocessing cannot decide satisfiability, each variable is modeled as a
//! bit vector of its type's width, the condition is blasted to a pure
//! Boolean formula, and the SAT solver decides it (§4, *SMT Solver in
//! Fusion*).
//!
//! Encodings are the standard ones: ripple-carry adders, shift-add
//! multipliers, division via the multiply-check identity at double width,
//! barrel shifters, and borrow-chain comparators.

use crate::cnf::{Cnf, Lit};
use crate::sat::SatSolver;
use crate::term::{BvOp, BvPred, Sort, TermId, TermKind, TermPool, VarIdx};
use std::collections::HashMap;

/// The blasted image of a term: one literal for booleans, a little-endian
/// literal vector for bit vectors.
#[derive(Debug, Clone)]
enum Bits {
    Bool(Lit),
    Bv(Vec<Lit>),
}

/// Mapping from SMT variables to their CNF literals, used to pull a
/// bit-vector model out of a SAT model.
#[derive(Debug, Clone, Default)]
pub struct BlastMap {
    bool_vars: HashMap<VarIdx, Lit>,
    bv_vars: HashMap<VarIdx, Vec<Lit>>,
}

impl BlastMap {
    /// Reads back the value of `v` from a SAT model (`model[i]` = value of
    /// CNF variable `i`). Unmapped variables (eliminated before blasting)
    /// return `None`.
    pub fn value(&self, v: VarIdx, model: &[bool]) -> Option<u64> {
        if let Some(l) = self.bool_vars.get(&v) {
            let raw = model[l.var().index()];
            return Some(u64::from(if l.is_pos() { raw } else { !raw }));
        }
        let bits = self.bv_vars.get(&v)?;
        let mut out = 0u64;
        for (i, l) in bits.iter().enumerate() {
            let raw = model[l.var().index()];
            let b = if l.is_pos() { raw } else { !raw };
            if b {
                out |= 1 << i;
            }
        }
        Some(out)
    }
}

/// A bit-blaster whose gate memo table, variable map, and CNF variable
/// universe persist across formulas.
///
/// Cold-solve uses it once per formula (via [`blast`]); a
/// [`crate::session::SolveSession`] keeps one alive for a whole sequence of
/// related formulas so shared subterms (memoized by [`TermId`]) are Tseitin-
/// translated exactly once. The memo is keyed by `TermId`, so it is only
/// valid as long as the companion [`TermPool`] is append-only — resetting the
/// pool requires dropping the blaster too.
#[derive(Debug)]
pub struct SessionBlaster {
    cnf: Cnf,
    memo: HashMap<TermId, Bits>,
    map: BlastMap,
    true_lit: Lit,
}

impl Default for SessionBlaster {
    fn default() -> Self {
        SessionBlaster::new()
    }
}

impl SessionBlaster {
    /// Creates an empty blaster with its constant-true literal allocated.
    pub fn new() -> Self {
        let mut cnf = Cnf::new();
        let t = cnf.fresh();
        let true_lit = Lit::pos(t);
        cnf.add_unit(true_lit);
        SessionBlaster {
            cnf,
            memo: HashMap::new(),
            map: BlastMap::default(),
            true_lit,
        }
    }

    /// Blasts a boolean `formula` and returns its root literal *without*
    /// asserting it. The definitional (Tseitin) clauses emitted are full
    /// biconditionals, so the root literal is equivalent to the formula and
    /// can be asserted directly — or passed as an assumption to
    /// [`SatSolver::solve_under_assumptions`] for incremental use.
    ///
    /// # Panics
    ///
    /// Panics if `formula` is not boolean-sorted (an internal sort error).
    pub fn blast_root(&mut self, pool: &TermPool, formula: TermId) -> Lit {
        assert_eq!(
            pool.sort(formula),
            Sort::Bool,
            "blast: formula must be Bool"
        );
        let Bits::Bool(root) = self.blast(pool, formula) else {
            unreachable!("formula is Bool")
        };
        root
    }

    /// The variable map for model extraction. Accumulates entries for every
    /// variable blasted so far in the session.
    pub fn map(&self) -> &BlastMap {
        &self.map
    }

    /// Number of CNF variables allocated so far (monotone over the session).
    pub fn num_cnf_vars(&self) -> u32 {
        self.cnf.num_vars
    }

    /// Number of distinct terms translated so far.
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }

    /// Moves all clauses emitted since the last drain into `solver`,
    /// growing its variable universe first. After this call the blaster
    /// holds no pending clauses (the solver owns the only copy).
    pub fn drain_into(&mut self, solver: &mut SatSolver) -> usize {
        solver.ensure_vars(self.cnf.num_vars as usize);
        let n = self.cnf.clauses.len();
        for clause in self.cnf.clauses.drain(..) {
            solver.add_clause_incremental(clause);
        }
        n
    }

    fn konst(&self, b: bool) -> Lit {
        if b {
            self.true_lit
        } else {
            !self.true_lit
        }
    }

    fn is_true(&self, l: Lit) -> bool {
        l == self.true_lit
    }

    fn is_false(&self, l: Lit) -> bool {
        l == !self.true_lit
    }

    fn fresh(&mut self) -> Lit {
        Lit::pos(self.cnf.fresh())
    }

    fn gate_and(&mut self, a: Lit, b: Lit) -> Lit {
        if self.is_false(a) || self.is_false(b) {
            return self.konst(false);
        }
        if self.is_true(a) {
            return b;
        }
        if self.is_true(b) || a == b {
            return a;
        }
        if a == !b {
            return self.konst(false);
        }
        let o = self.fresh();
        self.cnf.add(vec![!o, a]);
        self.cnf.add(vec![!o, b]);
        self.cnf.add(vec![o, !a, !b]);
        o
    }

    fn gate_or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.gate_and(!a, !b)
    }

    fn gate_xor(&mut self, a: Lit, b: Lit) -> Lit {
        if self.is_false(a) {
            return b;
        }
        if self.is_false(b) {
            return a;
        }
        if self.is_true(a) {
            return !b;
        }
        if self.is_true(b) {
            return !a;
        }
        if a == b {
            return self.konst(false);
        }
        if a == !b {
            return self.konst(true);
        }
        let o = self.fresh();
        self.cnf.add(vec![!o, a, b]);
        self.cnf.add(vec![!o, !a, !b]);
        self.cnf.add(vec![o, !a, b]);
        self.cnf.add(vec![o, a, !b]);
        o
    }

    fn gate_mux(&mut self, c: Lit, t: Lit, e: Lit) -> Lit {
        if self.is_true(c) {
            return t;
        }
        if self.is_false(c) {
            return e;
        }
        if t == e {
            return t;
        }
        let a = self.gate_and(c, t);
        let b = self.gate_and(!c, e);
        self.gate_or(a, b)
    }

    fn big_and(&mut self, lits: &[Lit]) -> Lit {
        let mut acc = self.konst(true);
        for &l in lits {
            acc = self.gate_and(acc, l);
        }
        acc
    }

    fn big_or(&mut self, lits: &[Lit]) -> Lit {
        let mut acc = self.konst(false);
        for &l in lits {
            acc = self.gate_or(acc, l);
        }
        acc
    }

    /// Full adder over literal vectors; returns (sum, carry-out).
    fn adder(&mut self, a: &[Lit], b: &[Lit], mut carry: Lit) -> (Vec<Lit>, Lit) {
        debug_assert_eq!(a.len(), b.len());
        let mut sum = Vec::with_capacity(a.len());
        for i in 0..a.len() {
            let axb = self.gate_xor(a[i], b[i]);
            sum.push(self.gate_xor(axb, carry));
            let c1 = self.gate_and(a[i], b[i]);
            let c2 = self.gate_and(axb, carry);
            carry = self.gate_or(c1, c2);
        }
        (sum, carry)
    }

    fn sub(&mut self, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let inv: Vec<Lit> = b.iter().map(|&l| !l).collect();
        let (sum, _) = self.adder(a, &inv, self.konst(true));
        sum
    }

    /// Shift-add multiplier, truncated to `out_width` bits.
    fn mul(&mut self, a: &[Lit], b: &[Lit], out_width: usize) -> Vec<Lit> {
        let mut acc = vec![self.konst(false); out_width];
        for (i, &bi) in b.iter().enumerate().take(out_width) {
            if self.is_false(bi) {
                continue;
            }
            // addend = (a << i) & replicate(bi), truncated.
            let mut addend = vec![self.konst(false); out_width];
            for j in 0..out_width.saturating_sub(i) {
                let abit = if j < a.len() { a[j] } else { self.konst(false) };
                addend[i + j] = self.gate_and(abit, bi);
            }
            let (sum, _) = self.adder(&acc, &addend, self.konst(false));
            acc = sum;
        }
        acc
    }

    /// `a < b` unsigned via the borrow chain of `a - b`.
    fn ult(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        let mut borrow = self.konst(false);
        for i in 0..a.len() {
            // borrow' = (¬a & b) | ((¬(a ⊕ b)) & borrow)
            let nab = self.gate_and(!a[i], b[i]);
            let x = self.gate_xor(a[i], b[i]);
            let keep = self.gate_and(!x, borrow);
            borrow = self.gate_or(nab, keep);
        }
        borrow
    }

    fn eq_bits(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        let mut acc = self.konst(true);
        for i in 0..a.len() {
            let x = self.gate_xor(a[i], b[i]);
            acc = self.gate_and(acc, !x);
        }
        acc
    }

    /// Barrel shifter. `fill` supplies the shifted-in bit (for `ashr`, the
    /// sign bit), and `left` selects direction.
    fn shift(&mut self, a: &[Lit], b: &[Lit], left: bool, fill: Lit) -> Vec<Lit> {
        let w = a.len();
        let mut cur = a.to_vec();
        let mut k = 0usize;
        while (1usize << k) < w {
            let amount = 1usize << k;
            let bit = if k < b.len() { b[k] } else { self.konst(false) };
            let mut shifted = vec![fill; w];
            for i in 0..w {
                if left {
                    if i >= amount {
                        shifted[i] = cur[i - amount];
                    } else {
                        shifted[i] = self.konst(false);
                    }
                } else if i + amount < w {
                    shifted[i] = cur[i + amount];
                }
            }
            let mut next = Vec::with_capacity(w);
            for i in 0..w {
                next.push(self.gate_mux(bit, shifted[i], cur[i]));
            }
            cur = next;
            k += 1;
        }
        // Shift amounts >= w: result is all-fill (left: all zero). High
        // bits of the amount imply >= 2^k >= w.
        let mut big_bits: Vec<Lit> = b.iter().skip(k).copied().collect();
        // When w is not a power of two, amounts in [w, 2^k) are encodable
        // in the low k bits; detect them numerically (w fits in k bits).
        if !w.is_power_of_two() && k > 0 {
            let w_lits: Vec<Lit> = (0..k)
                .map(|i| {
                    if (w >> i) & 1 == 1 {
                        self.konst(true)
                    } else {
                        self.konst(false)
                    }
                })
                .collect();
            let low: Vec<Lit> = b.iter().take(k).copied().collect();
            let lt_w = self.ult(&low, &w_lits);
            big_bits.push(!lt_w);
        }
        let big = self.big_or(&big_bits);
        let fill_final = if left { self.konst(false) } else { fill };
        cur.iter()
            .map(|&l| self.gate_mux(big, fill_final, l))
            .collect()
    }

    fn blast(&mut self, pool: &TermPool, t: TermId) -> Bits {
        if let Some(b) = self.memo.get(&t) {
            return b.clone();
        }
        let result = match pool.kind(t).clone() {
            TermKind::BoolConst(b) => Bits::Bool(self.konst(b)),
            TermKind::BvConst { width, value } => {
                let bits = (0..width)
                    .map(|i| self.konst((value >> i) & 1 == 1))
                    .collect();
                Bits::Bv(bits)
            }
            TermKind::Var(v) => match pool.var_sort(v) {
                Sort::Bool => {
                    let l = self.fresh();
                    self.map.bool_vars.insert(v, l);
                    Bits::Bool(l)
                }
                Sort::Bv(w) => {
                    let bits: Vec<Lit> = (0..w).map(|_| self.fresh()).collect();
                    self.map.bv_vars.insert(v, bits.clone());
                    Bits::Bv(bits)
                }
            },
            TermKind::Not(x) => {
                let Bits::Bool(l) = self.blast(pool, x) else {
                    unreachable!("not: bool")
                };
                Bits::Bool(!l)
            }
            TermKind::And(xs) => {
                let lits: Vec<Lit> = xs
                    .iter()
                    .map(|&x| {
                        let Bits::Bool(l) = self.blast(pool, x) else {
                            unreachable!("and: bool")
                        };
                        l
                    })
                    .collect();
                Bits::Bool(self.big_and(&lits))
            }
            TermKind::Or(xs) => {
                let lits: Vec<Lit> = xs
                    .iter()
                    .map(|&x| {
                        let Bits::Bool(l) = self.blast(pool, x) else {
                            unreachable!("or: bool")
                        };
                        l
                    })
                    .collect();
                Bits::Bool(self.big_or(&lits))
            }
            TermKind::Eq(a, b) => match (self.blast(pool, a), self.blast(pool, b)) {
                (Bits::Bool(x), Bits::Bool(y)) => Bits::Bool(!self.gate_xor(x, y)),
                (Bits::Bv(x), Bits::Bv(y)) => Bits::Bool(self.eq_bits(&x, &y)),
                _ => unreachable!("eq: sort mismatch"),
            },
            TermKind::Ite {
                cond,
                then_t,
                else_t,
            } => {
                let Bits::Bool(c) = self.blast(pool, cond) else {
                    unreachable!("ite cond")
                };
                match (self.blast(pool, then_t), self.blast(pool, else_t)) {
                    (Bits::Bool(x), Bits::Bool(y)) => Bits::Bool(self.gate_mux(c, x, y)),
                    (Bits::Bv(x), Bits::Bv(y)) => {
                        let bits = (0..x.len()).map(|i| self.gate_mux(c, x[i], y[i])).collect();
                        Bits::Bv(bits)
                    }
                    _ => unreachable!("ite: sort mismatch"),
                }
            }
            TermKind::Pred(p, a, b) => {
                let Bits::Bv(mut x) = self.blast(pool, a) else {
                    unreachable!("pred lhs")
                };
                let Bits::Bv(mut y) = self.blast(pool, b) else {
                    unreachable!("pred rhs")
                };
                let (swap, strict_complement) = match p {
                    BvPred::Ult | BvPred::Slt => (false, false),
                    // a <= b  ⟺  ¬(b < a)
                    BvPred::Ule | BvPred::Sle => (true, true),
                };
                if matches!(p, BvPred::Slt | BvPred::Sle) {
                    // Signed comparison: flip both MSBs and compare unsigned.
                    let n = x.len();
                    x[n - 1] = !x[n - 1];
                    y[n - 1] = !y[n - 1];
                }
                let l = if swap {
                    self.ult(&y, &x)
                } else {
                    self.ult(&x, &y)
                };
                Bits::Bool(if strict_complement { !l } else { l })
            }
            TermKind::Bv(op, a, b) => {
                let Bits::Bv(x) = self.blast(pool, a) else {
                    unreachable!("bv lhs")
                };
                let Bits::Bv(y) = self.blast(pool, b) else {
                    unreachable!("bv rhs")
                };
                let w = x.len();
                let bits = match op {
                    BvOp::Add => self.adder(&x, &y, self.konst(false)).0,
                    BvOp::Sub => self.sub(&x, &y),
                    BvOp::Mul => self.mul(&x, &y, w),
                    BvOp::And => (0..w).map(|i| self.gate_and(x[i], y[i])).collect(),
                    BvOp::Or => (0..w).map(|i| self.gate_or(x[i], y[i])).collect(),
                    BvOp::Xor => (0..w).map(|i| self.gate_xor(x[i], y[i])).collect(),
                    BvOp::Shl => {
                        let f = self.konst(false);
                        self.shift(&x, &y, true, f)
                    }
                    BvOp::Lshr => {
                        let f = self.konst(false);
                        self.shift(&x, &y, false, f)
                    }
                    BvOp::Ashr => {
                        let sign = x[w - 1];
                        self.shift(&x, &y, false, sign)
                    }
                    BvOp::Udiv | BvOp::Urem => self.divrem(&x, &y, op),
                };
                Bits::Bv(bits)
            }
        };
        self.memo.insert(t, result.clone());
        result
    }

    /// Division/remainder via the multiply-check identity at double width:
    /// fresh `q`, `r` with `q*b + r == a` (no overflow, checked at `2w`
    /// bits) and `r < b`, with the SMT-LIB `b == 0` special case.
    fn divrem(&mut self, a: &[Lit], b: &[Lit], op: BvOp) -> Vec<Lit> {
        let w = a.len();
        let q: Vec<Lit> = (0..w).map(|_| self.fresh()).collect();
        let r: Vec<Lit> = (0..w).map(|_| self.fresh()).collect();
        let zero_w: Vec<Lit> = vec![self.konst(false); w];
        // b == 0?
        let bz = {
            let z = zero_w.clone();
            self.eq_bits(b, &z)
        };
        // Wide product check: zext(q) * zext(b) + zext(r) == zext(a).
        let zext = |bits: &[Lit], f: Lit| {
            let mut v = bits.to_vec();
            v.resize(2 * w, f);
            v
        };
        let f = self.konst(false);
        let qw = zext(&q, f);
        let bw = zext(b, f);
        let rw = zext(&r, f);
        let aw = zext(a, f);
        let prod = self.mul(&qw, &bw, 2 * w);
        let (sum, _) = self.adder(&prod, &rw, self.konst(false));
        let exact = self.eq_bits(&sum, &aw);
        let rem_lt = self.ult(&r, b);
        let ok_div = self.gate_and(exact, rem_lt);
        // b == 0 case: q = all-ones, r = a.
        let ones: Vec<Lit> = vec![self.konst(true); w];
        let q_ones = self.eq_bits(&q, &ones);
        let r_is_a = self.eq_bits(&r, a);
        let ok_zero = self.gate_and(q_ones, r_is_a);
        let chosen = self.gate_mux(bz, ok_zero, ok_div);
        self.cnf.add_unit(chosen);
        match op {
            BvOp::Udiv => q,
            BvOp::Urem => r,
            _ => unreachable!(),
        }
    }
}

/// Blasts a boolean `formula` into CNF, asserting it true. Returns the CNF
/// and the variable map for model extraction.
///
/// # Panics
///
/// Panics if `formula` is not boolean-sorted (an internal sort error).
pub fn blast(pool: &TermPool, formula: TermId) -> (Cnf, BlastMap) {
    let mut b = SessionBlaster::new();
    let root = b.blast_root(pool, formula);
    b.cnf.add_unit(root);
    (b.cnf, b.map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::{solve_cnf, SatBudget, SatOutcome};
    use crate::term::Sort;
    use std::collections::HashMap as Map;

    /// Blast `formula`, solve, and on SAT check the model against `eval`.
    fn solve_and_check(pool: &TermPool, formula: TermId) -> bool {
        let (cnf, map) = blast(pool, formula);
        match solve_cnf(&cnf, SatBudget::default()) {
            SatOutcome::Sat(model) => {
                let mut env: Map<VarIdx, u64> = Map::new();
                for v in pool.free_vars(formula) {
                    if let Some(val) = map.value(v, &model) {
                        env.insert(v, val);
                    }
                }
                let val = pool.eval(formula, &env);
                assert_eq!(
                    val,
                    crate::term::Value::Bool(true),
                    "model does not satisfy formula"
                );
                true
            }
            SatOutcome::Unsat => false,
            SatOutcome::Unknown => panic!("unexpected unknown"),
        }
    }

    #[test]
    fn add_equation_solvable() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(8));
        let c3 = p.bv_const(3, 8);
        let c10 = p.bv_const(10, 8);
        let sum = p.bv(BvOp::Add, x, c3);
        let f = p.eq(sum, c10);
        assert!(solve_and_check(&p, f));
    }

    #[test]
    fn contradictory_equation_unsat() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(8));
        let c3 = p.bv_const(3, 8);
        let c10 = p.bv_const(10, 8);
        let c11 = p.bv_const(11, 8);
        let sum = p.bv(BvOp::Add, x, c3);
        let e1 = p.eq(sum, c10);
        let e2 = p.eq(sum, c11);
        let f = p.and2(e1, e2);
        assert!(!solve_and_check(&p, f));
    }

    #[test]
    fn mul_inverse_exists_for_odd() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(8));
        let c3 = p.bv_const(3, 8);
        let one = p.bv_const(1, 8);
        let prod = p.bv(BvOp::Mul, x, c3);
        let f = p.eq(prod, one);
        assert!(solve_and_check(&p, f)); // 3 * 171 = 513 = 1 mod 256
    }

    #[test]
    fn mul_by_even_cannot_be_odd() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(8));
        let c2 = p.bv_const(2, 8);
        let one = p.bv_const(1, 8);
        let prod = p.bv(BvOp::Mul, x, c2);
        let f = p.eq(prod, one);
        assert!(!solve_and_check(&p, f));
    }

    #[test]
    fn unsigned_comparison() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(8));
        let c5 = p.bv_const(5, 8);
        let lt = p.pred(BvPred::Ult, x, c5);
        let c4 = p.bv_const(4, 8);
        let ge = p.pred(BvPred::Ule, c4, x);
        let f = p.and2(lt, ge); // x == 4
        assert!(solve_and_check(&p, f));
        let gt5 = p.pred(BvPred::Ult, c5, x);
        let f2 = p.and2(lt, gt5);
        assert!(!solve_and_check(&p, f2));
    }

    #[test]
    fn signed_comparison_wraps() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(8));
        let zero = p.bv_const(0, 8);
        let neg = p.pred(BvPred::Slt, x, zero); // x < 0 signed
        let c200 = p.bv_const(200, 8); // = -56 signed
        let isc = p.eq(x, c200);
        let f = p.and2(neg, isc);
        assert!(solve_and_check(&p, f));
    }

    #[test]
    fn shifts_match_semantics() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(8));
        let amt = p.var("s", Sort::Bv(8));
        let shifted = p.bv(BvOp::Shl, x, amt);
        let c1 = p.bv_const(1, 8);
        let c16 = p.bv_const(16, 8);
        let e1 = p.eq(x, c1);
        let e2 = p.eq(shifted, c16);
        let f = p.and(&[e1, e2]); // 1 << s == 16 → s == 4
        assert!(solve_and_check(&p, f));
    }

    #[test]
    fn shift_by_width_or_more_is_zero() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(8));
        let c9 = p.bv_const(9, 8);
        let sh = p.bv(BvOp::Lshr, x, c9);
        let zero = p.bv_const(0, 8);
        let f = p.ne(sh, zero);
        assert!(!solve_and_check(&p, f));
    }

    #[test]
    fn division_identity() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(6));
        let c7 = p.bv_const(7, 6);
        let q = p.bv(BvOp::Udiv, x, c7);
        let c5 = p.bv_const(5, 6);
        let f = p.eq(q, c5); // x in [35, 41]
        assert!(solve_and_check(&p, f));
    }

    #[test]
    fn division_by_zero_is_all_ones() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(6));
        let zero = p.bv_const(0, 6);
        let q = p.bv(BvOp::Udiv, x, zero);
        let ones = p.bv_const(63, 6);
        let f = p.ne(q, ones);
        assert!(!solve_and_check(&p, f));
    }

    #[test]
    fn remainder_bounds() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(6));
        let c5 = p.bv_const(5, 6);
        let r = p.bv(BvOp::Urem, x, c5);
        let ge5 = p.pred(BvPred::Ule, c5, r);
        assert!(!solve_and_check(&p, ge5));
    }

    #[test]
    fn ite_blasting() {
        let mut p = TermPool::new();
        let c = p.var("c", Sort::Bool);
        let a = p.bv_const(3, 8);
        let b = p.bv_const(7, 8);
        let x = p.ite(c, a, b);
        let c7 = p.bv_const(7, 8);
        let f1 = p.eq(x, c7);
        assert!(solve_and_check(&p, f1)); // choose c = false
        let c9 = p.bv_const(9, 8);
        let f2 = p.eq(x, c9);
        assert!(!solve_and_check(&p, f2));
    }

    #[test]
    fn ashr_fills_sign() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(8));
        let c128 = p.bv_const(0x80, 8);
        let amt = p.bv_const(2, 8);
        let e1 = p.eq(x, c128);
        let sh = p.bv(BvOp::Ashr, x, amt);
        let want = p.bv_const(0xe0, 8);
        let e2 = p.eq(sh, want);
        let both = p.and2(e1, e2);
        assert!(solve_and_check(&p, both));
    }
}

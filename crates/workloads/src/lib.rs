//! # fusion-workloads
//!
//! Synthetic evaluation subjects for the Fusion reproduction:
//!
//! * [`spec`] — the sixteen Table 2 subjects with the paper's reported
//!   numbers and scaled generator configurations;
//! * [`genprog`] — the deterministic program generator (function DAGs,
//!   branches, loops, calls) with seeded feasible/infeasible bugs;
//! * [`bugseed`] — ground truth and precision/recall scoring (exact #TP /
//!   #FP denominators for Table 5).

#![warn(missing_docs)]

pub mod bugseed;
pub mod genprog;
pub mod spec;

pub use bugseed::{score, BugSite, Score, SeededBug};
pub use genprog::{generate, generate_multi, GenConfig, GeneratedSubject};
pub use spec::{large_subjects, SubjectSpec, SUBJECTS};

//! The sixteen evaluation subjects of Table 2, with the paper's reported
//! numbers for side-by-side printing and a generator configuration that
//! reproduces each subject's *shape* at a chosen scale.

use crate::genprog::GenConfig;

/// Paper-reported numbers for one subject (Tables 2 and 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubjectSpec {
    /// Table 2 row id (1-16).
    pub id: u32,
    /// Project name.
    pub name: &'static str,
    /// Size in thousands of lines (Table 2).
    pub kloc: f64,
    /// Function count (Table 2).
    pub functions: u32,
    /// PDG vertices (Table 2).
    pub vertices: u64,
    /// PDG edges (Table 2).
    pub edges: u64,
    /// Fusion memory, GB (Table 3).
    pub fusion_mem_gb: f64,
    /// Pinpoint memory, GB (Table 3).
    pub pinpoint_mem_gb: f64,
    /// Fusion time, seconds (Table 3).
    pub fusion_time_s: f64,
    /// Pinpoint time, seconds (Table 3).
    pub pinpoint_time_s: f64,
}

/// All sixteen subjects in Table 2 order.
pub const SUBJECTS: [SubjectSpec; 16] = [
    SubjectSpec {
        id: 1,
        name: "mcf",
        kloc: 2.0,
        functions: 26,
        vertices: 22_800,
        edges: 28_900,
        fusion_mem_gb: 0.1,
        pinpoint_mem_gb: 1.1,
        fusion_time_s: 4.0,
        pinpoint_time_s: 19.0,
    },
    SubjectSpec {
        id: 2,
        name: "bzip2",
        kloc: 3.0,
        functions: 74,
        vertices: 93_800,
        edges: 120_400,
        fusion_mem_gb: 0.1,
        pinpoint_mem_gb: 2.3,
        fusion_time_s: 4.0,
        pinpoint_time_s: 172.0,
    },
    SubjectSpec {
        id: 3,
        name: "gzip",
        kloc: 6.0,
        functions: 89,
        vertices: 165_300,
        edges: 221_500,
        fusion_mem_gb: 0.1,
        pinpoint_mem_gb: 1.3,
        fusion_time_s: 3.0,
        pinpoint_time_s: 30.0,
    },
    SubjectSpec {
        id: 4,
        name: "parser",
        kloc: 8.0,
        functions: 324,
        vertices: 824_200,
        edges: 1_114_100,
        fusion_mem_gb: 0.1,
        pinpoint_mem_gb: 3.3,
        fusion_time_s: 49.0,
        pinpoint_time_s: 233.0,
    },
    SubjectSpec {
        id: 5,
        name: "vpr",
        kloc: 11.0,
        functions: 272,
        vertices: 376_300,
        edges: 478_000,
        fusion_mem_gb: 0.1,
        pinpoint_mem_gb: 1.9,
        fusion_time_s: 3.0,
        pinpoint_time_s: 145.0,
    },
    SubjectSpec {
        id: 6,
        name: "crafty",
        kloc: 13.0,
        functions: 108,
        vertices: 381_100,
        edges: 498_900,
        fusion_mem_gb: 0.1,
        pinpoint_mem_gb: 1.3,
        fusion_time_s: 2.0,
        pinpoint_time_s: 23.0,
    },
    SubjectSpec {
        id: 7,
        name: "twolf",
        kloc: 18.0,
        functions: 191,
        vertices: 762_900,
        edges: 995_500,
        fusion_mem_gb: 0.2,
        pinpoint_mem_gb: 1.8,
        fusion_time_s: 41.0,
        pinpoint_time_s: 95.0,
    },
    SubjectSpec {
        id: 8,
        name: "eon",
        kloc: 22.0,
        functions: 3_400,
        vertices: 1_200_000,
        edges: 1_300_000,
        fusion_mem_gb: 0.1,
        pinpoint_mem_gb: 1.8,
        fusion_time_s: 2.0,
        pinpoint_time_s: 21.0,
    },
    SubjectSpec {
        id: 9,
        name: "gap",
        kloc: 36.0,
        functions: 843,
        vertices: 3_400_000,
        edges: 4_400_000,
        fusion_mem_gb: 2.2,
        pinpoint_mem_gb: 39.1,
        fusion_time_s: 53.0,
        pinpoint_time_s: 2_033.0,
    },
    SubjectSpec {
        id: 10,
        name: "vortex",
        kloc: 49.0,
        functions: 923,
        vertices: 3_300_000,
        edges: 4_200_000,
        fusion_mem_gb: 0.6,
        pinpoint_mem_gb: 8.9,
        fusion_time_s: 164.0,
        pinpoint_time_s: 1_769.0,
    },
    SubjectSpec {
        id: 11,
        name: "perlbmk",
        kloc: 73.0,
        functions: 1_100,
        vertices: 9_300_000,
        edges: 12_200_000,
        fusion_mem_gb: 1.0,
        pinpoint_mem_gb: 19.4,
        fusion_time_s: 227.0,
        pinpoint_time_s: 2_524.0,
    },
    SubjectSpec {
        id: 12,
        name: "gcc",
        kloc: 135.0,
        functions: 2_200,
        vertices: 14_200_000,
        edges: 18_400_000,
        fusion_mem_gb: 1.5,
        pinpoint_mem_gb: 27.7,
        fusion_time_s: 339.0,
        pinpoint_time_s: 2_615.0,
    },
    SubjectSpec {
        id: 13,
        name: "ffmpeg",
        kloc: 1_001.0,
        functions: 74_200,
        vertices: 57_100_000,
        edges: 76_400_000,
        fusion_mem_gb: 11.8,
        pinpoint_mem_gb: 55.7,
        fusion_time_s: 689.0,
        pinpoint_time_s: 5_899.0,
    },
    SubjectSpec {
        id: 14,
        name: "v8",
        kloc: 1_201.0,
        functions: 260_400,
        vertices: 63_000_000,
        edges: 73_500_000,
        fusion_mem_gb: 8.6,
        pinpoint_mem_gb: 82.1,
        fusion_time_s: 748.0,
        pinpoint_time_s: 7_672.0,
    },
    SubjectSpec {
        id: 15,
        name: "mysql",
        kloc: 2_030.0,
        functions: 79_200,
        vertices: 68_800_000,
        edges: 85_000_000,
        fusion_mem_gb: 7.9,
        pinpoint_mem_gb: 98.8,
        fusion_time_s: 1_250.0,
        pinpoint_time_s: 9_057.0,
    },
    SubjectSpec {
        id: 16,
        name: "wine",
        kloc: 4_108.0,
        functions: 133_000,
        vertices: 90_200_000,
        edges: 112_300_000,
        fusion_mem_gb: 11.2,
        pinpoint_mem_gb: 98.3,
        fusion_time_s: 772.0,
        pinpoint_time_s: 8_893.0,
    },
];

/// The four industrial-sized subjects (Tables 4, 5, Fig. 1(c)).
pub fn large_subjects() -> Vec<&'static SubjectSpec> {
    SUBJECTS.iter().filter(|s| s.id >= 13).collect()
}

impl SubjectSpec {
    /// Looks up a subject by name.
    pub fn by_name(name: &str) -> Option<&'static SubjectSpec> {
        SUBJECTS.iter().find(|s| s.name == name)
    }

    /// A generator configuration reproducing this subject's shape at
    /// `scale` (fraction of the paper's line count; e.g. `0.002` turns
    /// wine's 4.1 MLoC into ~8 K statements). Bug seeding grows with size.
    pub fn gen_config(&self, scale: f64) -> GenConfig {
        let target_stmts = (self.kloc * 1_000.0 * scale).max(150.0);
        let stmts_per_function = 12usize;
        let functions = ((target_stmts / stmts_per_function as f64) as usize).max(12);
        // Larger projects in the suite have deeper call structure and more
        // branching; densities nudge accordingly.
        let big = self.kloc > 500.0;
        let seeds = ((functions / 8).clamp(4, 64), (functions / 12).clamp(3, 48));
        GenConfig {
            seed: 0xF051_0000 + self.id as u64,
            functions,
            stmts_per_function,
            call_density: if big { 0.3 } else { 0.25 },
            branch_density: if big { 0.25 } else { 0.2 },
            loop_density: 0.05,
            null_feasible: seeds.0,
            null_infeasible: seeds.1,
            cwe23_feasible: (seeds.0 / 2).max(1),
            cwe23_infeasible: (seeds.1 / 2).max(1),
            cwe402_feasible: (seeds.0 / 2).max(1),
            cwe402_infeasible: (seeds.1 / 2).max(1),
            affine_helpers: (functions / 8).clamp(3, 24),
            opaque_helpers: (functions / 12).clamp(2, 16),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genprog::generate;
    use fusion_ir::{compile_ast, CompileOptions};

    #[test]
    fn sixteen_subjects_in_order() {
        assert_eq!(SUBJECTS.len(), 16);
        for (i, s) in SUBJECTS.iter().enumerate() {
            assert_eq!(s.id as usize, i + 1);
        }
        assert_eq!(large_subjects().len(), 4);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(SubjectSpec::by_name("mysql").unwrap().id, 15);
        assert!(SubjectSpec::by_name("nope").is_none());
    }

    #[test]
    fn scaled_configs_grow_with_subject_size() {
        let small = SUBJECTS[0].gen_config(0.01);
        let large = SUBJECTS[15].gen_config(0.01);
        assert!(large.functions > small.functions * 10);
    }

    #[test]
    fn every_subject_generates_and_compiles_at_tiny_scale() {
        for s in &SUBJECTS {
            let cfg = s.gen_config(0.0005);
            let mut subject = generate(&cfg);
            let program = compile_ast(
                &subject.surface,
                &mut subject.interner,
                CompileOptions::default(),
            )
            .unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert!(program.size() > 50, "{}", s.name);
        }
    }
}

//! # fusion-bench
//!
//! The evaluation harness: one binary per table/figure of the paper (run
//! with `cargo run -p fusion-bench --release --bin <name>`), plus Criterion
//! micro-benchmarks. This library holds the shared plumbing: subject
//! construction, engine runners, and table formatting.
//!
//! Scale is controlled by the `FUSION_SCALE` environment variable — the
//! fraction of each subject's paper line count to generate (default
//! `0.002`, i.e. wine ≈ 8 K statements). Reproduced numbers are printed
//! beside the paper's so shape comparisons are direct.

#![warn(missing_docs)]

use fusion::checkers::Checker;
use fusion::engine::{analyze, AnalysisOptions, AnalysisRun, FeasibilityEngine};
use fusion_ir::{compile_ast, CompileOptions, Program};
use fusion_pdg::graph::Pdg;
use fusion_smt::solver::SolverConfig;
use fusion_workloads::{generate, SeededBug, SubjectSpec};
use std::time::Duration;

/// A generated, compiled subject ready for analysis.
pub struct CompiledSubject {
    /// The paper's reference numbers.
    pub spec: &'static SubjectSpec,
    /// The lowered program.
    pub program: Program,
    /// Its dependence graph.
    pub pdg: Pdg,
    /// Seeded ground truth.
    pub bugs: Vec<SeededBug>,
}

/// Reads the scale factor from `FUSION_SCALE` (default 0.002).
pub fn scale_from_env() -> f64 {
    std::env::var("FUSION_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.002)
}

/// Generates and compiles one subject at the given scale.
///
/// # Panics
///
/// Panics if the generated program fails to compile — a bug in the
/// generator, not an input condition.
pub fn build_subject(spec: &'static SubjectSpec, scale: f64) -> CompiledSubject {
    let cfg = spec.gen_config(scale);
    let mut subject = generate(&cfg);
    let program = compile_ast(
        &subject.surface,
        &mut subject.interner,
        CompileOptions::default(),
    )
    .expect("generated subjects always compile");
    let pdg = Pdg::build(&program);
    CompiledSubject {
        spec,
        program,
        pdg,
        bugs: subject.bugs,
    }
}

/// The per-query solver budget used by every engine in the harnesses
/// (mirrors the paper's 10-second per-call cap, shrunk for scaled runs).
pub fn default_budget() -> SolverConfig {
    SolverConfig {
        timeout: Some(Duration::from_secs(10)),
        max_conflicts: Some(200_000),
        ..Default::default()
    }
}

/// Runs one checker with one engine over a compiled subject.
pub fn run_checker(
    subject: &CompiledSubject,
    checker: &Checker,
    engine: &mut dyn FeasibilityEngine,
) -> AnalysisRun {
    analyze(
        &subject.program,
        &subject.pdg,
        checker,
        engine,
        &AnalysisOptions::new(),
    )
}

/// Formats a duration as fractional seconds.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

/// Formats bytes as mebibytes.
pub fn fmt_mib(bytes: u64) -> String {
    format!("{:.2}MiB", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats an `x`-factor ratio, guarding division by zero.
pub fn fmt_ratio(num: f64, den: f64) -> String {
    if den <= f64::EPSILON {
        "-".into()
    } else {
        format!("{:.1}x", num / den)
    }
}

/// Shared report plumbing for the `*_bench` binaries: every harness writes
/// one JSON file (path from `FUSION_BENCH_OUT`, falling back to a
/// per-binary default) and, when `FUSION_BENCH_ENFORCE=1`, applies its CI
/// regression gates with a uniform `REGRESSION:` / `enforce: … — ok`
/// protocol the workflow greps for.
pub mod report {
    /// Writes `json` to `FUSION_BENCH_OUT` (default `default_name`) and
    /// announces the path on stdout.
    ///
    /// # Panics
    ///
    /// Panics when the output file cannot be written — a broken CI
    /// workspace, not an input condition.
    pub fn write(default_name: &str, json: &str) {
        let out = std::env::var("FUSION_BENCH_OUT").unwrap_or_else(|_| default_name.into());
        std::fs::write(&out, json).unwrap_or_else(|e| panic!("write {out}: {e}"));
        println!("wrote {out}");
    }

    /// The CI regression gate. Disarmed (every check a no-op) unless
    /// `FUSION_BENCH_ENFORCE=1`.
    pub struct Gate {
        armed: bool,
    }

    impl Gate {
        /// Reads `FUSION_BENCH_ENFORCE` and arms the gate on `"1"`.
        pub fn from_env() -> Self {
            Gate {
                armed: std::env::var("FUSION_BENCH_ENFORCE").as_deref() == Ok("1"),
            }
        }

        /// True when the gate is armed.
        pub fn armed(&self) -> bool {
            self.armed
        }

        /// When armed and `ok` is false, prints `REGRESSION: <msg>` to
        /// stderr and exits with status 1.
        pub fn require(&self, ok: bool, msg: impl FnOnce() -> String) {
            if self.armed && !ok {
                eprintln!("REGRESSION: {}", msg());
                std::process::exit(1);
            }
        }

        /// When armed, prints the all-checks-passed line.
        pub fn pass(&self, summary: &str) {
            if self.armed {
                println!("enforce: {summary} — ok");
            }
        }
    }
}

/// Prints a header for one experiment binary.
pub fn banner(title: &str, detail: &str) {
    println!("==============================================================");
    println!("{title}");
    println!("{detail}");
    println!("scale = {} (set FUSION_SCALE to change)", scale_from_env());
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion::graph_solver::FusionSolver;
    use fusion_workloads::SUBJECTS;

    #[test]
    fn build_and_analyze_smallest_subject() {
        let subject = build_subject(&SUBJECTS[0], 0.002);
        let mut engine = FusionSolver::new(default_budget());
        let run = run_checker(&subject, &Checker::null_deref(), &mut engine);
        assert!(run.candidates > 0);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_mib(1024 * 1024), "1.00MiB");
        assert_eq!(fmt_ratio(10.0, 2.0), "5.0x");
        assert_eq!(fmt_ratio(10.0, 0.0), "-");
        assert!(fmt_secs(Duration::from_millis(1500)).starts_with("1.5"));
    }
}

//! Figure 10 — Fusion vs Pinpoint and its variants across all subjects.
//!
//! Time and memory curves for Fusion, Pinpoint, Pinpoint+LFS and
//! Pinpoint+HFS; Pinpoint+QE and Pinpoint+AR are run with their budgets
//! and reported as memory-out/timeout when they trip — the paper found QE
//! succeeded only on the smallest subject and AR only below 50 KLoC.

use fusion::checkers::Checker;
use fusion::graph_solver::FusionSolver;
use fusion_baselines::{ArEngine, PinpointEngine, Tactic};
use fusion_bench::{banner, build_subject, default_budget, run_checker, scale_from_env};
use fusion_workloads::SUBJECTS;
use std::time::Duration;

fn main() {
    banner(
        "Figure 10: Fusion vs Pinpoint and its variants (null exceptions)",
        "time (ms) and memory (KiB) per subject; MEMOUT/TIMEOUT per the variant budgets",
    );
    let scale = scale_from_env();
    let checker = Checker::null_deref();
    // Emulate the paper's per-analysis wall budget, scaled.
    let wall_budget = Duration::from_secs(
        std::env::var("FUSION_WALL_BUDGET_S")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(120),
    );
    println!(
        "{:>2} {:>8} | {:>18} {:>18} {:>18} {:>18} {:>18} {:>18}",
        "ID",
        "program",
        "fusion",
        "pinpoint",
        "pinpoint+lfs",
        "pinpoint+hfs",
        "pinpoint+qe",
        "pinpoint+ar"
    );
    for spec in &SUBJECTS {
        let subject = build_subject(spec, scale);
        let mut cells: Vec<String> = Vec::new();
        for variant in 0..6 {
            let started = std::time::Instant::now();
            let cell = match variant {
                0 => {
                    let mut e = FusionSolver::new(default_budget());
                    let run = run_checker(&subject, &checker, &mut e);
                    fmt_cell(run.total_time(), run.peak_memory)
                }
                1 => {
                    let mut e = PinpointEngine::new(default_budget());
                    let run = run_checker(&subject, &checker, &mut e);
                    fmt_cell(run.total_time(), run.peak_memory)
                }
                2 => {
                    let mut e = PinpointEngine::with_tactic(default_budget(), Tactic::Lfs);
                    let run = run_checker(&subject, &checker, &mut e);
                    fmt_cell(run.total_time(), run.peak_memory)
                }
                3 => {
                    // HFS is expensive: respect the wall budget.
                    let mut e = PinpointEngine::with_tactic(default_budget(), Tactic::Hfs);
                    let run = run_checker(&subject, &checker, &mut e);
                    if started.elapsed() > wall_budget {
                        "TIMEOUT".to_string()
                    } else {
                        fmt_cell(run.total_time(), run.peak_memory)
                    }
                }
                4 => {
                    let mut e = PinpointEngine::with_tactic(default_budget(), Tactic::Qe);
                    let run = run_checker(&subject, &checker, &mut e);
                    if e.qe_blowups() > 0 {
                        "MEMOUT".to_string()
                    } else {
                        fmt_cell(run.total_time(), run.peak_memory)
                    }
                }
                _ => {
                    let mut e = ArEngine::new(default_budget());
                    let run = run_checker(&subject, &checker, &mut e);
                    if started.elapsed() > wall_budget {
                        "TIMEOUT".to_string()
                    } else {
                        fmt_cell(run.total_time(), run.peak_memory)
                    }
                }
            };
            cells.push(cell);
        }
        println!(
            "{:>2} {:>8} | {:>18} {:>18} {:>18} {:>18} {:>18} {:>18}",
            spec.id, spec.name, cells[0], cells[1], cells[2], cells[3], cells[4], cells[5]
        );
    }
    println!("\nexpected shape: fusion lowest in both time and memory; LFS/HFS do not");
    println!("reduce memory but add time; QE blows its budget beyond tiny subjects;");
    println!("AR multiplies solver calls on subjects needing refinement.");
}

fn fmt_cell(t: Duration, mem: u64) -> String {
    format!("{:.0}ms/{}K", t.as_secs_f64() * 1e3, mem / 1024)
}

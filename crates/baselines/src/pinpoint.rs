//! The Pinpoint-style conventional design (Algorithm 2) and its QE / LFS /
//! HFS variants.
//!
//! Compared to the fused engines, this baseline embodies exactly the two
//! scalability problems of §3.1:
//!
//! * **condition caching** — per-function summary conditions are computed
//!   eagerly, *retained across queries* in a persistent term pool, and
//!   charged to the [`Category::Summaries`] accountant;
//! * **condition cloning** — at every call site the cached, *unpreprocessed*
//!   summary is instantiated by variable renaming, duplicating its full
//!   size per context (renamed variables defeat structural sharing); only
//!   the final, fully-cloned formula reaches the standalone Algorithm 3
//!   solver.
//!
//! Variants attach a tactic to the summary cache: `+QE` eliminates internal
//! variables by quantifier elimination (blow-up prone), `+LFS` applies
//! local rewriting, `+HFS` applies solver-driven contextual simplification
//! (expensive in solver calls). These mirror the `qe`, `simplify` and
//! `ctx-solver-simplify` Z3 tactics of the paper's evaluation.

use fusion::engine::{CheckOutcome, Feasibility, FeasibilityEngine, SolveRecord};
use fusion::memory::{Category, MemoryAccountant, BYTES_PER_TERM_NODE};
use fusion_ir::ssa::{CallSiteId, DefKind, FuncId, Program, VarId, WORD_BITS};
use fusion_pdg::graph::Pdg;
use fusion_pdg::paths::DependencePath;
use fusion_pdg::slice::{compute_slice, Constraint, ConstraintKind, Slice};
use fusion_pdg::translate::{encode_op, instance_var, truthy};
use fusion_smt::preprocess::simplify;
use fusion_smt::solver::{deadline_expired, smt_solve, SatResult, SolverConfig};
use fusion_smt::tactic::{ctx_solver_simplify, quantifier_eliminate_expansion};
use fusion_smt::term::{Sort, TermId, TermKind, TermPool, VarIdx};
use std::collections::{HashMap, HashSet, VecDeque};

/// Which condition-size-reduction tactic the baseline applies to cached
/// summaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tactic {
    /// Plain Pinpoint: no tactic.
    None,
    /// Quantifier elimination of summary-internal variables.
    Qe,
    /// Lightweight formula simplification (local rewriting).
    Lfs,
    /// Heavyweight formula simplification (solver-driven).
    Hfs,
}

/// A cached per-function summary condition.
#[derive(Debug, Clone)]
struct Summary {
    formula: TermId,
    var_map: HashMap<VarIdx, VarId>,
}

/// The conventional engine (Algorithm 2 + Algorithm 3).
#[derive(Debug)]
pub struct PinpointEngine {
    /// Per-query SMT budget.
    pub per_call: SolverConfig,
    /// Instance budget; exceeding it is a memory-out.
    pub max_instances: usize,
    /// QE node budget (per summary).
    pub qe_budget: usize,
    tactic: Tactic,
    /// Persistent pool: cached summaries and their clones live here for
    /// the entire run — the memory problem the paper measures.
    pool: TermPool,
    summaries: HashMap<FuncId, Summary>,
    memory: MemoryAccountant,
    records: Vec<SolveRecord>,
    qe_blowups: usize,
}

impl PinpointEngine {
    /// Plain Pinpoint.
    pub fn new(per_call: SolverConfig) -> Self {
        Self::with_tactic(per_call, Tactic::None)
    }

    /// Pinpoint armed with a summary tactic.
    pub fn with_tactic(per_call: SolverConfig, tactic: Tactic) -> Self {
        Self {
            per_call,
            max_instances: 1 << 14,
            qe_budget: 1 << 14,
            tactic,
            pool: TermPool::new(),
            summaries: HashMap::new(),
            memory: MemoryAccountant::new(),
            records: Vec::new(),
            qe_blowups: 0,
        }
    }

    /// How many summaries blew the QE node budget (a proxy for the
    /// memory-out the paper reports for Pinpoint+QE on all but the
    /// smallest subject).
    pub fn qe_blowups(&self) -> usize {
        self.qe_blowups
    }

    /// Builds (or fetches) the cached summary condition of `fid` for the
    /// given slice. Conventional design: the summary covers the *whole*
    /// function body relevant to conditions — we take the union of slice
    /// vertices seen so far, rebuilding when the slice grows.
    fn summary(&mut self, program: &Program, slice: &Slice, fid: FuncId) -> Summary {
        // Cache hit only if every sliced vertex is already covered; for
        // simplicity the summary is built from the full function body, so
        // one build always suffices.
        if let Some(s) = self.summaries.get(&fid) {
            return s.clone();
        }
        let func = program.func(fid);
        let _ = slice;
        let pool = &mut self.pool;
        let mut var_map = HashMap::new();
        let mut local = |pool: &mut TermPool, v: VarId| -> TermId {
            let t = pool.var(&format!("s{}:v{}", fid.0, v.0), Sort::Bv(WORD_BITS));
            if let TermKind::Var(idx) = *pool.kind(t) {
                var_map.insert(idx, v);
            }
            t
        };
        let mut parts = Vec::new();
        for def in &func.defs {
            match &def.kind {
                DefKind::Param { .. } | DefKind::Branch { .. } | DefKind::Call { .. } => {}
                DefKind::Const { value, .. } => {
                    let lhs = local(pool, def.var);
                    let k = pool.bv_const(*value as u64, WORD_BITS);
                    parts.push(pool.eq(lhs, k));
                }
                DefKind::Copy { src } | DefKind::Return { src } => {
                    let lhs = local(pool, def.var);
                    let rhs = local(pool, *src);
                    parts.push(pool.eq(lhs, rhs));
                }
                DefKind::Binary { op, lhs: a, rhs: b } => {
                    let lhs = local(pool, def.var);
                    let ta = local(pool, *a);
                    let tb = local(pool, *b);
                    let rhs = encode_op(pool, *op, ta, tb);
                    parts.push(pool.eq(lhs, rhs));
                }
                DefKind::Ite {
                    cond,
                    then_v,
                    else_v,
                } => {
                    let lhs = local(pool, def.var);
                    let tc = local(pool, *cond);
                    let tt = local(pool, *then_v);
                    let te = local(pool, *else_v);
                    let c = truthy(pool, tc);
                    let rhs = pool.ite(c, tt, te);
                    parts.push(pool.eq(lhs, rhs));
                }
            }
        }
        let mut formula = pool.and(&parts);
        // Apply the configured tactic to the cached condition.
        match self.tactic {
            Tactic::None => {}
            Tactic::Lfs => {
                formula = simplify(pool, formula);
            }
            Tactic::Hfs => {
                let (simplified, _stats) = ctx_solver_simplify(pool, formula, &self.per_call);
                formula = simplified;
            }
            Tactic::Qe => {
                // Eliminate summary-internal variables: everything except
                // parameters, the return value, and branch/gate conditions
                // (the summary's interface).
                let func = program.func(fid);
                let mut interface: HashSet<VarId> = func.params.iter().copied().collect();
                if let Some(r) = func.ret {
                    interface.insert(r);
                }
                for def in &func.defs {
                    match &def.kind {
                        DefKind::Branch { cond } => {
                            interface.insert(*cond);
                        }
                        DefKind::Ite { cond, .. } => {
                            interface.insert(*cond);
                        }
                        DefKind::Call { args, .. } => {
                            interface.insert(def.var);
                            interface.extend(args.iter().copied());
                        }
                        _ => {}
                    }
                }
                let internals: Vec<VarIdx> = pool
                    .free_vars(formula)
                    .into_iter()
                    .filter(|v| {
                        var_map
                            .get(v)
                            .map(|ir| !interface.contains(ir))
                            .unwrap_or(false)
                    })
                    .collect();
                // Expansion-only QE, as Z3 4.5's bit-vector `qe` behaves.
                match quantifier_eliminate_expansion(pool, formula, &internals, self.qe_budget) {
                    Ok(f) => formula = f,
                    Err(_) => {
                        // QE blew up: the pool growth is real and stays
                        // charged; record the blow-up so harnesses can
                        // report a memory-out like the paper does.
                        self.qe_blowups += 1;
                    }
                }
            }
        }
        let nodes = pool.dag_size(formula) as u64;
        let s = Summary { formula, var_map };
        self.summaries.insert(fid, s.clone());
        // Cached forever: a persistent charge.
        self.memory
            .charge(Category::Summaries, nodes * BYTES_PER_TERM_NODE);
        s
    }
}

impl FeasibilityEngine for PinpointEngine {
    fn name(&self) -> &'static str {
        match self.tactic {
            Tactic::None => "pinpoint",
            Tactic::Qe => "pinpoint+qe",
            Tactic::Lfs => "pinpoint+lfs",
            Tactic::Hfs => "pinpoint+hfs",
        }
    }

    fn check_paths(
        &mut self,
        program: &Program,
        pdg: &Pdg,
        paths: &[DependencePath],
    ) -> CheckOutcome {
        let start = std::time::Instant::now();
        let deadline = self.per_call.deadline_from(start);
        let slice = compute_slice(program, pdg, paths);
        let pool_before = self.pool.len();

        let mut parts: Vec<TermId> = Vec::new();
        let mut instances: HashSet<(Vec<CallSiteId>, FuncId)> = HashSet::new();
        let mut work: VecDeque<(Vec<CallSiteId>, FuncId)> = VecDeque::new();
        let schedule = |instances: &mut HashSet<(Vec<CallSiteId>, FuncId)>,
                        work: &mut VecDeque<(Vec<CallSiteId>, FuncId)>,
                        ctx: Vec<CallSiteId>,
                        f: FuncId| {
            if instances.insert((ctx.clone(), f)) {
                work.push_back((ctx, f));
            }
        };

        for Constraint { ctx, func, kind } in &slice.constraints {
            schedule(&mut instances, &mut work, ctx.clone(), *func);
            let f = program.func(*func);
            match kind {
                ConstraintKind::BranchTrue { branch } => {
                    let DefKind::Branch { cond } = f.def(*branch).kind else {
                        unreachable!("guards are branches")
                    };
                    let cv = instance_var(&mut self.pool, ctx, *func, cond);
                    let t = truthy(&mut self.pool, cv);
                    parts.push(t);
                }
                ConstraintKind::IteGate { ite, taken_then } => {
                    let DefKind::Ite { cond, .. } = f.def(*ite).kind else {
                        unreachable!("gated vertices are ites")
                    };
                    let cv = instance_var(&mut self.pool, ctx, *func, cond);
                    let t = truthy(&mut self.pool, cv);
                    parts.push(if *taken_then { t } else { self.pool.not(t) });
                }
            }
        }

        // Clone the cached summary at every instance; bind parameters,
        // call results and returns across instances.
        let mut blowup = false;
        while let Some((ctx, fid)) = work.pop_front() {
            // Cloning full-size summaries is the slow part of this
            // baseline: poll the per-call deadline so a pathological query
            // degrades to Unknown (same handling as an instance blow-up)
            // instead of stalling a worker.
            if instances.len() > self.max_instances || deadline_expired(deadline) {
                blowup = true;
                break;
            }
            if !slice.funcs.contains_key(&fid) {
                continue;
            }
            let summary = self.summary(program, &slice, fid);
            let func = program.func(fid);
            // Instantiate: rename every summary variable into this context.
            let mut subst: HashMap<VarIdx, TermId> = HashMap::new();
            for smt_var in self.pool.free_vars(summary.formula) {
                let target = match summary.var_map.get(&smt_var) {
                    Some(&ir_var) => instance_var(&mut self.pool, &ctx, fid, ir_var),
                    None => {
                        let sort = self.pool.var_sort(smt_var);
                        self.pool.fresh_var("pp", sort)
                    }
                };
                subst.insert(smt_var, target);
            }
            let inst = self.pool.substitute(summary.formula, &subst);
            parts.push(inst);

            // Cross-instance bindings. Parameters are always bound (the
            // whole-function summary mentions them); calls are cloned at
            // every call site *in the slice* — exactly Algorithm 4's
            // instance set, but with the full-size cached summary as the
            // cloning unit (Table 1's `O(kn + m)`).
            if let Some(&site) = ctx.last() {
                let cs = program.call_site(site);
                let caller_ctx = ctx[..ctx.len() - 1].to_vec();
                let caller = program.func(cs.caller);
                let DefKind::Call { args, .. } = &caller.def(cs.stmt).kind else {
                    unreachable!("call sites point at calls")
                };
                for (index, &pvar) in func.params.iter().enumerate() {
                    let actual = args[index];
                    let lhs = instance_var(&mut self.pool, &ctx, fid, pvar);
                    let rhs = instance_var(&mut self.pool, &caller_ctx, cs.caller, actual);
                    let e = self.pool.eq(lhs, rhs);
                    parts.push(e);
                }
                schedule(&mut instances, &mut work, caller_ctx, cs.caller);
            }
            let fs = &slice.funcs[&fid];
            for &v in &fs.verts {
                if let DefKind::Call { callee, site, .. } = &func.def(v).kind {
                    let callee_f = program.func(*callee);
                    if callee_f.is_extern {
                        continue;
                    }
                    let mut sub_ctx = ctx.clone();
                    sub_ctx.push(*site);
                    let ret = callee_f.ret.expect("non-extern has a return");
                    let lhs = instance_var(&mut self.pool, &ctx, fid, v);
                    let rhs = instance_var(&mut self.pool, &sub_ctx, *callee, ret);
                    schedule(&mut instances, &mut work, sub_ctx, *callee);
                    let e = self.pool.eq(lhs, rhs);
                    parts.push(e);
                }
            }
        }

        if blowup {
            let grown = (self.pool.len() - pool_before) as u64 * BYTES_PER_TERM_NODE;
            self.memory.charge(Category::PathConditions, grown);
            return CheckOutcome {
                feasibility: Feasibility::Unknown,
                duration: start.elapsed(),
                condition_nodes: self.pool.len() as u64,
                instances: instances.len(),
                preprocess_decided: false,
            };
        }

        let formula = self.pool.and(&parts);
        // Budget the final query with the wall-clock remaining after
        // cloning; the cloned condition is charged either way — the pool
        // retains it even when the query never ran.
        let Some(cfg) = self.per_call.with_remaining(deadline) else {
            let grown = (self.pool.len() - pool_before) as u64 * BYTES_PER_TERM_NODE;
            self.memory.charge(Category::PathConditions, grown);
            let outcome = CheckOutcome {
                feasibility: Feasibility::Unknown,
                duration: start.elapsed(),
                condition_nodes: self.pool.dag_size(formula) as u64,
                instances: instances.len(),
                preprocess_decided: false,
            };
            self.records.push(SolveRecord::from_outcome(&outcome));
            return outcome;
        };
        let (result, stats) = smt_solve(&mut self.pool, formula, &cfg);
        // The cloned condition stays in the persistent pool until the end
        // of the run — exactly the caching cost of Fig. 1(c). Charge the
        // growth to PathConditions.
        let grown = (self.pool.len() - pool_before) as u64 * BYTES_PER_TERM_NODE;
        self.memory.charge(Category::PathConditions, grown);
        let transient = stats.cnf_clauses as u64 * 16;
        self.memory.charge(Category::SolverState, transient);
        self.memory.release(Category::SolverState, transient);

        let feasibility = match result {
            SatResult::Sat(_) => Feasibility::Feasible,
            SatResult::Unsat => Feasibility::Infeasible,
            SatResult::Unknown => Feasibility::Unknown,
        };
        let outcome = CheckOutcome {
            feasibility,
            duration: start.elapsed(),
            condition_nodes: self.pool.dag_size(formula) as u64,
            instances: instances.len(),
            preprocess_decided: stats.preprocess_decided,
        };
        self.records.push(SolveRecord::from_outcome(&outcome));
        outcome
    }

    fn memory(&self) -> &MemoryAccountant {
        &self.memory
    }

    fn records(&self) -> &[SolveRecord] {
        &self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion::checkers::Checker;
    use fusion::engine::{analyze, AnalysisOptions};
    use fusion::graph_solver::FusionSolver;
    use fusion_ir::{compile, CompileOptions};

    const MIXED: &str = "extern fn deref(p);\n\
        fn bar(x) { let y = x * 2; let z = y; return z; }\n\
        fn foo(a, b) {\n\
          let pp = null;\n\
          let r = 1;\n\
          if (bar(a) < bar(b)) { r = pp; }\n\
          deref(r);\n\
          return 0;\n\
        }\n\
        fn never(x) {\n\
          let q = null;\n\
          let r = 1;\n\
          if (x > 5) { if (x < 3) { r = q; } }\n\
          deref(r);\n\
          return 0;\n\
        }";

    fn run_with(engine: &mut dyn FeasibilityEngine) -> (usize, usize) {
        let p = compile(MIXED, CompileOptions::default()).expect("compile");
        let g = Pdg::build(&p);
        let run = analyze(
            &p,
            &g,
            &Checker::null_deref(),
            engine,
            &AnalysisOptions::new(),
        );
        (run.reports.len(), run.suppressed)
    }

    #[test]
    fn pinpoint_reports_same_bugs_as_fusion() {
        // "Since they work with the same precision ... the bugs they
        // report are the same."
        let mut pinpoint = PinpointEngine::new(SolverConfig::default());
        let mut fused = FusionSolver::new(SolverConfig::default());
        assert_eq!(run_with(&mut pinpoint), run_with(&mut fused));
    }

    #[test]
    fn pinpoint_retains_summary_and_condition_memory() {
        let mut pinpoint = PinpointEngine::new(SolverConfig::default());
        let _ = run_with(&mut pinpoint);
        assert!(pinpoint.memory().peak(Category::Summaries) > 0);
        assert!(pinpoint.memory().current(Category::PathConditions) > 0);
        // Fusion retains neither.
        let mut fused = FusionSolver::new(SolverConfig::default());
        let _ = run_with(&mut fused);
        assert_eq!(fused.memory().peak(Category::Summaries), 0);
        assert_eq!(fused.memory().current(Category::PathConditions), 0);
    }

    #[test]
    fn variants_report_same_bugs() {
        for tactic in [Tactic::Lfs, Tactic::Hfs] {
            let mut engine = PinpointEngine::with_tactic(SolverConfig::default(), tactic);
            let mut fused = FusionSolver::new(SolverConfig::default());
            assert_eq!(run_with(&mut engine), run_with(&mut fused), "{tactic:?}");
        }
    }

    #[test]
    fn qe_variant_still_sound_under_blowup() {
        let mut engine = PinpointEngine::with_tactic(SolverConfig::default(), Tactic::Qe);
        engine.qe_budget = 64; // force frequent blow-ups
        let mut fused = FusionSolver::new(SolverConfig::default());
        assert_eq!(run_with(&mut engine), run_with(&mut fused));
    }

    #[test]
    fn names_reflect_tactics() {
        assert_eq!(
            PinpointEngine::new(SolverConfig::default()).name(),
            "pinpoint"
        );
        assert_eq!(
            PinpointEngine::with_tactic(SolverConfig::default(), Tactic::Qe).name(),
            "pinpoint+qe"
        );
    }
}

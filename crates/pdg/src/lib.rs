//! # fusion-pdg
//!
//! The program dependence graph of Def. 3.1 and the machinery of §3.2.1 for
//! the Fusion reproduction (Shi et al., PLDI 2021):
//!
//! * [`graph`] — PDG construction per the Fig. 5 rules, with labeled call
//!   and return edges and the Table 2 size statistics;
//! * [`compact`] — dense vertex numbering, bit sets and collapsed summary
//!   chains backing the pre-discovery compaction pass (`fusion::compact`);
//! * [`paths`] — data-dependence paths with CFL call/return links and
//!   calling-context reconstruction;
//! * [`slice`] — the linear, modular slice `G[Π]` (Rules 1–3);
//! * [`translate`] — the allotropic transformation to first-order path
//!   conditions (Rules 4–8) including the context-sensitive cloning of
//!   Algorithm 4, with an instance budget that reports cloning blow-ups.
//!
//! ## Quick start
//!
//! ```
//! use fusion_ir::{compile, CompileOptions};
//! use fusion_pdg::graph::Pdg;
//!
//! let program = compile(
//!     "fn bar(x) { return x * 2; } fn foo(a) { return bar(a); }",
//!     CompileOptions::default(),
//! )?;
//! let pdg = Pdg::build(&program);
//! assert!(pdg.stats().interproc_edges > 0); // labeled call/return edges
//! # Ok::<(), fusion_ir::CompileError>(())
//! ```

#![warn(missing_docs)]

pub mod compact;
pub mod dot;
pub mod graph;
pub mod paths;
pub mod slice;
pub mod translate;

pub use compact::{DenseBitSet, SummaryChain, VertexIndexer};
pub use dot::pdg_to_dot;
pub use graph::{FlowTarget, Pdg, PdgStats, Vertex};
pub use paths::{Context, DependencePath, Link};
pub use slice::{compute_slice, Constraint, ConstraintKind, FuncSlice, Slice};
pub use translate::{translate, CloneBlowup, TranslateOptions, Translation, VarOrigins};

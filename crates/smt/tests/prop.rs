//! Property-based tests for the SMT substrate.
//!
//! Strategy: generate random boolean formulas over a handful of 4-bit
//! variables, small enough that *brute-force enumeration* of all
//! assignments is feasible and serves as independent ground truth. Then:
//!
//! * `smt_solve` (preprocess + bit-blast + CDCL) must agree with brute
//!   force;
//! * every preprocessing pass must preserve satisfiability of the
//!   existential closure (the pass may introduce fresh variables — they are
//!   existential too);
//! * quantifier elimination must preserve satisfiability.

use fusion_smt::preprocess::{
    eliminate_unconstrained, gaussian_eliminate, preprocess, propagate_constants,
    propagate_equalities, reduce_strength, simplify,
};
use fusion_smt::solver::{smt_solve, SolverConfig};
use fusion_smt::tactic::quantifier_eliminate;
use fusion_smt::term::{BvOp, BvPred, Sort, TermId, TermKind, TermPool, Value};
use proptest::prelude::*;
use std::collections::HashMap;

const W: u32 = 4;
const NVARS: usize = 3;

/// A compact recipe for building a random formula inside a fresh pool.
#[derive(Debug, Clone)]
enum Ast {
    Var(u8),
    Const(u8),
    Bv(u8, Box<Ast>, Box<Ast>),
    Ite(Box<Ast>, Box<Ast>, Box<Ast>),
}

#[derive(Debug, Clone)]
enum BoolAst {
    Eq(Ast, Ast),
    Pred(u8, Ast, Ast),
    Not(Box<BoolAst>),
    And(Vec<BoolAst>),
    Or(Vec<BoolAst>),
}

fn ast_strategy() -> impl Strategy<Value = Ast> {
    let leaf = prop_oneof![
        (0..NVARS as u8).prop_map(Ast::Var),
        (0..16u8).prop_map(Ast::Const),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (0..11u8, inner.clone(), inner.clone()).prop_map(|(op, a, b)| Ast::Bv(
                op,
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, a, b)| Ast::Ite(
                Box::new(c),
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
}

fn bool_strategy() -> impl Strategy<Value = BoolAst> {
    let leaf = prop_oneof![
        (ast_strategy(), ast_strategy()).prop_map(|(a, b)| BoolAst::Eq(a, b)),
        (0..4u8, ast_strategy(), ast_strategy()).prop_map(|(p, a, b)| BoolAst::Pred(p, a, b)),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|b| BoolAst::Not(Box::new(b))),
            prop::collection::vec(inner.clone(), 2..4).prop_map(BoolAst::And),
            prop::collection::vec(inner, 2..4).prop_map(BoolAst::Or),
        ]
    })
}

fn build_bv(pool: &mut TermPool, ast: &Ast) -> TermId {
    match ast {
        Ast::Var(i) => pool.var(&format!("v{i}"), Sort::Bv(W)),
        Ast::Const(c) => pool.bv_const(*c as u64, W),
        Ast::Bv(op, a, b) => {
            let ops = [
                BvOp::Add,
                BvOp::Sub,
                BvOp::Mul,
                BvOp::Udiv,
                BvOp::Urem,
                BvOp::And,
                BvOp::Or,
                BvOp::Xor,
                BvOp::Shl,
                BvOp::Lshr,
                BvOp::Ashr,
            ];
            let a = build_bv(pool, a);
            let b = build_bv(pool, b);
            pool.bv(ops[*op as usize % ops.len()], a, b)
        }
        Ast::Ite(c, a, b) => {
            let c = build_bv(pool, c);
            let zero = pool.bv_const(0, W);
            let cb = pool.ne(c, zero);
            let a = build_bv(pool, a);
            let b = build_bv(pool, b);
            pool.ite(cb, a, b)
        }
    }
}

fn build_bool(pool: &mut TermPool, ast: &BoolAst) -> TermId {
    match ast {
        BoolAst::Eq(a, b) => {
            let a = build_bv(pool, a);
            let b = build_bv(pool, b);
            pool.eq(a, b)
        }
        BoolAst::Pred(p, a, b) => {
            let preds = [BvPred::Ult, BvPred::Ule, BvPred::Slt, BvPred::Sle];
            let a = build_bv(pool, a);
            let b = build_bv(pool, b);
            pool.pred(preds[*p as usize % preds.len()], a, b)
        }
        BoolAst::Not(b) => {
            let b = build_bool(pool, b);
            pool.not(b)
        }
        BoolAst::And(xs) => {
            let xs: Vec<TermId> = xs.iter().map(|x| build_bool(pool, x)).collect();
            pool.and(&xs)
        }
        BoolAst::Or(xs) => {
            let xs: Vec<TermId> = xs.iter().map(|x| build_bool(pool, x)).collect();
            pool.or(&xs)
        }
    }
}

/// Brute-force satisfiability over all assignments to the free variables.
fn brute_force_sat(pool: &TermPool, t: TermId) -> bool {
    let vars = pool.free_vars(t);
    let n = vars.len();
    assert!(n <= 6, "too many vars for brute force");
    let total = 1u64 << (W as u64 * n as u64);
    for bits in 0..total {
        let mut env = HashMap::new();
        for (i, &v) in vars.iter().enumerate() {
            env.insert(v, (bits >> (W as u64 * i as u64)) & ((1 << W) - 1));
        }
        if pool.eval(t, &env) == Value::Bool(true) {
            return true;
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn solver_agrees_with_brute_force(ast in bool_strategy()) {
        let mut pool = TermPool::new();
        let f = build_bool(&mut pool, &ast);
        let expected = brute_force_sat(&pool, f);
        let (result, _) = smt_solve(&mut pool, f, &SolverConfig::default());
        prop_assert_eq!(result.is_sat(), expected, "formula: {}", pool.display(f));
        prop_assert_eq!(result.is_unsat(), !expected);
    }

    #[test]
    fn preprocessing_is_equisatisfiable(ast in bool_strategy()) {
        let mut pool = TermPool::new();
        let f = build_bool(&mut pool, &ast);
        let expected = brute_force_sat(&pool, f);
        let pre = preprocess(&mut pool, f);
        prop_assert!(pool.free_vars(pre.term).len() <= 6);
        let got = brute_force_sat(&pool, pre.term);
        prop_assert_eq!(got, expected, "orig: {} pre: {}", pool.display(f), pool.display(pre.term));
    }

    #[test]
    fn each_pass_is_equisatisfiable(ast in bool_strategy(), pass in 0..5usize) {
        let mut pool = TermPool::new();
        let f = build_bool(&mut pool, &ast);
        let expected = brute_force_sat(&pool, f);
        let out = match pass {
            0 => propagate_constants(&mut pool, f),
            1 => propagate_equalities(&mut pool, f),
            2 => gaussian_eliminate(&mut pool, f),
            3 => reduce_strength(&mut pool, f),
            _ => eliminate_unconstrained(&mut pool, f),
        };
        prop_assume!(pool.free_vars(out).len() <= 6);
        let got = brute_force_sat(&pool, out);
        prop_assert_eq!(got, expected,
            "pass {}: orig {} out {}", pass, pool.display(f), pool.display(out));
    }

    #[test]
    fn simplify_is_equivalent_not_just_equisat(ast in bool_strategy()) {
        // LFS rebuild must be a logical equivalence: same value under every
        // assignment (no fresh vars, no elimination).
        let mut pool = TermPool::new();
        let f = build_bool(&mut pool, &ast);
        let s = simplify(&mut pool, f);
        let vars = pool.free_vars(f);
        let total = 1u64 << (W as u64 * vars.len() as u64);
        for bits in 0..total {
            let mut env = HashMap::new();
            for (i, &v) in vars.iter().enumerate() {
                env.insert(v, (bits >> (W as u64 * i as u64)) & ((1 << W) - 1));
            }
            prop_assert_eq!(pool.eval(f, &env), pool.eval(s, &env));
        }
    }

    #[test]
    fn qe_preserves_satisfiability(ast in bool_strategy()) {
        let mut pool = TermPool::new();
        let f = build_bool(&mut pool, &ast);
        let expected = brute_force_sat(&pool, f);
        // Eliminate v0 if present.
        let vars = pool.free_vars(f);
        prop_assume!(!vars.is_empty());
        let target = vars[0];
        // Err(_) — blow-up — is a legal outcome; only Ok is checked.
        if let Ok(out) = quantifier_eliminate(&mut pool, f, &[target], 1_000_000) {
            prop_assert!(!pool.free_vars(out).contains(&target));
            prop_assume!(pool.free_vars(out).len() <= 6);
            let got = brute_force_sat(&pool, out);
            prop_assert_eq!(got, expected,
                "qe: orig {} out {}", pool.display(f), pool.display(out));
        }
    }

    #[test]
    fn eval_and_blast_agree_pointwise(ast in bool_strategy(), seed in 0u64..1u64<<(W as u64 * NVARS as u64)) {
        // Pin the variables to concrete values with equality conjuncts; the
        // solver must then return exactly the evaluator's verdict.
        let mut pool = TermPool::new();
        let f = build_bool(&mut pool, &ast);
        let vars = pool.free_vars(f);
        let mut env = HashMap::new();
        let mut parts = vec![f];
        for (i, &v) in vars.iter().enumerate() {
            let val = (seed >> (W as u64 * i as u64)) & ((1 << W) - 1);
            env.insert(v, val);
            let name = pool.var_name(v).to_owned();
            let vt = pool.var(&name, Sort::Bv(W));
            let k = pool.bv_const(val, W);
            let e = pool.eq(vt, k);
            parts.push(e);
        }
        let expected = pool.eval(f, &env) == Value::Bool(true);
        let pinned = pool.and(&parts);
        let (result, _) = smt_solve(&mut pool, pinned, &SolverConfig::default());
        prop_assert_eq!(result.is_sat(), expected);
    }
}

/// Deterministic regression corner cases distilled from the strategies.
#[test]
fn regression_division_corner_cases() {
    let mut pool = TermPool::new();
    let x = pool.var("x", Sort::Bv(W));
    let zero = pool.bv_const(0, W);
    let y = pool.var("y", Sort::Bv(W));
    // (x / y) with y possibly 0 — pinned both ways.
    let q = pool.bv(BvOp::Udiv, x, y);
    let ones = pool.bv_const(15, W);
    let qe = pool.eq(q, ones);
    let yz = pool.eq(y, zero);
    let f = pool.and2(qe, yz);
    assert!(brute_force_sat(&pool, f));
    let (r, _) = smt_solve(&mut pool, f, &SolverConfig::default());
    assert!(r.is_sat());
}

#[test]
fn regression_signed_shift_agreement() {
    let mut pool = TermPool::new();
    let x = pool.var("x", Sort::Bv(W));
    let c1 = pool.bv_const(1, W);
    let sh = pool.bv(BvOp::Ashr, x, c1);
    let c = pool.bv_const(0xC, W); // 0b1100 = -4 signed
    let e1 = pool.eq(sh, c);
    let expected = brute_force_sat(&pool, e1);
    let (r, _) = smt_solve(&mut pool, e1, &SolverConfig::default());
    assert_eq!(r.is_sat(), expected);
}

#[test]
fn regression_nested_ite_chain() {
    let mut pool = TermPool::new();
    let a = pool.var("a", Sort::Bv(W));
    let b = pool.var("b", Sort::Bv(W));
    let zero = pool.bv_const(0, W);
    let c = pool.ne(a, zero);
    let i1 = pool.ite(c, a, b);
    let i2 = pool.ite(c, i1, zero);
    let nonzero = pool.ne(i2, zero);
    let is_zero_a = pool.eq(a, zero);
    let f = pool.and2(nonzero, is_zero_a);
    // a = 0 forces c false, i2 = 0 → contradiction.
    assert!(!brute_force_sat(&pool, f));
    let (r, _) = smt_solve(&mut pool, f, &SolverConfig::default());
    assert!(r.is_unsat());
}

#[test]
fn regression_unconstrained_under_negation() {
    // ¬(x + t = d) with x singleton: still equisatisfiable after UVE
    // because x is existential regardless of polarity.
    let mut pool = TermPool::new();
    let x = pool.var("x", Sort::Bv(W));
    let t = pool.var("t", Sort::Bv(W));
    let d = pool.var("d", Sort::Bv(W));
    let sum = pool.bv(BvOp::Add, x, t);
    let e = pool.eq(sum, d);
    let f = pool.not(e);
    let expected = brute_force_sat(&pool, f);
    let out = eliminate_unconstrained(&mut pool, f);
    let got = match pool.kind(out) {
        TermKind::BoolConst(b) => *b,
        _ => brute_force_sat(&pool, out),
    };
    assert_eq!(got, expected);
}

//! Taint audit: the paper's two CWE checkers on a realistic snippet.
//!
//! ```sh
//! cargo run --example taint_audit
//! ```
//!
//! CWE-23 (relative path traversal): external input reaching `fopen`.
//! CWE-402 (private resource transmission): secrets reaching `sendmsg`.
//! Both are modeled as data-dependence paths whose feasibility Fusion
//! checks on the dependence graph — note how the sanitized path is
//! suppressed because its guard cannot be true.

use fusion::checkers::Checker;
use fusion::engine::{analyze, AnalysisOptions};
use fusion::graph_solver::FusionSolver;
use fusion_ir::{compile, CompileOptions};
use fusion_pdg::graph::Pdg;
use fusion_smt::solver::SolverConfig;

const PROGRAM: &str = r#"
extern fn gets();
extern fn fopen(path);
extern fn getpass();
extern fn sendmsg(data);
extern fn log_hash(x);

fn normalize(path) {
    // Pretend-normalization keeps the taint (string ops modeled as arithmetic).
    let trimmed = path + 1;
    return trimmed;
}

fn serve_request(flags) {
    let input = gets();
    let path = normalize(input);
    // CWE-23: reachable whenever the low bit of flags is zero.
    if ((flags & 1) == 0) {
        fopen(path);
    }
    return 0;
}

fn audit_password(flags) {
    let password = getpass();
    let digest = password * 31 + 7;
    // Safe-looking path that is actually impossible: 2x == 2y + 1.
    if (flags * 2 == flags * 2 + 1) {
        sendmsg(digest);       // CWE-402 candidate — infeasible guard
    }
    log_hash(digest);
    if (flags > 100) {
        sendmsg(password);     // CWE-402 — feasible
    }
    return 0;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = compile(PROGRAM, CompileOptions::default())?;
    let pdg = Pdg::build(&program);
    for checker in [Checker::cwe23(), Checker::cwe402()] {
        let mut engine = FusionSolver::new(SolverConfig::default());
        let run = analyze(
            &program,
            &pdg,
            &checker,
            &mut engine,
            &AnalysisOptions::new(),
        );
        println!(
            "{}: {} candidate(s) → {} reported, {} suppressed",
            checker.kind,
            run.candidates,
            run.reports.len(),
            run.suppressed
        );
        for report in &run.reports {
            let src_fn = program.name(program.func(report.source.func).name);
            println!(
                "  flow from `{}` crosses {} dependence-graph vertices to the sink",
                src_fn,
                report.path.nodes.len()
            );
        }
    }
    Ok(())
}

//! Property tests for the dominance machinery against naive definitions.

use fusion_ir::dominance::{control_dependence, DiGraph, DomTree};
use proptest::prelude::*;

const N: usize = 10;

/// Random digraph over `N` nodes; an extra node `N` acts as a sink/exit
/// that every node can reach (so post-dominance is well defined).
fn graph_strategy() -> impl Strategy<Value = DiGraph> {
    prop::collection::vec((0..N, 0..N), 0..30).prop_map(|edges| {
        let mut g = DiGraph::new(N + 1);
        for (a, b) in edges {
            g.add_edge(a, b);
        }
        for v in 0..N {
            g.add_edge(v, N); // everything can exit
        }
        g
    })
}

/// Naive dominance: `a` dominates `b` iff `b` is unreachable from the
/// entry once `a` is removed (and `b` was reachable to begin with).
fn reachable_avoiding(g: &DiGraph, from: usize, avoid: Option<usize>) -> Vec<bool> {
    let mut seen = vec![false; g.len()];
    if Some(from) == avoid {
        return seen;
    }
    let mut stack = vec![from];
    seen[from] = true;
    while let Some(n) = stack.pop() {
        for &s in g.succs(n) {
            if Some(s) != avoid && !seen[s] {
                seen[s] = true;
                stack.push(s);
            }
        }
    }
    seen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dominators_match_naive_definition(g in graph_strategy()) {
        let entry = 0usize;
        let dom = DomTree::compute(&g, entry);
        let reach = reachable_avoiding(&g, entry, None);
        #[allow(clippy::needless_range_loop)] // b is also a node id, not just an index
        for b in 0..g.len() {
            prop_assert_eq!(dom.is_reachable(b), reach[b], "reachability of {}", b);
            if !reach[b] {
                continue;
            }
            for a in 0..g.len() {
                let naive = if a == b {
                    true
                } else {
                    !reachable_avoiding(&g, entry, Some(a))[b]
                };
                prop_assert_eq!(
                    dom.dominates(a, b),
                    naive,
                    "dominates({}, {})", a, b
                );
            }
        }
    }

    #[test]
    fn control_dependence_sources_branch(g in graph_strategy()) {
        // Only nodes with >= 2 successors can be control-dependence
        // sources (FOW requires a successor the node does not
        // post-dominate *and* one it does).
        let exit = N;
        let cd = control_dependence(&g, exit);
        for (y, deps) in cd.iter().enumerate() {
            for &x in deps {
                prop_assert!(
                    g.succs(x).len() >= 2,
                    "cd({y}) contains non-branching {x}"
                );
            }
        }
    }

    #[test]
    fn idom_is_a_dominator_and_strict(g in graph_strategy()) {
        let dom = DomTree::compute(&g, 0);
        for n in 0..g.len() {
            if let Some(i) = dom.idom(n) {
                prop_assert!(dom.dominates(i, n));
                prop_assert_ne!(i, n);
            }
        }
    }
}

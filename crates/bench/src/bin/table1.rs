//! Table 1 — the cost of computing / solving / caching path conditions.
//!
//! Reproduces the complexity argument of §2 empirically: `foo` calls `bar`
//! `k` times; the conventional design's condition size grows as `O(kn + m)`
//! (the return-value condition of `bar` is instantiated at every call
//! site), while the fused design stays `O(n + m)` and caches nothing.
//!
//! The harness sweeps `k` and prints, per design: materialized instances,
//! condition size (DAG nodes), solve time, and retained (cached) bytes.

use fusion::cache::VerdictCache;
use fusion::checkers::Checker;
use fusion::engine::{analyze_with_cache, AnalysisOptions, FeasibilityEngine};
use fusion::graph_solver::{FusionSolver, UnoptimizedGraphSolver};
use fusion::memory::Category;
use fusion::propagate::{discover, PropagateOptions};
use fusion_baselines::PinpointEngine;
use fusion_bench::{banner, default_budget, fmt_secs};
use fusion_ir::{compile, CompileOptions};
use fusion_pdg::graph::Pdg;

/// Builds the Fig. 1 program with `foo` calling `bar` `k` times, `bar`
/// containing `n` chained statements.
fn program_source(k: usize, n: usize) -> String {
    let mut src = String::from("extern fn deref(p);\n");
    src.push_str("fn bar(x) {\n  let y0 = x * 2;\n");
    for i in 1..n {
        src.push_str(&format!("  let y{i} = y{} + 1;\n", i - 1));
    }
    src.push_str(&format!("  return y{};\n}}\n", n - 1));
    src.push_str("fn foo(");
    let params: Vec<String> = (0..k.max(2)).map(|i| format!("a{i}")).collect();
    src.push_str(&params.join(", "));
    src.push_str(") {\n  let pp = null;\n  let r = 1;\n");
    for i in 0..k {
        src.push_str(&format!("  let c{i} = bar(a{i});\n"));
    }
    // Condition uses all k call results.
    let mut cond = String::from("c0 < 1000");
    for i in 1..k {
        cond = format!("{cond} && c{i} < 1000");
    }
    src.push_str(&format!("  if ({cond}) {{ r = pp; }}\n"));
    src.push_str("  deref(r);\n  return 0;\n}\n");
    src
}

fn main() {
    banner(
        "Table 1: computing/solving/caching cost, conventional vs fused",
        "foo calls bar k times (bar has n = 40 statements); paper: O(kn+m) vs O(n+m)",
    );
    let n = 40;
    println!(
        "{:>4} | {:>22} | {:>22} | {:>22}",
        "k", "conventional (pinpoint)", "unopt graph (Alg.4)", "fusion (Alg.6)"
    );
    println!(
        "{:>4} | {:>8} {:>6} {:>6} | {:>8} {:>6} {:>6} | {:>8} {:>6} {:>6}",
        "", "nodes", "inst", "time", "nodes", "inst", "time", "nodes", "inst", "time"
    );
    for k in [1usize, 2, 4, 8, 16, 32] {
        let src = program_source(k, n);
        let program = compile(&src, CompileOptions::default()).expect("compile");
        let pdg = Pdg::build(&program);
        let cands = discover(
            &program,
            &pdg,
            &Checker::null_deref(),
            &PropagateOptions::default(),
        );
        assert_eq!(cands.len(), 1, "one null candidate expected");
        let paths = &cands[0].paths[..1];

        let mut row = format!("{k:>4} |");
        let mut cached = 0u64;
        for engine_id in 0..3 {
            let (outcome, retained) = match engine_id {
                0 => {
                    let mut e = PinpointEngine::new(default_budget());
                    let o = e.check_paths(&program, &pdg, paths);
                    let r = e.memory().current(Category::Summaries)
                        + e.memory().current(Category::PathConditions);
                    (o, r)
                }
                1 => {
                    let mut e = UnoptimizedGraphSolver::new(default_budget());
                    let o = e.check_paths(&program, &pdg, paths);
                    (o, 0)
                }
                _ => {
                    let mut e = FusionSolver::new(default_budget());
                    let o = e.check_paths(&program, &pdg, paths);
                    (o, 0)
                }
            };
            if engine_id == 0 {
                cached = retained;
            }
            row.push_str(&format!(
                " {:>8} {:>6} {:>6} |",
                outcome.condition_nodes,
                outcome.instances,
                fmt_secs(outcome.duration)
            ));
        }
        println!("{}", row.trim_end_matches('|'));
        if k == 32 {
            println!("\ncached bytes retained by the conventional design at k=32: {cached}");
            println!("cached bytes retained by either fused design:              0");
        }
    }
    println!("\nexpected shape: conventional nodes grow ~linearly in k (O(kn+m));");
    println!("fusion nodes stay flat (O(n+m)) with 1 instance (quick path).");

    // Verdict-cache behaviour on the k=32 subject: the first pass fills
    // the shared cache (all misses); a re-analysis of the same program is
    // answered entirely from it (all hits, zero solver queries).
    let src = program_source(32, n);
    let program = compile(&src, CompileOptions::default()).expect("compile");
    let pdg = Pdg::build(&program);
    let cache = VerdictCache::new();
    let mut engine = FusionSolver::new(default_budget());
    let opts = AnalysisOptions::new();
    let first = analyze_with_cache(
        &program,
        &pdg,
        &Checker::null_deref(),
        &mut engine,
        &opts,
        Some(&cache),
    );
    let second = analyze_with_cache(
        &program,
        &pdg,
        &Checker::null_deref(),
        &mut engine,
        &opts,
        Some(&cache),
    );
    println!(
        "\nverdict cache (k=32): first pass {:.0}% hit rate ({} miss), \
         re-analysis {:.0}% hit rate ({} hit, {} solver queries)",
        first.cache.hit_rate() * 100.0,
        first.cache.misses,
        second.cache.hit_rate() * 100.0,
        second.cache.hits,
        second.queries
    );
}

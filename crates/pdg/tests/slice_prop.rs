//! Property tests for slicing and translation over generated-ish programs
//! built from a seeded grammar of nested guards and helper calls.

use fusion_ir::{compile, CompileOptions, DefKind, Program};
use fusion_pdg::graph::{Pdg, Vertex};
use fusion_pdg::paths::{DependencePath, Link};
use fusion_pdg::slice::{compute_slice, ConstraintKind};
use fusion_pdg::translate::{translate, TranslateOptions};
use fusion_smt::term::TermPool;
use proptest::prelude::*;

/// Builds a program with `depth` nested guards around a null assignment,
/// each guard comparing helper-call results, plus `extra` unrelated code.
fn make_source(depth: usize, helpers: usize, extra: usize) -> String {
    let mut s = String::from("extern fn deref(p);\n");
    for h in 0..helpers.max(1) {
        s.push_str(&format!(
            "fn h{h}(x) {{ return x * {} + {h}; }}\n",
            2 * h + 1
        ));
    }
    s.push_str("fn f(a, b) {\n  let q = null;\n  let r = 1;\n");
    for e in 0..extra {
        s.push_str(&format!("  let u{e} = a + {e};\n"));
    }
    for d in 0..depth {
        let h = d % helpers.max(1);
        s.push_str(&format!("  if (h{h}(a) < h{h}(b) + {d}) {{\n"));
    }
    s.push_str("  r = q;\n");
    for _ in 0..depth {
        s.push_str("  }\n");
    }
    s.push_str("  deref(r);\n  return 0;\n}\n");
    s
}

/// The null → merges → deref-argument path, built structurally.
fn null_path(program: &Program) -> DependencePath {
    let f = program.func_by_name("f").expect("f exists");
    let null_def = f
        .defs
        .iter()
        .find(|d| matches!(d.kind, DefKind::Const { is_null: true, .. }))
        .expect("null source");
    let mut path = DependencePath::unit(Vertex::new(f.id, null_def.var));
    let mut cur = null_def.var;
    loop {
        let next = f.defs.iter().find(|d| match &d.kind {
            DefKind::Ite { then_v, else_v, .. } => *then_v == cur || *else_v == cur,
            DefKind::Call { args, .. } => args.contains(&cur),
            _ => false,
        });
        match next {
            Some(d) => {
                path.push(Link::Local, Vertex::new(f.id, d.var));
                cur = d.var;
                if matches!(d.kind, DefKind::Call { .. }) {
                    break; // reached deref
                }
            }
            None => break,
        }
    }
    path
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn slice_invariants(depth in 1usize..4, helpers in 1usize..3, extra in 0usize..6) {
        let src = make_source(depth, helpers, extra);
        let program = compile(&src, CompileOptions::default()).expect("compile");
        let pdg = Pdg::build(&program);
        let path = null_path(&program);
        let slice = compute_slice(&program, &pdg, std::slice::from_ref(&path));

        // 1. Linear size: never larger than the program.
        prop_assert!(slice.vertex_count() <= program.size());

        // 2. Every sliced vertex exists and every constraint points at a
        //    real branch/ite of the right function.
        for (fid, fs) in &slice.funcs {
            let func = program.func(*fid);
            for v in &fs.verts {
                prop_assert!(v.index() < func.len());
            }
        }
        for c in &slice.constraints {
            let func = program.func(c.func);
            match c.kind {
                ConstraintKind::BranchTrue { branch } => {
                    let is_branch = matches!(func.def(branch).kind, DefKind::Branch { .. });
                    prop_assert!(is_branch);
                }
                ConstraintKind::IteGate { ite, .. } => {
                    let is_ite = matches!(func.def(ite).kind, DefKind::Ite { .. });
                    prop_assert!(is_ite);
                }
            }
        }

        // 3. Path vertices are excluded from the slice (Example 3.3) —
        //    except calls, whose equations the translation needs.
        let fs = &slice.funcs[&path.nodes[0].func];
        for node in &path.nodes {
            let func = program.func(node.func);
            if !matches!(func.def(node.var).kind, DefKind::Call { .. }) {
                prop_assert!(!fs.verts.contains(&node.var), "path vertex {} sliced", node.var);
            }
        }

        // 4. Data closure: every sliced non-call vertex's operands are
        //    sliced too (within the same function).
        for (fid, fs) in &slice.funcs {
            let func = program.func(*fid);
            for &v in &fs.verts {
                match &func.def(v).kind {
                    DefKind::Call { .. } | DefKind::Param { .. } => {}
                    k => {
                        for op in k.operands() {
                            prop_assert!(
                                fs.verts.contains(&op),
                                "operand {op} of sliced {v} missing"
                            );
                        }
                    }
                }
            }
        }

        // 5. Translation: the nested helper guards are all satisfiable by
        //    construction (strict inequality with growing offsets), so the
        //    condition must be sat; instance count is helpers-cloned (2 per
        //    guard level for Alg. 4).
        let mut pool = TermPool::new();
        let tr = translate(&program, &slice, &mut pool, &TranslateOptions::default())
            .expect("within budget");
        prop_assert!(tr.instances >= 1);
        let (result, _) = fusion_smt::solver::smt_solve(
            &mut pool,
            tr.formula,
            &fusion_smt::solver::SolverConfig::default(),
        );
        prop_assert!(result.is_sat(), "guards h(a) < h(b) + d are satisfiable");
    }
}

//! Incremental solving sessions.
//!
//! A [`SolveSession`] amortizes the expensive tail of Algorithm 3 across a
//! *sequence* of related formulas: one persistent [`SatSolver`] accumulates
//! the Tseitin clauses (and learnt clauses) of every formula solved so far,
//! and one persistent [`SessionBlaster`] memoizes the `TermId → Lit`
//! translation so shared subterms bit-blast exactly once. Each query is then
//! an assumption-guarded incremental SAT call — the formula's root literal
//! *is* the assumption — instead of a cold solver construction.
//!
//! Soundness of reuse rests on two facts:
//!
//! 1. Every definitional clause emitted by the blaster is a full
//!    biconditional (gate output ⟺ gate function) or, for div/rem, a
//!    constraint with a solution for every input assignment. So the clauses
//!    of formula *A* never constrain the input variables of formula *B*:
//!    any model of *B* extends to the gate variables of *A* by evaluating
//!    the definitions.
//! 2. Learnt clauses produced under assumptions are consequences of the
//!    permanent clause database alone — first-UIP resolution never resolves
//!    on decision (assumption) literals, it only negates them into the
//!    learnt clause. Retaining them across queries is therefore sound.
//!
//! Note what is *not* cached: path conditions. The session caches encodings
//! of formulas it is explicitly asked to solve, which is exactly the
//! paper's §3.2.2 discipline — see DESIGN.md, "Incremental sessions".

use crate::bitblast::SessionBlaster;
use crate::preprocess::preprocess_ext;
use crate::sat::{SatBudget, SatOutcome, SatSolver};
use crate::solver::{Model, SatResult, SolveStats, SolverConfig};
use crate::term::{Sort, TermId, TermPool};
use std::collections::HashMap;
use std::time::Instant;

/// Cumulative statistics of a [`SolveSession`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionStats {
    /// Formulas solved through this session.
    pub queries: u64,
    /// Queries decided by preprocessing alone (no SAT call).
    pub preprocess_decided: u64,
    /// Definitional clauses pushed into the persistent solver so far.
    pub clauses_added: u64,
}

/// A persistent incremental solving context. See the module docs.
///
/// The session's memo tables are keyed by [`TermId`], so a session is tied
/// to one append-only [`TermPool`] epoch: callers that reset or swap their
/// pool must drop the session and start a new one.
#[derive(Debug)]
pub struct SolveSession {
    solver: SatSolver,
    blaster: SessionBlaster,
    /// Cumulative session statistics.
    pub stats: SessionStats,
}

impl Default for SolveSession {
    fn default() -> Self {
        SolveSession::new()
    }
}

impl SolveSession {
    /// Creates an empty session.
    pub fn new() -> SolveSession {
        SolveSession {
            solver: SatSolver::empty(),
            blaster: SessionBlaster::new(),
            stats: SessionStats::default(),
        }
    }

    /// Number of permanent (definitional) clauses in the session solver.
    pub fn permanent_clauses(&self) -> usize {
        self.solver.permanent_clauses()
    }

    /// Number of learnt clauses currently retained by the session solver.
    pub fn learnt_clauses(&self) -> usize {
        self.solver.learnt_clauses()
    }

    /// Total SAT conflicts across all queries in this session.
    pub fn conflicts(&self) -> u64 {
        self.solver.stats.conflicts
    }

    /// Number of CNF variables allocated so far.
    pub fn cnf_vars(&self) -> u32 {
        self.blaster.num_cnf_vars()
    }

    /// Solves `formula` incrementally. Mirrors
    /// [`crate::solver::smt_solve`] — preprocess, constant short-circuit,
    /// bit-blast, SAT — but the blast step reuses the session memo and the
    /// SAT step reuses the persistent solver, guarding the query with the
    /// formula's root literal as the sole assumption. Verdicts are identical
    /// to a fresh `smt_solve` whenever the budget does not expire (both
    /// procedures are complete decision procedures).
    ///
    /// # Panics
    ///
    /// Panics if `formula` is not boolean-sorted.
    pub fn solve_formula(
        &mut self,
        pool: &mut TermPool,
        formula: TermId,
        config: &SolverConfig,
    ) -> (SatResult, SolveStats) {
        assert_eq!(
            pool.sort(formula),
            Sort::Bool,
            "solve_formula: formula must be Bool"
        );
        self.stats.queries += 1;
        let start = Instant::now();
        let deadline = config.timeout.map(|t| start + t);
        let mut stats = SolveStats {
            size_before: pool.dag_size(formula),
            ..Default::default()
        };
        let processed = if config.skip_preprocessing {
            formula
        } else {
            let (pre, eg) = preprocess_ext(pool, formula, &config.egraph);
            stats.preprocess_rounds = pre.rounds;
            stats.egraph = eg;
            pre.term
        };
        stats.size_after = pool.dag_size(processed);
        if let Some(b) = pool.as_bool_const(processed) {
            stats.preprocess_decided = true;
            self.stats.preprocess_decided += 1;
            stats.duration = start.elapsed();
            let result = if b {
                SatResult::Sat(Model::default())
            } else {
                SatResult::Unsat
            };
            return (result, stats);
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            stats.duration = start.elapsed();
            return (SatResult::Unknown, stats);
        }
        // Incremental blast: only subterms not seen in this session emit
        // new gates; the root literal doubles as the activation assumption.
        let root = self.blaster.blast_root(pool, processed);
        let drained = self.blaster.drain_into(&mut self.solver);
        self.stats.clauses_added += drained as u64;
        stats.cnf_clauses = drained;
        let budget = SatBudget {
            max_conflicts: config.max_conflicts,
            deadline,
        };
        let before = self.solver.stats;
        let outcome = self.solver.solve_under_assumptions(&[root], budget);
        stats.sat_conflicts = self.solver.stats.conflicts - before.conflicts;
        stats.sat_decisions = self.solver.stats.decisions - before.decisions;
        stats.duration = start.elapsed();
        let result = match outcome {
            SatOutcome::Sat(model) => {
                let mut values = HashMap::new();
                for v in pool.free_vars(processed) {
                    if let Some(val) = self.blaster.map().value(v, &model) {
                        values.insert(v, val);
                    }
                }
                SatResult::Sat(Model::from_values(values))
            }
            SatOutcome::Unsat => SatResult::Unsat,
            SatOutcome::Unknown => SatResult::Unknown,
        };
        (result, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::smt_solve;
    use crate::term::{BvOp, BvPred, Value};

    #[test]
    fn session_matches_fresh_solver_on_sequence() {
        let mut pool = TermPool::new();
        let x = pool.var("x", Sort::Bv(8));
        let c3 = pool.bv_const(3, 8);
        let c10 = pool.bv_const(10, 8);
        let sum = pool.bv(BvOp::Add, x, c3);
        let f1 = pool.eq(sum, c10); // x = 7: sat
        let c11 = pool.bv_const(11, 8);
        let e2 = pool.eq(sum, c11);
        let f2 = pool.and2(f1, e2); // contradictory: unsat
        let sq = pool.bv(BvOp::Mul, x, x);
        let c4 = pool.bv_const(4, 8);
        let f3 = pool.eq(sq, c4); // sat

        let mut session = SolveSession::new();
        let cfg = SolverConfig::default();
        for &f in &[f1, f2, f3, f1] {
            let mut cold_pool = pool.clone();
            let (cold, _) = smt_solve(&mut cold_pool, f, &cfg);
            let (inc, _) = session.solve_formula(&mut pool, f, &cfg);
            assert_eq!(
                inc.is_sat(),
                cold.is_sat(),
                "sat disagreement on {f:?}: inc={inc:?} cold={cold:?}"
            );
            assert_eq!(inc.is_unsat(), cold.is_unsat(), "unsat disagreement");
            // NB: no model-eval check against the *original* formula here —
            // preprocessing may eliminate variables (see `Model` docs), in
            // which case the model only covers the surviving ones. The
            // skip_preprocessing tests below check models directly.
        }
        assert_eq!(session.stats.queries, 4);
    }

    #[test]
    fn unsat_under_assumption_does_not_poison_session() {
        let mut pool = TermPool::new();
        let x = pool.var("x", Sort::Bv(8));
        let c1 = pool.bv_const(1, 8);
        let c2 = pool.bv_const(2, 8);
        let e1 = pool.eq(x, c1);
        let e2 = pool.eq(x, c2);
        // Defeat the constant-propagation preprocessor with a nonlinear
        // wrapper so the contradiction reaches the SAT layer.
        let sq = pool.bv(BvOp::Mul, x, x);
        let sq1 = pool.eq(sq, c1);
        let contradiction = pool.and(&[e1, e2, sq1]);
        let cfg = SolverConfig {
            skip_preprocessing: true,
            ..Default::default()
        };
        let mut session = SolveSession::new();
        let (r1, _) = session.solve_formula(&mut pool, contradiction, &cfg);
        assert!(r1.is_unsat());
        // The same session must still answer Sat for a satisfiable query.
        let (r2, _) = session.solve_formula(&mut pool, e1, &cfg);
        assert!(r2.is_sat(), "session poisoned by prior unsat: {r2:?}");
        let (r3, _) = session.solve_formula(&mut pool, contradiction, &cfg);
        assert!(r3.is_unsat());
    }

    #[test]
    fn shared_subterms_blast_once() {
        let mut pool = TermPool::new();
        let x = pool.var("x", Sort::Bv(16));
        let y = pool.var("y", Sort::Bv(16));
        let prod = pool.bv(BvOp::Mul, x, y); // the expensive shared gate
        let c6 = pool.bv_const(6, 16);
        let f1 = pool.eq(prod, c6);
        let c12 = pool.bv_const(12, 16);
        let f2 = pool.eq(prod, c12);
        let cfg = SolverConfig {
            skip_preprocessing: true,
            ..Default::default()
        };
        let mut session = SolveSession::new();
        let (r1, s1) = session.solve_formula(&mut pool, f1, &cfg);
        assert!(r1.is_sat());
        let (r2, s2) = session.solve_formula(&mut pool, f2, &cfg);
        assert!(r2.is_sat());
        // Second query reuses the multiplier: it only emits the clauses of
        // the new equality, a small fraction of the first query's.
        assert!(
            s2.cnf_clauses * 4 < s1.cnf_clauses,
            "expected clause reuse: first={} second={}",
            s1.cnf_clauses,
            s2.cnf_clauses
        );
    }

    #[test]
    fn budget_exhaustion_returns_unknown_and_recovers() {
        let mut pool = TermPool::new();
        let x = pool.var("x", Sort::Bv(16));
        let y = pool.var("y", Sort::Bv(16));
        let prod = pool.bv(BvOp::Mul, x, y);
        let c = pool.bv_const(0x8001, 16);
        let two = pool.bv_const(2, 16);
        let f1 = pool.eq(prod, c);
        let xg = pool.pred(BvPred::Ult, two, x);
        let yg = pool.pred(BvPred::Ult, two, y);
        let hard = pool.and(&[f1, xg, yg]);
        let mut session = SolveSession::new();
        let tight = SolverConfig {
            max_conflicts: Some(1),
            skip_preprocessing: true,
            ..Default::default()
        };
        let (r1, _) = session.solve_formula(&mut pool, hard, &tight);
        // Either solved within one conflict or unknown — never wrong.
        if let SatResult::Sat(m) = &r1 {
            assert_eq!(m.eval(&pool, hard), Value::Bool(true));
        }
        // A later call with a real budget must not be starved by the
        // cumulative conflict count of the first call.
        let roomy = SolverConfig {
            skip_preprocessing: true,
            ..Default::default()
        };
        let (r2, _) = session.solve_formula(&mut pool, hard, &roomy);
        assert!(r2.is_sat() || r2.is_unsat(), "budget not per-call: {r2:?}");
    }
}

//! Checker specifications: what is a source, what is a sink, and through
//! which dependence edges a fact propagates.
//!
//! §4 of the paper: Fusion detects *null exceptions* and two taint issues —
//! relative path traversal (CWE-23, "from `input = gets(..)` to
//! `fopen(..)`") and transmission of private resources (CWE-402, "from
//! `password = getpass(..)` to `sendmsg(..)`"). Checkers are data: lists of
//! external source/sink function names plus a propagation policy, so new
//! checkers need no engine changes.

use fusion_ir::ssa::{DefKind, Function, Op, Program, VarId};

/// Which bug class a checker reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CheckKind {
    /// Null-pointer dereference.
    NullDeref,
    /// CWE-23 relative path traversal.
    Cwe23,
    /// CWE-402 transmission of private resources.
    Cwe402,
}

impl std::fmt::Display for CheckKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CheckKind::NullDeref => "null-deref",
            CheckKind::Cwe23 => "cwe-23",
            CheckKind::Cwe402 => "cwe-402",
        };
        f.write_str(s)
    }
}

/// A checker: sources, sinks, and propagation policy.
#[derive(Debug, Clone)]
pub struct Checker {
    /// The reported bug class.
    pub kind: CheckKind,
    /// Names of external functions whose results are sources (taint
    /// checkers; empty for the null checker, which seeds from `null`
    /// constants).
    pub source_fns: Vec<String>,
    /// Names of external functions whose arguments are sinks.
    pub sink_fns: Vec<String>,
    /// Whether the fact survives arithmetic (`taint(a) → taint(a + 1)`).
    /// Null-ness does not; taint does.
    pub through_binary: bool,
    /// Whether the fact flows through external library calls
    /// (`taint(x) → taint(lib(x))`, the empty-function rule). Null-ness
    /// does not; taint does.
    pub through_extern: bool,
    /// Names of external functions that *kill* the fact: a value passing
    /// through them comes out clean (e.g. `realpath` for CWE-23, `hash`
    /// for CWE-402).
    pub sanitizer_fns: Vec<String>,
}

impl Checker {
    /// The null-dereference checker: sources are `null` literals; sinks are
    /// arguments of `deref`.
    pub fn null_deref() -> Checker {
        Checker {
            kind: CheckKind::NullDeref,
            source_fns: Vec::new(),
            sink_fns: vec!["deref".into()],
            through_binary: false,
            through_extern: false,
            sanitizer_fns: Vec::new(),
        }
    }

    /// CWE-23: external input reaching file-system operations.
    pub fn cwe23() -> Checker {
        Checker {
            kind: CheckKind::Cwe23,
            source_fns: vec![
                "gets".into(),
                "recv".into(),
                "read_input".into(),
                "getenv".into(),
            ],
            sink_fns: vec!["fopen".into(), "open_file".into(), "remove".into()],
            through_binary: true,
            through_extern: true,
            sanitizer_fns: vec!["realpath".into(), "basename".into()],
        }
    }

    /// CWE-402: private data reaching I/O operations.
    pub fn cwe402() -> Checker {
        Checker {
            kind: CheckKind::Cwe402,
            source_fns: vec!["getpass".into(), "read_key".into(), "load_secret".into()],
            sink_fns: vec!["sendmsg".into(), "send".into(), "write_log".into()],
            through_binary: true,
            through_extern: true,
            sanitizer_fns: vec!["hash".into(), "redact".into()],
        }
    }

    /// Whether `def` in `func` is a source for this checker.
    pub fn is_source(&self, program: &Program, func: &Function, var: VarId) -> bool {
        match &func.def(var).kind {
            DefKind::Const { is_null: true, .. } => self.kind == CheckKind::NullDeref,
            DefKind::Call { callee, .. } => {
                let callee_f = program.func(*callee);
                callee_f.is_extern
                    && self
                        .source_fns
                        .iter()
                        .any(|n| n == program.name(callee_f.name))
            }
            _ => false,
        }
    }

    /// Whether `def` is a call to a sanitizer: the fact does not survive
    /// passing through it.
    pub fn is_sanitizer(&self, program: &Program, func: &Function, var: VarId) -> bool {
        match &func.def(var).kind {
            DefKind::Call { callee, .. } => {
                let callee_f = program.func(*callee);
                callee_f.is_extern
                    && self
                        .sanitizer_fns
                        .iter()
                        .any(|n| n == program.name(callee_f.name))
            }
            _ => false,
        }
    }

    /// Whether `def` is a sink call; facts arriving in any argument
    /// position trigger a report.
    pub fn is_sink(&self, program: &Program, func: &Function, var: VarId) -> bool {
        match &func.def(var).kind {
            DefKind::Call { callee, .. } => {
                let callee_f = program.func(*callee);
                callee_f.is_extern
                    && self
                        .sink_fns
                        .iter()
                        .any(|n| n == program.name(callee_f.name))
            }
            _ => false,
        }
    }

    /// Whether the fact propagates from operand slot `slot` of `def` to the
    /// value `def` produces (the transfer-function policy of Algorithm 1).
    pub fn propagates_through(&self, func: &Function, user: VarId, slot: usize) -> bool {
        match &func.def(user).kind {
            DefKind::Copy { .. } | DefKind::Return { .. } => true,
            // Through either data input of an ite, not its condition.
            DefKind::Ite { .. } => slot == 1 || slot == 2,
            DefKind::Binary { op, .. } => {
                // Even for taint, comparisons produce a 0/1 word, not the
                // tainted datum.
                self.through_binary && !op.is_predicate()
            }
            // Branch conditions consume the value; nothing flows on.
            DefKind::Branch { .. } => false,
            // Call arguments are handled by the inter-procedural edges.
            DefKind::Call { .. } => true,
            DefKind::Param { .. } | DefKind::Const { .. } => false,
        }
    }

    /// Whether arithmetic that *discards* the operand still counts; used to
    /// prune silly flows like `x - x`.
    pub fn keeps_fact(&self, func: &Function, user: VarId) -> bool {
        if let DefKind::Binary {
            op: Op::Sub,
            lhs,
            rhs,
        } = func.def(user).kind
        {
            if lhs == rhs {
                return false;
            }
        }
        true
    }
}

/// The three checkers of the paper's evaluation.
pub fn default_checkers() -> Vec<Checker> {
    vec![Checker::null_deref(), Checker::cwe23(), Checker::cwe402()]
}

/// The index of a checker within a [`CheckerSet`] — the client identity a
/// fused multi-client pass carries on every work item and candidate so
/// results can be split back per checker deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CheckerId(pub usize);

impl std::fmt::Display for CheckerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// An ordered set of checkers analyzed in **one fused pass** (§4 runs all
/// three clients over one shared PDG). The order is canonical: discovery
/// fans out over `(checker, source)` work items in `(checker_idx,
/// source_idx)` order, so per-checker results are byte-identical to
/// running each checker alone, at any shard or thread count.
#[derive(Debug, Clone)]
pub struct CheckerSet {
    checkers: Vec<Checker>,
}

impl CheckerSet {
    /// A set over the given checkers, in the given (canonical) order.
    pub fn new(checkers: Vec<Checker>) -> CheckerSet {
        CheckerSet { checkers }
    }

    /// A singleton set — how the single-checker `analyze*` entry points
    /// ride the fused pipeline.
    pub fn single(checker: Checker) -> CheckerSet {
        CheckerSet {
            checkers: vec![checker],
        }
    }

    /// The paper's three clients ([`default_checkers`]).
    pub fn all() -> CheckerSet {
        CheckerSet {
            checkers: default_checkers(),
        }
    }

    /// Number of checkers in the set.
    pub fn len(&self) -> usize {
        self.checkers.len()
    }

    /// Whether the set holds no checkers.
    pub fn is_empty(&self) -> bool {
        self.checkers.is_empty()
    }

    /// The checker with the given id.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range for this set.
    pub fn get(&self, id: CheckerId) -> &Checker {
        &self.checkers[id.0]
    }

    /// The checkers in canonical order.
    pub fn checkers(&self) -> &[Checker] {
        &self.checkers
    }

    /// Iterates `(id, checker)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (CheckerId, &Checker)> {
        self.checkers
            .iter()
            .enumerate()
            .map(|(i, c)| (CheckerId(i), c))
    }
}

impl From<Vec<Checker>> for CheckerSet {
    fn from(checkers: Vec<Checker>) -> CheckerSet {
        CheckerSet::new(checkers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_ir::{compile, CompileOptions};

    #[test]
    fn null_checker_finds_sources_and_sinks() {
        let p = compile(
            "extern fn deref(p); fn f() { let q = null; deref(q); return 0; }",
            CompileOptions::default(),
        )
        .unwrap();
        let c = Checker::null_deref();
        let f = p.func_by_name("f").unwrap();
        let sources: Vec<_> = f
            .defs
            .iter()
            .filter(|d| c.is_source(&p, f, d.var))
            .collect();
        let sinks: Vec<_> = f.defs.iter().filter(|d| c.is_sink(&p, f, d.var)).collect();
        assert_eq!(sources.len(), 1);
        assert_eq!(sinks.len(), 1);
    }

    #[test]
    fn taint_checker_uses_function_names() {
        let p = compile(
            "extern fn gets(); extern fn fopen(path); extern fn misc(x);\n\
             fn f() { let input = gets(); fopen(input); misc(input); return 0; }",
            CompileOptions::default(),
        )
        .unwrap();
        let c = Checker::cwe23();
        let f = p.func_by_name("f").unwrap();
        assert_eq!(
            f.defs.iter().filter(|d| c.is_source(&p, f, d.var)).count(),
            1
        );
        assert_eq!(f.defs.iter().filter(|d| c.is_sink(&p, f, d.var)).count(), 1);
    }

    #[test]
    fn sanitizers_are_recognized() {
        let p = compile(
            "extern fn gets(); extern fn realpath(x); extern fn fopen(p);\n\
             fn f() { let i = gets(); let c = realpath(i); fopen(c); return 0; }",
            CompileOptions::default(),
        )
        .unwrap();
        let c = Checker::cwe23();
        let f = p.func_by_name("f").unwrap();
        assert_eq!(
            f.defs
                .iter()
                .filter(|d| c.is_sanitizer(&p, f, d.var))
                .count(),
            1
        );
    }

    #[test]
    fn null_does_not_flow_through_arithmetic_but_taint_does() {
        let p = compile(
            "fn f(a, b) { let x = a + b; return x; }",
            CompileOptions::default(),
        )
        .unwrap();
        let f = p.func_by_name("f").unwrap();
        let add = f
            .defs
            .iter()
            .find(|d| matches!(d.kind, DefKind::Binary { op: Op::Add, .. }))
            .unwrap();
        assert!(!Checker::null_deref().propagates_through(f, add.var, 0));
        assert!(Checker::cwe23().propagates_through(f, add.var, 0));
    }

    #[test]
    fn checker_set_orders_and_indexes() {
        let set = CheckerSet::all();
        assert_eq!(set.len(), 3);
        assert!(!set.is_empty());
        assert_eq!(set.get(CheckerId(0)).kind, CheckKind::NullDeref);
        assert_eq!(set.get(CheckerId(1)).kind, CheckKind::Cwe23);
        assert_eq!(set.get(CheckerId(2)).kind, CheckKind::Cwe402);
        let ids: Vec<CheckerId> = set.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![CheckerId(0), CheckerId(1), CheckerId(2)]);
        let single = CheckerSet::single(Checker::cwe23());
        assert_eq!(single.len(), 1);
        assert_eq!(single.get(CheckerId(0)).kind, CheckKind::Cwe23);
        let from: CheckerSet = vec![Checker::cwe402()].into();
        assert_eq!(from.checkers()[0].kind, CheckKind::Cwe402);
        assert_eq!(CheckerId(2).to_string(), "c2");
    }

    #[test]
    fn nothing_flows_through_predicates() {
        let p = compile(
            "fn f(a, b) { let x = a < b; return x; }",
            CompileOptions::default(),
        )
        .unwrap();
        let f = p.func_by_name("f").unwrap();
        let cmp = f
            .defs
            .iter()
            .find(|d| matches!(d.kind, DefKind::Binary { op: Op::Slt, .. }))
            .unwrap();
        assert!(!Checker::cwe23().propagates_through(f, cmp.var, 0));
    }
}

//! Property tests for the CDCL SAT solver against exhaustive enumeration.

use fusion_smt::cnf::{BVar, Cnf, Lit};
use fusion_smt::sat::{solve_cnf, SatBudget, SatOutcome};
use proptest::prelude::*;

const MAX_VARS: u32 = 10;

fn cnf_strategy() -> impl Strategy<Value = Cnf> {
    // Clauses of 1..4 literals over up to MAX_VARS variables.
    let clause = prop::collection::vec((0..MAX_VARS, any::<bool>()), 1..4);
    prop::collection::vec(clause, 0..40).prop_map(|clauses| {
        let mut cnf = Cnf::new();
        for _ in 0..MAX_VARS {
            cnf.fresh();
        }
        for c in clauses {
            cnf.add(
                c.into_iter()
                    .map(|(v, pos)| Lit::new(BVar(v), pos))
                    .collect(),
            );
        }
        cnf
    })
}

fn brute_force(cnf: &Cnf) -> bool {
    let n = cnf.num_vars;
    for bits in 0..(1u32 << n) {
        let assign: Vec<bool> = (0..n).map(|i| (bits >> i) & 1 == 1).collect();
        if cnf.eval(&assign) {
            return true;
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cdcl_agrees_with_enumeration(cnf in cnf_strategy()) {
        let expected = brute_force(&cnf);
        match solve_cnf(&cnf, SatBudget::default()) {
            SatOutcome::Sat(model) => {
                prop_assert!(expected, "solver said sat, enumeration says unsat");
                prop_assert!(cnf.eval(&model), "returned model must satisfy the formula");
            }
            SatOutcome::Unsat => prop_assert!(!expected, "solver said unsat, witness exists"),
            SatOutcome::Unknown => prop_assert!(false, "no budget was set"),
        }
    }

    #[test]
    fn adding_clauses_never_makes_unsat_sat(cnf in cnf_strategy(), extra in prop::collection::vec((0..MAX_VARS, any::<bool>()), 1..3)) {
        // Monotonicity: if cnf is unsat, cnf + extra clause stays unsat.
        let base = solve_cnf(&cnf, SatBudget::default());
        if matches!(base, SatOutcome::Unsat) {
            let mut stronger = cnf.clone();
            stronger.add(extra.into_iter().map(|(v, pos)| Lit::new(BVar(v), pos)).collect());
            prop_assert!(matches!(solve_cnf(&stronger, SatBudget::default()), SatOutcome::Unsat));
        }
    }
}

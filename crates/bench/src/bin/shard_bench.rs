//! `shard_bench` — the partitioned out-of-core scan perf harness
//! (`BENCH_shard.json`).
//!
//! Measures the tentpole claim of call-graph sharding: splitting a
//! multi-module program into K shards, analyzing each against an
//! on-disk snapshot with only its call-graph closure materialized, and
//! replaying the merged outcomes bounds per-shard peak memory below the
//! whole-program peak — while the merged report stays byte-identical to
//! the unsharded streaming pipeline and the merge replays with zero
//! solver queries.
//!
//! Corpus: a deterministic multi-module subject (`generate_multi`) of
//! eight disconnected components sharing only extern declarations, so
//! shard closures are genuinely smaller than the program.
//!
//! Output: `BENCH_shard.json` (override with `FUSION_BENCH_OUT`). With
//! `FUSION_BENCH_ENFORCE=1` the process exits non-zero unless, at K=4
//! and 4 threads, (a) every per-shard peak is strictly below the
//! unsharded peak, (b) the merged report is byte-identical, and (c) the
//! sharded wall stays within 115% of the unsharded wall — the CI
//! regression gate.

use fusion::cache::VerdictCache;
use fusion::checkers::CheckerSet;
use fusion::engine::{
    analyze_multi_streaming_with_cache, AnalysisOptions, FeasibilityEngine, MultiAnalysisRun,
};
use fusion::graph_solver::FusionSolver;
use fusion::shard::analyze_sharded;
use fusion::slice_cache::SliceCache;
use fusion_bench::{banner, default_budget, fmt_mib, report, scale_from_env};
use fusion_ir::{compile, CompileOptions, Program};
use fusion_pdg::graph::Pdg;
use fusion_workloads::{generate_multi, GenConfig};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Thread count every run uses and the CI gate is applied at.
const GATE_THREADS: usize = 4;
/// Shard count the CI gate is applied at.
const GATE_K: usize = 4;
/// Wall-clock measurements take the best of this many repetitions.
const ITERS: usize = 3;
/// Disconnected modules in the subject — the memory win exists because
/// a shard's closure holds only the modules it owns.
const MODULES: usize = 8;
/// Shard counts measured and recorded.
const K_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The multi-module subject: MODULES independent generated programs
/// merged with per-module name prefixes, sharing only externs.
fn subject(scale: f64) -> String {
    let per_module = ((6_000.0 * scale) as usize).clamp(4, 48);
    // Solver-heavy seeding: per-shard analysis duplicates discovery
    // work (each shard rediscovers its closure, and the merge replays
    // discovery once more), so the corpus leans on seeded candidates —
    // where the wall is solving, not graph walking — to measure the
    // claim at a realistic solve/discovery ratio.
    let cfg = GenConfig {
        seed: 0x5AAD,
        functions: per_module,
        stmts_per_function: 60,
        branch_density: 0.3,
        null_feasible: 4,
        null_infeasible: 12,
        cwe23_feasible: 2,
        cwe23_infeasible: 6,
        cwe402_feasible: 2,
        cwe402_infeasible: 6,
        ..Default::default()
    };
    generate_multi(&cfg, MODULES)
}

fn compile_src(src: &str) -> Program {
    compile(src, CompileOptions::default()).expect("subject compiles")
}

fn factory() -> impl Fn() -> Box<dyn FeasibilityEngine> + Sync {
    let budget = default_budget();
    move || Box::new(FusionSolver::new(budget)) as Box<dyn FeasibilityEngine>
}

fn options() -> AnalysisOptions {
    AnalysisOptions::new().with_slice_cache(Arc::new(SliceCache::new()))
}

type ReportKey = (
    String,
    fusion_pdg::graph::Vertex,
    fusion_pdg::graph::Vertex,
    fusion::engine::Feasibility,
    Vec<fusion_pdg::graph::Vertex>,
);

fn keys(run: &MultiAnalysisRun) -> Vec<ReportKey> {
    run.checkers
        .iter()
        .flat_map(|b| {
            b.reports.iter().map(move |r| {
                (
                    b.kind.to_string(),
                    r.source,
                    r.sink,
                    r.verdict,
                    r.path.nodes.clone(),
                )
            })
        })
        .collect()
}

/// One shard count's best-of-ITERS measurements.
struct Row {
    k: usize,
    wall_us: u128,
    max_shard_peak: u64,
    shard_peaks: Vec<u64>,
    merge_queries: usize,
    summaries_exported: u64,
    summaries_imported: u64,
    snapshot_bytes_written: u64,
    snapshot_bytes_read: u64,
    reports_identical: bool,
}

fn main() {
    banner(
        "shard_bench: K-way partitioned scan vs unsharded streaming",
        "on-disk snapshots, closure-only materialization; reports asserted identical",
    );
    let scale = scale_from_env();
    let src = subject(scale);
    let program = compile_src(&src);
    let set = CheckerSet::new(fusion::checkers::default_checkers());
    let make = factory();
    println!(
        "  subject: {} modules, {} functions, {} call sites",
        MODULES,
        program.functions.len(),
        program.call_sites.len()
    );

    // Interleaved rounds: every repetition measures the unsharded
    // baseline and every K back to back, so machine drift hits all
    // configurations equally; each config keeps its best wall. Fresh
    // caches per measurement — every run is cold.
    let dir = std::env::temp_dir().join(format!("fusion-shard-bench-{}", std::process::id()));
    let mut base_wall = u128::MAX;
    let mut base_run = None;
    let mut sharded_walls = [u128::MAX; K_COUNTS.len()];
    let mut sharded_runs: Vec<Option<fusion::shard::ShardedRun>> =
        K_COUNTS.iter().map(|_| None).collect();
    for _ in 0..ITERS {
        let cache = VerdictCache::new();
        // The PDG build is inside the timer: an unsharded scan pays it,
        // exactly as the sharded pipeline pays its snapshot + replay.
        let t = Instant::now();
        let pdg = Pdg::build(&program);
        let run = analyze_multi_streaming_with_cache(
            &program,
            &pdg,
            &set,
            &make,
            GATE_THREADS,
            &options(),
            Some(&cache),
        );
        base_wall = base_wall.min(t.elapsed().as_micros());
        base_run = Some(run);
        for (ki, &k) in K_COUNTS.iter().enumerate() {
            let cache = VerdictCache::new();
            let t = Instant::now();
            let sharded = analyze_sharded(
                &program,
                &set,
                &make,
                GATE_THREADS,
                &options(),
                Some(&cache),
                k,
                Some(dir.as_path()),
            )
            .expect("sharded scan");
            sharded_walls[ki] = sharded_walls[ki].min(t.elapsed().as_micros());
            sharded_runs[ki] = Some(sharded);
        }
    }
    let base_run = base_run.expect("ITERS > 0");
    let base_keys = keys(&base_run);
    println!(
        "  unsharded: {:>8}us  peak {:>10}  {} findings  {} queries",
        base_wall,
        fmt_mib(base_run.peak_memory),
        base_keys.len(),
        base_run.queries
    );

    let mut rows: Vec<Row> = Vec::new();
    for (ki, &k) in K_COUNTS.iter().enumerate() {
        let sharded = sharded_runs[ki].take().expect("ITERS > 0");
        let best_wall = sharded_walls[ki];
        let max_shard_peak = sharded.shard_peaks.iter().copied().max().unwrap_or(0);
        let row = Row {
            k,
            wall_us: best_wall,
            max_shard_peak,
            shard_peaks: sharded.shard_peaks.clone(),
            merge_queries: sharded.run.queries,
            summaries_exported: sharded.run.stages.summaries_exported,
            summaries_imported: sharded.run.stages.summaries_imported,
            snapshot_bytes_written: sharded.run.stages.snapshot_bytes_written,
            snapshot_bytes_read: sharded.run.stages.snapshot_bytes_read,
            reports_identical: keys(&sharded.run) == base_keys,
        };
        println!(
            "  k={:<2} wall {:>8}us ({:>5.1}% of unsharded)  max shard peak {:>10} \
             ({:>5.1}% of unsharded)  {} exported / {} imported  merge queries {}",
            k,
            row.wall_us,
            100.0 * row.wall_us as f64 / base_wall.max(1) as f64,
            fmt_mib(max_shard_peak),
            100.0 * max_shard_peak as f64 / base_run.peak_memory.max(1) as f64,
            row.summaries_exported,
            row.summaries_imported,
            row.merge_queries,
        );
        rows.push(row);
    }
    let _ = std::fs::remove_dir_all(&dir);

    let mut per_k = String::new();
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            per_k.push_str(",\n    ");
        }
        let peaks = row
            .shard_peaks
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let _ = write!(
            per_k,
            "{{\"k\": {}, \"wall_us\": {}, \"wall_pct_of_unsharded\": {:.2}, \
             \"max_shard_peak_bytes\": {}, \"shard_peaks\": [{peaks}], \
             \"merge_queries\": {}, \"summaries_exported\": {}, \"summaries_imported\": {}, \
             \"snapshot_bytes_written\": {}, \"snapshot_bytes_read\": {}, \
             \"reports_identical\": {}}}",
            row.k,
            row.wall_us,
            100.0 * row.wall_us as f64 / base_wall.max(1) as f64,
            row.max_shard_peak,
            row.merge_queries,
            row.summaries_exported,
            row.summaries_imported,
            row.snapshot_bytes_written,
            row.snapshot_bytes_read,
            row.reports_identical,
        );
    }

    let gate_row = rows
        .iter()
        .find(|r| r.k == GATE_K)
        .expect("gate shard count is measured");
    let all_identical = rows.iter().all(|r| r.reports_identical);
    let json = format!(
        "{{\n  \"scale\": {scale},\n  \"threads\": {GATE_THREADS},\n  \"iters\": {ITERS},\n  \
         \"modules\": {MODULES},\n  \"functions\": {},\n  \
         \"unsharded_wall_us\": {base_wall},\n  \"unsharded_peak_bytes\": {},\n  \
         \"unsharded_queries\": {},\n  \"findings\": {},\n  \
         \"per_k\": [\n    {per_k}\n  ],\n  \
         \"reports_identical\": {all_identical}\n}}\n",
        program.functions.len(),
        base_run.peak_memory,
        base_run.queries,
        base_keys.len(),
    );
    report::write("BENCH_shard.json", &json);

    // CI gates at K=GATE_K, GATE_THREADS threads: identical reports,
    // every per-shard peak strictly below the unsharded peak, wall
    // within 115%.
    let gate = report::Gate::from_env();
    gate.require(all_identical, || {
        "sharded reports diverged from the unsharded streaming scan".into()
    });
    gate.require(
        gate_row
            .shard_peaks
            .iter()
            .all(|&p| p < base_run.peak_memory),
        || {
            format!(
                "a shard peaked at {} bytes, not below the unsharded peak {} at k={GATE_K}",
                gate_row.max_shard_peak, base_run.peak_memory
            )
        },
    );
    gate.require(gate_row.wall_us * 100 <= base_wall * 115, || {
        format!(
            "sharded wall {}us exceeds 115% of unsharded wall {base_wall}us at k={GATE_K}",
            gate_row.wall_us
        )
    });
    gate.pass("per-shard peaks below unsharded, identical reports, wall within 115%");
}

//! Call graph construction and recursion unrolling.
//!
//! The paper (§4): "Recursive calls are handled as loops by unrolling each
//! cycle twice on the call graph." [`unroll_recursion`] implements that
//! transformation on the surface AST: every function in a cyclic strongly
//! connected component is cloned per unroll depth, intra-component calls are
//! redirected one level deeper, and the deepest level calls an external stub
//! (to which the empty-function rule of Fig. 5 applies).

use crate::ast::{Expr, Function, Program, Stmt};
use crate::interner::{Interner, Symbol};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A call-graph error: a call to an unknown function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallGraphError {
    /// The caller function's name.
    pub caller: String,
    /// The unknown callee's name.
    pub callee: String,
}

impl fmt::Display for CallGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "function `{}` calls unknown function `{}`",
            self.caller, self.callee
        )
    }
}

impl Error for CallGraphError {}

/// The surface-level call graph: `edges[i]` lists the indices of functions
/// that function `i` may call (deduplicated).
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// Per-caller callee index lists.
    pub edges: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Builds the call graph of a surface program.
    ///
    /// # Errors
    ///
    /// Returns [`CallGraphError`] if a call target does not exist.
    pub fn build(program: &Program, interner: &Interner) -> Result<CallGraph, CallGraphError> {
        let by_name: HashMap<Symbol, usize> = program
            .functions
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name, i))
            .collect();
        let mut edges = vec![Vec::new(); program.functions.len()];
        for (i, f) in program.functions.iter().enumerate() {
            let mut callees = Vec::new();
            collect_calls_stmts(&f.body, &mut callees);
            for c in callees {
                match by_name.get(&c) {
                    Some(&j) => edges[i].push(j),
                    None => {
                        return Err(CallGraphError {
                            caller: interner.resolve(f.name).to_owned(),
                            callee: interner.resolve(c).to_owned(),
                        })
                    }
                }
            }
            edges[i].sort_unstable();
            edges[i].dedup();
        }
        Ok(CallGraph { edges })
    }

    /// Strongly connected components in reverse topological order
    /// (Tarjan's algorithm, iterative).
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        let n = self.edges.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut sccs = Vec::new();
        let mut counter = 0usize;
        // Iterative Tarjan: frames of (node, next edge index).
        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
            index[root] = counter;
            low[root] = counter;
            counter += 1;
            stack.push(root);
            on_stack[root] = true;
            while let Some(&mut (v, ref mut ei)) = frames.last_mut() {
                if *ei < self.edges[v].len() {
                    let w = self.edges[v][*ei];
                    *ei += 1;
                    if index[w] == usize::MAX {
                        index[w] = counter;
                        low[w] = counter;
                        counter += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    frames.pop();
                    if let Some(&mut (parent, _)) = frames.last_mut() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack");
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        sccs.push(comp);
                    }
                }
            }
        }
        sccs
    }

    /// Whether function `i` participates in a cycle (including self-loops).
    pub fn cyclic_members(&self) -> Vec<bool> {
        let mut cyclic = vec![false; self.edges.len()];
        for scc in self.sccs() {
            if scc.len() > 1 {
                for &m in &scc {
                    cyclic[m] = true;
                }
            } else {
                let m = scc[0];
                if self.edges[m].contains(&m) {
                    cyclic[m] = true;
                }
            }
        }
        cyclic
    }
}

fn collect_calls_stmts(stmts: &[Stmt], out: &mut Vec<Symbol>) {
    crate::ast::walk_stmts(stmts, &mut |s| match s {
        Stmt::Let(_, e) | Stmt::Assign(_, e) | Stmt::Return(e) | Stmt::Expr(e) => {
            collect_calls_expr(e, out)
        }
        Stmt::If(e, _, _) | Stmt::While(e, _) => collect_calls_expr(e, out),
    });
}

fn collect_calls_expr(e: &Expr, out: &mut Vec<Symbol>) {
    e.walk(&mut |e| {
        if let Expr::Call(name, _) = e {
            out.push(*name);
        }
    });
}

fn rewrite_calls_stmts(stmts: &mut [Stmt], map: &HashMap<Symbol, Symbol>) {
    for s in stmts {
        match s {
            Stmt::Let(_, e) | Stmt::Assign(_, e) | Stmt::Return(e) | Stmt::Expr(e) => {
                rewrite_calls_expr(e, map)
            }
            Stmt::If(e, t, el) => {
                rewrite_calls_expr(e, map);
                rewrite_calls_stmts(t, map);
                rewrite_calls_stmts(el, map);
            }
            Stmt::While(e, b) => {
                rewrite_calls_expr(e, map);
                rewrite_calls_stmts(b, map);
            }
        }
    }
}

fn rewrite_calls_expr(e: &mut Expr, map: &HashMap<Symbol, Symbol>) {
    match e {
        Expr::Call(name, args) => {
            if let Some(&new) = map.get(name) {
                *name = new;
            }
            for a in args {
                rewrite_calls_expr(a, map);
            }
        }
        Expr::Unary(_, inner) => rewrite_calls_expr(inner, map),
        Expr::Binary(_, a, b) => {
            rewrite_calls_expr(a, map);
            rewrite_calls_expr(b, map);
        }
        Expr::Int(_) | Expr::Null | Expr::Var(_) => {}
    }
}

/// Unrolls every call-graph cycle `depth` times (the paper uses 2).
///
/// Each function in a cyclic SCC gains clones `f#1 .. f#depth`; calls that
/// stay within the SCC are redirected from level `d` to level `d + 1`, and
/// at the deepest level to a fresh external stub `f#stub`, cutting the
/// cycle. The resulting program has an acyclic call graph.
///
/// # Errors
///
/// Returns [`CallGraphError`] if the program calls unknown functions.
pub fn unroll_recursion(
    program: &Program,
    interner: &mut Interner,
    depth: usize,
) -> Result<Program, CallGraphError> {
    let cg = CallGraph::build(program, interner)?;
    let cyclic = cg.cyclic_members();
    if !cyclic.iter().any(|&c| c) {
        return Ok(program.clone());
    }
    // Which SCC does each function belong to?
    let mut scc_of = vec![usize::MAX; program.functions.len()];
    for (si, scc) in cg.sccs().iter().enumerate() {
        for &m in scc {
            scc_of[m] = si;
        }
    }

    let mut out = Program::new();
    // Level-d name of a cyclic function.
    let level_name = |interner: &mut Interner, f: Symbol, d: usize| -> Symbol {
        let base = interner.resolve(f).to_owned();
        if d == 0 {
            f
        } else {
            interner.intern(&format!("{base}#{d}"))
        }
    };
    let stub_name = |interner: &mut Interner, f: Symbol| -> Symbol {
        let base = interner.resolve(f).to_owned();
        interner.intern(&format!("{base}#stub"))
    };

    for (i, f) in program.functions.iter().enumerate() {
        if !cyclic[i] {
            out.functions.push(f.clone());
            continue;
        }
        // Emit levels 0..=depth-1 plus the stub.
        for d in 0..depth {
            let mut clone = f.clone();
            clone.name = level_name(interner, f.name, d);
            // Redirect intra-SCC calls: callee g (cyclic, same SCC) at level
            // d goes to level d+1, or to the stub at the deepest level.
            let mut map = HashMap::new();
            for &j in &cg.edges[i] {
                if cyclic[j] && scc_of[j] == scc_of[i] {
                    let g = program.functions[j].name;
                    let target = if d + 1 < depth {
                        level_name(interner, g, d + 1)
                    } else {
                        stub_name(interner, g)
                    };
                    map.insert(g, target);
                }
            }
            rewrite_calls_stmts(&mut clone.body, &map);
            out.functions.push(clone);
        }
        out.functions.push(Function {
            name: stub_name(interner, f.name),
            params: f.params.clone(),
            body: Vec::new(),
            is_extern: true,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn builds_edges() {
        let mut i = Interner::new();
        let p = parse("fn a() { return b() + b(); } fn b() { return 1; }", &mut i).unwrap();
        let cg = CallGraph::build(&p, &i).unwrap();
        assert_eq!(cg.edges[0], vec![1]);
        assert!(cg.edges[1].is_empty());
    }

    #[test]
    fn detects_self_recursion() {
        let mut i = Interner::new();
        let p = parse("fn f(n) { if (n) { return f(n - 1); } return 0; }", &mut i).unwrap();
        let cg = CallGraph::build(&p, &i).unwrap();
        assert_eq!(cg.cyclic_members(), vec![true]);
    }

    #[test]
    fn detects_mutual_recursion() {
        let mut i = Interner::new();
        let p = parse(
            "fn even(n) { if (n == 0) { return 1; } return odd(n - 1); }\n\
             fn odd(n) { if (n == 0) { return 0; } return even(n - 1); }\n\
             fn leaf() { return 1; }",
            &mut i,
        )
        .unwrap();
        let cg = CallGraph::build(&p, &i).unwrap();
        assert_eq!(cg.cyclic_members(), vec![true, true, false]);
    }

    #[test]
    fn unroll_produces_acyclic_graph() {
        let mut i = Interner::new();
        let p = parse(
            "fn even(n) { if (n == 0) { return 1; } return odd(n - 1); }\n\
             fn odd(n) { if (n == 0) { return 0; } return even(n - 1); }",
            &mut i,
        )
        .unwrap();
        let u = unroll_recursion(&p, &mut i, 2).unwrap();
        // even, even#1, even#stub, odd, odd#1, odd#stub
        assert_eq!(u.functions.len(), 6);
        let cg = CallGraph::build(&u, &i).unwrap();
        assert!(cg.cyclic_members().iter().all(|&c| !c));
        // Depth-1 even calls odd#stub.
        let even1 = u.function(i.lookup("even#1").unwrap()).unwrap();
        let mut calls = Vec::new();
        collect_calls_stmts(&even1.body, &mut calls);
        assert_eq!(calls, vec![i.lookup("odd#stub").unwrap()]);
    }

    #[test]
    fn unroll_is_identity_without_recursion() {
        let mut i = Interner::new();
        let p = parse("fn a() { return b(); } fn b() { return 1; }", &mut i).unwrap();
        let u = unroll_recursion(&p, &mut i, 2).unwrap();
        assert_eq!(u, p);
    }

    #[test]
    fn unknown_callee_is_an_error() {
        let mut i = Interner::new();
        let p = parse("fn a() { return nope(); }", &mut i).unwrap();
        let err = CallGraph::build(&p, &i).unwrap_err();
        assert_eq!(err.callee, "nope");
    }

    #[test]
    fn sccs_cover_all_nodes() {
        let mut i = Interner::new();
        let p = parse(
            "fn a() { return b(); } fn b() { return a(); } fn c() { return a(); }",
            &mut i,
        )
        .unwrap();
        let cg = CallGraph::build(&p, &i).unwrap();
        let sccs = cg.sccs();
        let total: usize = sccs.iter().map(Vec::len).sum();
        assert_eq!(total, 3);
        assert!(sccs.iter().any(|s| s.len() == 2));
    }
}

//! The streaming pipeline must be invisible in the output.
//!
//! `analyze_streaming_with_cache` overlaps candidate discovery with
//! feasibility solving: discovery shards push completed sink groups
//! through a bounded channel into group-stealing solve workers while
//! later sources are still being explored. None of that scheduling may
//! reach the user: for every thread count, with and without the verdict
//! cache, with and without incremental sessions, the reports must be
//! *byte-identical* — same sources, sinks, verdicts, witness paths, in
//! the same order — to the barrier pipeline and to the sequential
//! driver. This is the contract DESIGN.md ("Analysis pipeline") claims
//! and the CLI's `--stream`/`--no-stream` pair relies on.

use fusion::cache::VerdictCache;
use fusion::checkers::Checker;
use fusion::engine::{
    analyze_parallel_with_cache, analyze_streaming_with_cache, analyze_with_cache, AnalysisOptions,
    AnalysisRun, Feasibility, FeasibilityEngine,
};
use fusion::graph_solver::FusionSolver;
use fusion_ir::{compile, CompileOptions, Program};
use fusion_pdg::graph::Pdg;
use fusion_smt::solver::SolverConfig;

/// Several source functions across several sink functions, mixing
/// feasible and infeasible flows (`x * x == 3` has no solution modulo a
/// power of two), so streaming has real groups to overlap and verdicts
/// are non-trivial.
fn subject() -> (Program, Pdg, Checker) {
    let mut src = String::from("extern fn getpass(); extern fn sendmsg(x);\n");
    for i in 0..6 {
        let lo = i * 2;
        src.push_str(&format!(
            "fn f{i}(flag) {{\n\
               let a = getpass();\n\
               let c = 1; let d = 1; let e = 1;\n\
               if (flag > {lo}) {{ c = a + {i}; }}\n\
               if (flag * flag == 3) {{ d = a + {i}; }}\n\
               if (flag < {hi}) {{ e = a * 2; }}\n\
               sendmsg(c);\n\
               sendmsg(d);\n\
               sendmsg(e);\n\
               return 0;\n\
             }}\n",
            hi = lo + 5,
        ));
    }
    let program = compile(&src, CompileOptions::default()).expect("compile");
    let pdg = Pdg::build(&program);
    (program, pdg, Checker::cwe402())
}

/// Everything that reaches the user, in a comparable form.
type ReportKey = (
    fusion_pdg::graph::Vertex,
    fusion_pdg::graph::Vertex,
    Feasibility,
    Vec<fusion_pdg::graph::Vertex>,
);

fn keys(run: &AnalysisRun) -> Vec<ReportKey> {
    run.reports
        .iter()
        .map(|r| (r.source, r.sink, r.verdict, r.path.nodes.clone()))
        .collect()
}

fn factory(incremental: bool) -> impl Fn() -> Box<dyn FeasibilityEngine> + Sync {
    move || {
        let mut engine = FusionSolver::new(SolverConfig::default());
        engine.incremental = incremental;
        Box::new(engine)
    }
}

#[test]
fn streaming_equals_barrier_equals_sequential_1_to_8_threads() {
    let (program, pdg, checker) = subject();

    for use_cache in [false, true] {
        for incremental in [true, false] {
            let opts = if use_cache {
                AnalysisOptions::new()
            } else {
                AnalysisOptions::without_cache()
            };
            // Sequential run is the reference transcript.
            let seq_cache = VerdictCache::new();
            let cache = use_cache.then_some(&seq_cache);
            let mut reference_engine = FusionSolver::new(SolverConfig::default());
            reference_engine.incremental = incremental;
            let reference = analyze_with_cache(
                &program,
                &pdg,
                &checker,
                &mut reference_engine,
                &opts,
                cache,
            );
            assert!(!reference.reports.is_empty(), "subject must report");
            assert!(reference.suppressed > 0, "subject must suppress");
            let want = keys(&reference);

            for threads in 1..=8 {
                // Fresh caches per run: each configuration must stand alone.
                let stream_cache = VerdictCache::new();
                let streaming = analyze_streaming_with_cache(
                    &program,
                    &pdg,
                    &checker,
                    &factory(incremental),
                    threads,
                    &opts,
                    use_cache.then_some(&stream_cache),
                );
                let barrier_cache = VerdictCache::new();
                let barrier = analyze_parallel_with_cache(
                    &program,
                    &pdg,
                    &checker,
                    &factory(incremental),
                    threads,
                    &opts,
                    use_cache.then_some(&barrier_cache),
                );
                assert_eq!(
                    keys(&streaming),
                    want,
                    "streaming diverged at threads={threads} cache={use_cache} \
                     incremental={incremental}"
                );
                assert_eq!(
                    keys(&barrier),
                    want,
                    "barrier diverged at threads={threads} cache={use_cache} \
                     incremental={incremental}"
                );
                assert_eq!(streaming.suppressed, reference.suppressed);
                assert_eq!(barrier.suppressed, reference.suppressed);
                assert_eq!(streaming.candidates, reference.candidates);
            }
        }
    }
}

#[test]
fn streaming_with_one_thread_matches_sequential_memory_peak() {
    // With one thread there is nothing to overlap: the streaming driver
    // delegates to the sequential one, so the categorized memory peaks
    // must be *equal*, not merely close (ISSUE 3, satellite f).
    let (program, pdg, checker) = subject();
    let opts = AnalysisOptions::new();

    let seq_cache = VerdictCache::new();
    let mut engine = FusionSolver::new(SolverConfig::default());
    let seq = analyze_with_cache(
        &program,
        &pdg,
        &checker,
        &mut engine,
        &opts,
        Some(&seq_cache),
    );

    let stream_cache = VerdictCache::new();
    let streaming = analyze_streaming_with_cache(
        &program,
        &pdg,
        &checker,
        &factory(true),
        1,
        &opts,
        Some(&stream_cache),
    );

    assert_eq!(keys(&seq), keys(&streaming));
    assert_eq!(
        seq.peak_memory, streaming.peak_memory,
        "1-thread streaming must account memory exactly like the sequential driver"
    );
}

#[test]
fn slice_memo_is_shared_across_runs() {
    // `AnalysisOptions::new()` carries one shared slice cache; a second
    // run over the same program with a *fresh* verdict cache re-issues
    // every query but must answer every closure request from the memo.
    let (program, pdg, checker) = subject();
    let opts = AnalysisOptions::new();

    let cold_cache = VerdictCache::new();
    let cold = analyze_streaming_with_cache(
        &program,
        &pdg,
        &checker,
        &factory(true),
        4,
        &opts,
        Some(&cold_cache),
    );
    assert!(
        cold.stages.slices_computed > 0,
        "cold run must compute closures"
    );
    assert!(cold.stages.discovery_shards >= 1);

    let warm_cache = VerdictCache::new();
    let warm = analyze_streaming_with_cache(
        &program,
        &pdg,
        &checker,
        &factory(true),
        4,
        &opts,
        Some(&warm_cache),
    );
    assert_eq!(keys(&cold), keys(&warm));
    assert!(warm.queries > 0, "fresh verdict cache must re-query");
    assert_eq!(
        warm.stages.slices_computed, 0,
        "warm run must answer every closure request from the shared memo \
         (reused {} of {} queries)",
        warm.stages.slices_reused, warm.queries
    );
    assert!(warm.stages.slices_reused > 0);
    assert!(warm.slice.hits > 0, "slice-cache hits must be observable");
}

//! Criterion ablation: which parts of Algorithm 6 buy the speedup?
//!
//! Toggles the two design choices DESIGN.md calls out: quick-path
//! summaries (Fig. 9 label deletion) and intra-procedural preprocessing of
//! local conditions before cloning (§3.2.3).

use criterion::{criterion_group, criterion_main, Criterion};
use fusion::checkers::Checker;
use fusion::graph_solver::FusionSolver;
use fusion_bench::{build_subject, default_budget, run_checker};
use fusion_workloads::SUBJECTS;

fn bench_ablation(c: &mut Criterion) {
    let subject = build_subject(&SUBJECTS[13], 0.002); // v8 shape
    let checker = Checker::null_deref();
    let mut group = c.benchmark_group("ablation/v8");
    group.sample_size(10);
    for (name, quick, pre) in [
        ("full", true, true),
        ("no_quick_paths", false, true),
        ("no_local_preprocess", true, false),
        ("neither", false, false),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut engine = FusionSolver::new(default_budget());
                engine.use_quick_paths = quick;
                engine.use_local_preprocess = pre;
                run_checker(&subject, &checker, &mut engine)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);

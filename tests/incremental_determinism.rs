//! Incremental sessions must be invisible in the output.
//!
//! The `FusionSolver` ships with assumption-based incremental solving
//! enabled (`incremental = true`): queries within a slice group share one
//! `SolveSession`, bit-blast memo, and learnt-clause database. Turning it
//! off (`--no-incremental` on the CLI) falls back to a cold `smt_solve`
//! per query. Both are complete decision procedures, so under an ample
//! budget the *reports must be byte-identical* — same sources, sinks,
//! verdicts, and witness paths — for every thread count, and identical to
//! the sequential driver. This is the determinism contract claimed in
//! DESIGN.md ("Incremental sessions") and enforced here for 1–8 threads.

use fusion::checkers::Checker;
use fusion::engine::{
    analyze_parallel_with_cache, analyze_with_cache, AnalysisOptions, AnalysisRun, Feasibility,
    FeasibilityEngine,
};
use fusion::graph_solver::FusionSolver;
use fusion_ir::{compile, CompileOptions, Program};
use fusion_pdg::graph::Pdg;
use fusion_smt::solver::SolverConfig;

/// Several sink functions — so the group-batching driver has real groups
/// to steal — each mixing a feasible flow with an infeasible one
/// (`x * x == 3` has no solution modulo a power of two: squares are
/// 0 or 1 mod 4).
fn subject() -> (Program, Pdg, Checker) {
    let mut src = String::from("extern fn getpass(); extern fn sendmsg(x);\n");
    for i in 0..4 {
        let lo = i * 3;
        src.push_str(&format!(
            "fn f{i}(flag) {{\n\
               let a = getpass();\n\
               let c = 1; let d = 1; let e = 1;\n\
               if (flag > {lo}) {{ c = a + {i}; }}\n\
               if (flag * flag == 3) {{ d = a + {i}; }}\n\
               if (flag < {hi}) {{ e = a * 2; }}\n\
               sendmsg(c);\n\
               sendmsg(d);\n\
               sendmsg(e);\n\
               return 0;\n\
             }}\n",
            hi = lo + 7,
        ));
    }
    let program = compile(&src, CompileOptions::default()).expect("compile");
    let pdg = Pdg::build(&program);
    (program, pdg, Checker::cwe402())
}

/// Everything that reaches the user, in a comparable form.
type ReportKey = (
    fusion_pdg::graph::Vertex,
    fusion_pdg::graph::Vertex,
    Feasibility,
    Vec<fusion_pdg::graph::Vertex>,
);

fn keys(run: &AnalysisRun) -> Vec<ReportKey> {
    run.reports
        .iter()
        .map(|r| (r.source, r.sink, r.verdict, r.path.nodes.clone()))
        .collect()
}

fn factory(incremental: bool) -> impl Fn() -> Box<dyn FeasibilityEngine> + Sync {
    move || {
        let mut engine = FusionSolver::new(SolverConfig::default());
        engine.incremental = incremental;
        Box::new(engine)
    }
}

#[test]
fn parallel_reports_identical_between_incremental_and_cold_1_to_8_threads() {
    let (program, pdg, checker) = subject();
    let opts = AnalysisOptions::without_cache();

    // Sequential cold run is the reference transcript.
    let mut reference_engine = FusionSolver::new(SolverConfig::default());
    reference_engine.incremental = false;
    let reference =
        analyze_with_cache(&program, &pdg, &checker, &mut reference_engine, &opts, None);
    assert!(
        !reference.reports.is_empty(),
        "subject must produce reports for the comparison to mean anything"
    );
    assert!(
        reference.suppressed > 0,
        "subject must contain infeasible flows so verdicts are non-trivial"
    );
    let want = keys(&reference);

    for threads in 1..=8 {
        let cold = analyze_parallel_with_cache(
            &program,
            &pdg,
            &checker,
            &factory(false),
            threads,
            &opts,
            None,
        );
        let inc = analyze_parallel_with_cache(
            &program,
            &pdg,
            &checker,
            &factory(true),
            threads,
            &opts,
            None,
        );
        assert_eq!(
            keys(&cold),
            want,
            "cold parallel run diverged from sequential at {threads} threads"
        );
        assert_eq!(
            keys(&inc),
            want,
            "incremental parallel run diverged from sequential at {threads} threads"
        );
        assert_eq!(
            inc.suppressed, reference.suppressed,
            "suppression count changed at {threads} threads"
        );
        assert_eq!(
            inc.candidates, reference.candidates,
            "candidate discovery must not depend on the engine mode"
        );
    }
}

#[test]
fn sequential_incremental_matches_sequential_cold() {
    // The same contract without the parallel driver in the loop: one
    // engine instance per mode, sequential analysis, identical transcript.
    let (program, pdg, checker) = subject();
    let opts = AnalysisOptions::without_cache();
    let mut cold_engine = FusionSolver::new(SolverConfig::default());
    cold_engine.incremental = false;
    let mut inc_engine = FusionSolver::new(SolverConfig::default());
    assert!(inc_engine.incremental, "incremental is the default");
    let cold = analyze_with_cache(&program, &pdg, &checker, &mut cold_engine, &opts, None);
    let inc = analyze_with_cache(&program, &pdg, &checker, &mut inc_engine, &opts, None);
    assert_eq!(keys(&cold), keys(&inc));
    assert_eq!(cold.suppressed, inc.suppressed);
    assert_eq!(cold.queries, inc.queries);
}

//! Sparse propagation of data-flow facts (Algorithms 1, 2 and 5).
//!
//! This is the analysis half of the fused design: facts travel along
//! data-dependence edges only (spatial + temporal sparsity, §3.1),
//! collecting the set Π of dependence paths from sources to sinks. Crossing
//! call and return edges respects the CFL parenthesis discipline — an exit
//! must match the call site through which the path entered, or escape to an
//! unentered outer frame.
//!
//! Crucially for the paper's contribution, the propagation computes **no
//! conditions at all** (Algorithm 5): a discovered path is handed to a
//! feasibility engine afterwards. The per-function summary cache stores
//! only reachability, never formulas.

use crate::checkers::Checker;
use fusion_ir::ssa::{CallSiteId, Program};
use fusion_pdg::graph::{FlowTarget, Pdg, Vertex};
use fusion_pdg::paths::{DependencePath, Link};

/// Exploration limits (deterministic).
#[derive(Debug, Clone, Copy)]
pub struct PropagateOptions {
    /// Alternative paths kept per (source, sink) pair.
    pub max_paths_per_pair: usize,
    /// Total DFS steps per source before giving up (budget).
    pub max_steps_per_source: usize,
    /// Maximum vertices in one path.
    pub max_path_len: usize,
    /// Maximum call-string depth.
    pub max_call_depth: usize,
}

impl Default for PropagateOptions {
    fn default() -> Self {
        Self {
            max_paths_per_pair: 4,
            max_steps_per_source: 50_000,
            max_path_len: 256,
            max_call_depth: 32,
        }
    }
}

/// A (source, sink) pair with the discovered dependence paths connecting
/// it. Each path alone witnesses the flow; feasibility of *any* of them
/// makes the candidate a bug.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Where the fact is born.
    pub source: Vertex,
    /// The sink call statement the fact reaches.
    pub sink: Vertex,
    /// Alternative dependence paths from source to sink.
    pub paths: Vec<DependencePath>,
}

struct Dfs<'a> {
    program: &'a Program,
    pdg: &'a Pdg,
    checker: &'a Checker,
    opts: PropagateOptions,
    steps: usize,
    candidates: Vec<Candidate>,
    /// DFS states on the current path: (vertex, CFL stack). A path may
    /// legitimately revisit a vertex under a *different* calling context
    /// (e.g. `id(id(q))`), so cycle detection keys on the full state.
    states: Vec<(Vertex, Vec<CallSiteId>)>,
}

impl<'a> Dfs<'a> {
    fn record(&mut self, path: &DependencePath, sink: Vertex) {
        let mut full = path.clone();
        full.push(Link::Local, sink);
        debug_assert!(full.is_realizable());
        let source = full.source();
        if let Some(c) = self
            .candidates
            .iter_mut()
            .find(|c| c.source == source && c.sink == sink)
        {
            if c.paths.len() < self.opts.max_paths_per_pair {
                c.paths.push(full);
            }
        } else {
            self.candidates.push(Candidate {
                source,
                sink,
                paths: vec![full],
            });
        }
    }

    /// Steps to `v` (with the stack already updated), recurses, and
    /// undoes the step. Returns without recursing if the (vertex, stack)
    /// state already occurs on the current path.
    fn step(
        &mut self,
        path: &mut DependencePath,
        stack: &mut Vec<CallSiteId>,
        link: Link,
        v: Vertex,
    ) {
        let state = (v, stack.clone());
        if self.states.contains(&state) {
            return; // a cycle in DFS state space
        }
        self.states.push(state);
        path.push(link, v);
        self.explore(path, stack);
        path.nodes.pop();
        path.links.pop();
        self.states.pop();
    }

    fn explore(&mut self, path: &mut DependencePath, stack: &mut Vec<CallSiteId>) {
        if self.steps >= self.opts.max_steps_per_source
            || path.nodes.len() >= self.opts.max_path_len
        {
            return;
        }
        self.steps += 1;
        let at = path.sink();
        let targets = self.pdg.flow_targets(self.program, at);
        for target in targets {
            match target {
                FlowTarget::Local { to, operand } => {
                    let func = self.program.func(at.func);
                    if !self.checker.propagates_through(func, to, operand)
                        || !self.checker.keeps_fact(func, to)
                    {
                        continue;
                    }
                    self.step(path, stack, Link::Local, Vertex::new(at.func, to));
                }
                FlowTarget::IntoCallee {
                    site,
                    callee,
                    param,
                } => {
                    if stack.len() >= self.opts.max_call_depth {
                        continue;
                    }
                    stack.push(site);
                    self.step(path, stack, Link::Enter(site), Vertex::new(callee, param));
                    stack.pop();
                }
                FlowTarget::BackToCaller { site, caller, dst } => {
                    // CFL discipline: match the entering site, or escape
                    // upward with an empty stack.
                    let popped = match stack.last() {
                        Some(&top) if top == site => {
                            stack.pop();
                            true
                        }
                        Some(_) => continue, // mismatched parenthesis
                        None => false,       // upward escape
                    };
                    self.step(path, stack, Link::Exit(site), Vertex::new(caller, dst));
                    if popped {
                        stack.push(site);
                    }
                }
                FlowTarget::ThroughExtern { to, arg: _, .. } => {
                    let func = self.program.func(at.func);
                    let sink_here = self.checker.is_sink(self.program, func, to);
                    if sink_here {
                        self.record(path, Vertex::new(at.func, to));
                    }
                    // Sanitizers kill the fact; other externs pass it
                    // through (taint only).
                    if self.checker.through_extern
                        && !sink_here
                        && !self.checker.is_sanitizer(self.program, func, to)
                    {
                        self.step(path, stack, Link::Local, Vertex::new(at.func, to));
                    }
                }
            }
        }
    }
}

/// Runs sparse propagation for one checker, returning all (source, sink)
/// candidates with their dependence paths.
pub fn discover(
    program: &Program,
    pdg: &Pdg,
    checker: &Checker,
    opts: &PropagateOptions,
) -> Vec<Candidate> {
    let mut all = Vec::new();
    for func in program.functions.iter().filter(|f| !f.is_extern) {
        for def in &func.defs {
            if !checker.is_source(program, func, def.var) {
                continue;
            }
            let mut dfs = Dfs {
                program,
                pdg,
                checker,
                opts: *opts,
                steps: 0,
                candidates: Vec::new(),
                states: Vec::new(),
            };
            let mut path = DependencePath::unit(Vertex::new(func.id, def.var));
            let mut stack = Vec::new();
            dfs.explore(&mut path, &mut stack);
            all.extend(dfs.candidates);
        }
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkers::Checker;
    use fusion_ir::{compile, CompileOptions};

    fn candidates(src: &str, checker: &Checker) -> (Program, Vec<Candidate>) {
        let p = compile(src, CompileOptions::default()).expect("compile");
        let g = Pdg::build(&p);
        let cs = discover(&p, &g, checker, &PropagateOptions::default());
        (p, cs)
    }

    #[test]
    fn direct_null_flow() {
        let (_, cs) = candidates(
            "extern fn deref(p); fn f() { let q = null; deref(q); return 0; }",
            &Checker::null_deref(),
        );
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].paths.len(), 1);
        assert_eq!(cs[0].paths[0].nodes.len(), 2);
    }

    #[test]
    fn null_does_not_survive_arithmetic() {
        let (_, cs) = candidates(
            "extern fn deref(p); fn f() { let q = null; let r = q + 1; deref(r); return 0; }",
            &Checker::null_deref(),
        );
        assert!(cs.is_empty());
    }

    #[test]
    fn sanitizers_kill_taint() {
        let (_, cs) = candidates(
            "extern fn gets(); extern fn realpath(x); extern fn fopen(p);\n\
             fn f() { let i = gets(); let clean = realpath(i); fopen(clean); return 0; }",
            &Checker::cwe23(),
        );
        assert!(cs.is_empty(), "sanitized flow must not be reported");
    }

    #[test]
    fn taint_survives_arithmetic_and_library() {
        let (_, cs) = candidates(
            "extern fn gets(); extern fn sanitize_noop(x); extern fn fopen(p);\n\
             fn f() { let i = gets(); let j = i + 1; let k = sanitize_noop(j); fopen(k); return 0; }",
            &Checker::cwe23(),
        );
        assert_eq!(cs.len(), 1);
        // gets → j → k → fopen.
        assert_eq!(cs[0].paths[0].nodes.len(), 4);
    }

    #[test]
    fn interprocedural_flow_via_call_and_return() {
        let (_, cs) = candidates(
            "extern fn deref(p);\n\
             fn id(x) { return x; }\n\
             fn f() { let q = null; let r = id(q); deref(r); return 0; }",
            &Checker::null_deref(),
        );
        assert_eq!(cs.len(), 1);
        let path = &cs[0].paths[0];
        assert!(path.is_realizable());
        assert!(path.links.iter().any(|l| matches!(l, Link::Enter(_))));
        assert!(path.links.iter().any(|l| matches!(l, Link::Exit(_))));
    }

    #[test]
    fn cfl_discipline_blocks_site_mixing() {
        // null enters id at site 1 but must not exit through site 2.
        let (p, cs) = candidates(
            "extern fn deref(p);\n\
             fn id(x) { return x; }\n\
             fn f(a) {\n\
               let q = null;\n\
               let r1 = id(q);\n\
               let r2 = id(a);\n\
               deref(r2);\n\
               return r1;\n\
             }",
            &Checker::null_deref(),
        );
        // The only sink is deref(r2), which the null value cannot reach
        // without mixing call sites.
        assert!(
            cs.is_empty(),
            "{:?}",
            cs.iter().map(|c| c.paths.len()).collect::<Vec<_>>()
        );
        drop(p);
    }

    #[test]
    fn upward_escape_to_caller() {
        // The source lives in the callee, the sink in the caller.
        let (_, cs) = candidates(
            "extern fn deref(p);\n\
             fn make() { let q = null; return q; }\n\
             fn f() { let r = make(); deref(r); return 0; }",
            &Checker::null_deref(),
        );
        assert_eq!(cs.len(), 1);
        assert!(cs[0].paths[0]
            .links
            .iter()
            .any(|l| matches!(l, Link::Exit(_))));
    }

    #[test]
    fn multiple_alternative_paths() {
        let (_, cs) = candidates(
            "extern fn deref(p);\n\
             fn f(a, b) {\n\
               let q = null;\n\
               let r = 0;\n\
               let s = 0;\n\
               if (a) { r = q; }\n\
               if (b) { s = q; }\n\
               let t = 0;\n\
               if (a < b) { t = r; } else { t = s; }\n\
               deref(t);\n\
               return 0;\n\
             }",
            &Checker::null_deref(),
        );
        assert_eq!(cs.len(), 1);
        // q reaches deref both via r (then-arm) and via s (else-arm).
        assert_eq!(cs[0].paths.len(), 2);
    }

    #[test]
    fn sources_in_different_functions() {
        let (_, cs) = candidates(
            "extern fn deref(p);\n\
             fn g() { let q = null; deref(q); return 0; }\n\
             fn h() { let q = null; deref(q); return 0; }",
            &Checker::null_deref(),
        );
        assert_eq!(cs.len(), 2);
    }

    #[test]
    fn respects_step_budget() {
        let (_, cs) = candidates(
            "extern fn deref(p); fn f() { let q = null; deref(q); return 0; }",
            &Checker::null_deref(),
        );
        assert_eq!(cs.len(), 1);
        // With a zero budget nothing is found.
        let p = compile(
            "extern fn deref(p); fn f() { let q = null; deref(q); return 0; }",
            CompileOptions::default(),
        )
        .unwrap();
        let g = Pdg::build(&p);
        let opts = PropagateOptions {
            max_steps_per_source: 0,
            ..Default::default()
        };
        assert!(discover(&p, &g, &Checker::null_deref(), &opts).is_empty());
    }
}

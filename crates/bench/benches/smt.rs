//! Criterion micro-benchmarks for the SMT substrate: preprocessing,
//! bit-blasting + SAT, and the Fig. 1(b) condition end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use fusion_smt::preprocess::preprocess;
use fusion_smt::solver::{smt_solve, SolverConfig};
use fusion_smt::term::{BvOp, BvPred, Sort, TermId, TermPool};

/// The Fig. 1(b) condition with `k` clones of bar's return-value condition.
fn figure1_condition(pool: &mut TermPool, k: usize) -> TermId {
    let mut parts = Vec::new();
    let mut results = Vec::new();
    for i in 0..k {
        let x = pool.var(&format!("x{i}"), Sort::Bv(32));
        let y = pool.var(&format!("y{i}"), Sort::Bv(32));
        let z = pool.var(&format!("z{i}"), Sort::Bv(32));
        let two = pool.bv_const(2, 32);
        let m = pool.bv(BvOp::Mul, x, two);
        parts.push(pool.eq(y, m));
        parts.push(pool.eq(z, y));
        results.push(z);
    }
    // Chain of comparisons over consecutive results.
    for w in results.windows(2) {
        let c = pool.pred(BvPred::Slt, w[0], w[1]);
        parts.push(c);
    }
    pool.and(&parts)
}

fn bench_preprocess(c: &mut Criterion) {
    c.bench_function("preprocess/fig1b_k16", |b| {
        b.iter(|| {
            let mut pool = TermPool::new();
            let f = figure1_condition(&mut pool, 16);
            preprocess(&mut pool, f)
        })
    });
}

fn bench_solve_decided(c: &mut Criterion) {
    c.bench_function("smt_solve/preprocess_decided", |b| {
        b.iter(|| {
            let mut pool = TermPool::new();
            let f = figure1_condition(&mut pool, 8);
            smt_solve(&mut pool, f, &SolverConfig::default())
        })
    });
}

fn bench_solve_bitblast(c: &mut Criterion) {
    c.bench_function("smt_solve/bitblast_mul", |b| {
        b.iter(|| {
            let mut pool = TermPool::new();
            let x = pool.var("x", Sort::Bv(16));
            let y = pool.var("y", Sort::Bv(16));
            let prod = pool.bv(BvOp::Mul, x, y);
            let c391 = pool.bv_const(391, 16); // 17 * 23
            let f1 = pool.eq(prod, c391);
            let one = pool.bv_const(1, 16);
            let xg = pool.pred(BvPred::Ult, one, x);
            let yg = pool.pred(BvPred::Ult, one, y);
            let f = pool.and(&[f1, xg, yg]);
            smt_solve(&mut pool, f, &SolverConfig::default())
        })
    });
}

criterion_group!(
    benches,
    bench_preprocess,
    bench_solve_decided,
    bench_solve_bitblast
);
criterion_main!(benches);

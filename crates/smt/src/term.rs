//! Hash-consed term DAG for the bit-vector theory.
//!
//! Every term lives in a [`TermPool`] and is identified by a [`TermId`];
//! structurally equal terms share one node. Constructors perform the
//! *bottom-up* simplifications a production solver applies at term-build
//! time (constant folding, unit laws, involution, commutative
//! normalization) — the heavier, named preprocessing passes of §4 of the
//! paper live in [`crate::preprocess`].
//!
//! The node count of a pool — and the *retained* node count of a formula —
//! is the honest "condition size" metric the paper's complexity arguments
//! are about; see [`TermPool::dag_size`] and [`TermPool::tree_size`].

use std::collections::HashMap;
use std::fmt;

/// The sort of a term: boolean or a fixed-width bit vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sort {
    /// Booleans.
    Bool,
    /// Bit vectors of the given width (1..=64).
    Bv(u32),
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Bool => write!(f, "Bool"),
            Sort::Bv(w) => write!(f, "Bv{w}"),
        }
    }
}

/// Identifies a term within its [`TermPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

impl TermId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifies a variable within its [`TermPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarIdx(pub u32);

impl VarIdx {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Binary bit-vector operators (BV × BV → BV, same width).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BvOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// `x / 0 = all-ones` (SMT-LIB).
    Udiv,
    /// `x % 0 = x` (SMT-LIB).
    Urem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (amounts >= width give 0).
    Shl,
    /// Logical right shift (amounts >= width give 0).
    Lshr,
    /// Arithmetic right shift (amounts >= width replicate the sign).
    Ashr,
}

impl BvOp {
    /// Whether argument order is irrelevant.
    pub fn commutative(self) -> bool {
        matches!(
            self,
            BvOp::Add | BvOp::Mul | BvOp::And | BvOp::Or | BvOp::Xor
        )
    }

    /// Concrete evaluation at the given width.
    #[allow(clippy::manual_checked_ops)] // x/0 = all-ones is SMT-LIB semantics
    pub fn eval(self, a: u64, b: u64, width: u32) -> u64 {
        let mask = mask(width);
        let r = match self {
            BvOp::Add => a.wrapping_add(b),
            BvOp::Sub => a.wrapping_sub(b),
            BvOp::Mul => a.wrapping_mul(b),
            BvOp::Udiv => {
                if b == 0 {
                    mask
                } else {
                    a / b
                }
            }
            BvOp::Urem => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
            BvOp::And => a & b,
            BvOp::Or => a | b,
            BvOp::Xor => a ^ b,
            BvOp::Shl => {
                if b >= width as u64 {
                    0
                } else {
                    a << b
                }
            }
            BvOp::Lshr => {
                if b >= width as u64 {
                    0
                } else {
                    a >> b
                }
            }
            BvOp::Ashr => {
                let sign = (a >> (width - 1)) & 1;
                if b >= width as u64 {
                    if sign == 1 {
                        mask
                    } else {
                        0
                    }
                } else if sign == 1 {
                    ((a >> b) | !(mask >> b)) & mask
                } else {
                    a >> b
                }
            }
        };
        r & mask
    }
}

/// Bit-vector predicates (BV × BV → Bool). Equality is separate ([`TermKind::Eq`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BvPred {
    /// Unsigned `<`.
    Ult,
    /// Unsigned `<=`.
    Ule,
    /// Signed `<`.
    Slt,
    /// Signed `<=`.
    Sle,
}

impl BvPred {
    /// Concrete evaluation at the given width.
    pub fn eval(self, a: u64, b: u64, width: u32) -> bool {
        match self {
            BvPred::Ult => a < b,
            BvPred::Ule => a <= b,
            BvPred::Slt => to_signed(a, width) < to_signed(b, width),
            BvPred::Sle => to_signed(a, width) <= to_signed(b, width),
        }
    }
}

/// All-ones mask of the given width.
pub fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Two's-complement reinterpretation.
pub fn to_signed(v: u64, width: u32) -> i64 {
    let m = mask(width);
    let v = v & m;
    if width < 64 && (v >> (width - 1)) & 1 == 1 {
        (v | !m) as i64
    } else {
        v as i64
    }
}

/// A term node. Obtain instances through [`TermPool`] constructors only.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TermKind {
    /// Boolean constant.
    BoolConst(bool),
    /// Bit-vector constant (value is masked to `width`).
    BvConst {
        /// Width in bits.
        width: u32,
        /// Value, `< 2^width`.
        value: u64,
    },
    /// A free variable; metadata lives in the pool.
    Var(VarIdx),
    /// Boolean negation.
    Not(TermId),
    /// N-ary conjunction (flattened, deduplicated, id-sorted).
    And(Vec<TermId>),
    /// N-ary disjunction (flattened, deduplicated, id-sorted).
    Or(Vec<TermId>),
    /// Polymorphic equality (operands id-sorted).
    Eq(TermId, TermId),
    /// Polymorphic if-then-else on a boolean condition.
    Ite {
        /// Condition.
        cond: TermId,
        /// Value when true.
        then_t: TermId,
        /// Value when false.
        else_t: TermId,
    },
    /// Binary bit-vector operation.
    Bv(BvOp, TermId, TermId),
    /// Bit-vector comparison predicate.
    Pred(BvPred, TermId, TermId),
}

/// A concrete value, the result of [`TermPool::eval`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    /// A boolean.
    Bool(bool),
    /// A bit vector (width implied by the term's sort).
    Bv(u64),
}

impl Value {
    /// Extracts the boolean, panicking on sort confusion.
    ///
    /// # Panics
    ///
    /// Panics if the value is a bit vector.
    pub fn as_bool(self) -> bool {
        match self {
            Value::Bool(b) => b,
            Value::Bv(_) => panic!("expected Bool value"),
        }
    }

    /// Extracts the bit-vector payload, panicking on sort confusion.
    ///
    /// # Panics
    ///
    /// Panics if the value is a boolean.
    pub fn as_bv(self) -> u64 {
        match self {
            Value::Bv(v) => v,
            Value::Bool(_) => panic!("expected Bv value"),
        }
    }
}

#[derive(Debug, Clone)]
struct VarInfo {
    name: String,
    sort: Sort,
}

/// The hash-consing arena for terms.
#[derive(Debug, Default, Clone)]
pub struct TermPool {
    kinds: Vec<TermKind>,
    sorts: Vec<Sort>,
    consing: HashMap<TermKind, TermId>,
    vars: Vec<VarInfo>,
    var_by_name: HashMap<String, VarIdx>,
}

impl TermPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct term nodes allocated so far.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the pool holds no terms.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Number of variables declared so far.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// The node of a term.
    pub fn kind(&self, t: TermId) -> &TermKind {
        &self.kinds[t.index()]
    }

    /// The sort of a term.
    pub fn sort(&self, t: TermId) -> Sort {
        self.sorts[t.index()]
    }

    /// A variable's declared name.
    pub fn var_name(&self, v: VarIdx) -> &str {
        &self.vars[v.index()].name
    }

    /// A variable's sort.
    pub fn var_sort(&self, v: VarIdx) -> Sort {
        self.vars[v.index()].sort
    }

    fn intern(&mut self, kind: TermKind, sort: Sort) -> TermId {
        if let Some(&t) = self.consing.get(&kind) {
            return t;
        }
        let t = TermId(self.kinds.len() as u32);
        self.kinds.push(kind.clone());
        self.sorts.push(sort);
        self.consing.insert(kind, t);
        t
    }

    /// The `true` constant.
    pub fn tt(&mut self) -> TermId {
        self.intern(TermKind::BoolConst(true), Sort::Bool)
    }

    /// The `false` constant.
    pub fn ff(&mut self) -> TermId {
        self.intern(TermKind::BoolConst(false), Sort::Bool)
    }

    /// A boolean constant.
    pub fn bool_const(&mut self, b: bool) -> TermId {
        if b {
            self.tt()
        } else {
            self.ff()
        }
    }

    /// A bit-vector constant, masked to `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn bv_const(&mut self, value: u64, width: u32) -> TermId {
        assert!((1..=64).contains(&width), "unsupported width {width}");
        let value = value & mask(width);
        self.intern(TermKind::BvConst { width, value }, Sort::Bv(width))
    }

    /// Declares (or retrieves) the variable `name` of sort `sort`.
    ///
    /// # Panics
    ///
    /// Panics if `name` was already declared with a different sort.
    pub fn var(&mut self, name: &str, sort: Sort) -> TermId {
        if let Some(&v) = self.var_by_name.get(name) {
            assert_eq!(
                self.vars[v.index()].sort,
                sort,
                "variable `{name}` redeclared"
            );
            return self.intern(TermKind::Var(v), sort);
        }
        let v = VarIdx(self.vars.len() as u32);
        self.vars.push(VarInfo {
            name: name.to_owned(),
            sort,
        });
        self.var_by_name.insert(name.to_owned(), v);
        self.intern(TermKind::Var(v), sort)
    }

    /// Declares a fresh variable with a unique generated name.
    pub fn fresh_var(&mut self, prefix: &str, sort: Sort) -> TermId {
        let name = format!("{prefix}!{}", self.vars.len());
        debug_assert!(!self.var_by_name.contains_key(&name));
        self.var(&name, sort)
    }

    /// Returns the constant boolean value of `t` if it is one.
    pub fn as_bool_const(&self, t: TermId) -> Option<bool> {
        match self.kind(t) {
            TermKind::BoolConst(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the constant bit-vector value of `t` if it is one.
    pub fn as_bv_const(&self, t: TermId) -> Option<u64> {
        match self.kind(t) {
            TermKind::BvConst { value, .. } => Some(*value),
            _ => None,
        }
    }

    /// The bit width of a BV-sorted term.
    ///
    /// # Panics
    ///
    /// Panics if `t` is boolean.
    pub fn width(&self, t: TermId) -> u32 {
        match self.sort(t) {
            Sort::Bv(w) => w,
            Sort::Bool => panic!("expected a bit-vector term"),
        }
    }

    /// Boolean negation with involution and constant folding.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not boolean.
    pub fn not(&mut self, t: TermId) -> TermId {
        assert_eq!(self.sort(t), Sort::Bool, "not: operand must be Bool");
        match self.kind(t) {
            TermKind::BoolConst(b) => {
                let b = !*b;
                self.bool_const(b)
            }
            TermKind::Not(inner) => *inner,
            _ => self.intern(TermKind::Not(t), Sort::Bool),
        }
    }

    /// N-ary conjunction: flattens, folds constants, deduplicates, detects
    /// `x ∧ ¬x`, and normalizes argument order.
    ///
    /// # Panics
    ///
    /// Panics if any operand is not boolean.
    pub fn and(&mut self, ts: &[TermId]) -> TermId {
        let mut flat = Vec::with_capacity(ts.len());
        for &t in ts {
            assert_eq!(self.sort(t), Sort::Bool, "and: operand must be Bool");
            match self.kind(t) {
                TermKind::BoolConst(true) => {}
                TermKind::BoolConst(false) => return self.ff(),
                TermKind::And(inner) => flat.extend(inner.iter().copied()),
                _ => flat.push(t),
            }
        }
        flat.sort_unstable();
        flat.dedup();
        // x ∧ ¬x → false
        for &t in &flat {
            if let TermKind::Not(inner) = self.kind(t) {
                if flat.binary_search(inner).is_ok() {
                    return self.ff();
                }
            }
        }
        match flat.len() {
            0 => self.tt(),
            1 => flat[0],
            _ => self.intern(TermKind::And(flat), Sort::Bool),
        }
    }

    /// Binary conjunction convenience.
    pub fn and2(&mut self, a: TermId, b: TermId) -> TermId {
        self.and(&[a, b])
    }

    /// N-ary disjunction, dual to [`TermPool::and`].
    ///
    /// # Panics
    ///
    /// Panics if any operand is not boolean.
    pub fn or(&mut self, ts: &[TermId]) -> TermId {
        let mut flat = Vec::with_capacity(ts.len());
        for &t in ts {
            assert_eq!(self.sort(t), Sort::Bool, "or: operand must be Bool");
            match self.kind(t) {
                TermKind::BoolConst(false) => {}
                TermKind::BoolConst(true) => return self.tt(),
                TermKind::Or(inner) => flat.extend(inner.iter().copied()),
                _ => flat.push(t),
            }
        }
        flat.sort_unstable();
        flat.dedup();
        for &t in &flat {
            if let TermKind::Not(inner) = self.kind(t) {
                if flat.binary_search(inner).is_ok() {
                    return self.tt();
                }
            }
        }
        match flat.len() {
            0 => self.ff(),
            1 => flat[0],
            _ => self.intern(TermKind::Or(flat), Sort::Bool),
        }
    }

    /// Binary disjunction convenience.
    pub fn or2(&mut self, a: TermId, b: TermId) -> TermId {
        self.or(&[a, b])
    }

    /// Implication `a → b`, encoded as `¬a ∨ b`.
    pub fn implies(&mut self, a: TermId, b: TermId) -> TermId {
        let na = self.not(a);
        self.or2(na, b)
    }

    /// Polymorphic equality with folding and order normalization.
    ///
    /// # Panics
    ///
    /// Panics if the operands' sorts differ.
    pub fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        assert_eq!(self.sort(a), self.sort(b), "eq: sort mismatch");
        if a == b {
            return self.tt();
        }
        match (self.kind(a).clone(), self.kind(b).clone()) {
            (TermKind::BoolConst(x), TermKind::BoolConst(y)) => return self.bool_const(x == y),
            (TermKind::BvConst { value: x, .. }, TermKind::BvConst { value: y, .. }) => {
                return self.bool_const(x == y)
            }
            // eq(x, true) → x; eq(x, false) → ¬x
            (TermKind::BoolConst(true), _) => return b,
            (_, TermKind::BoolConst(true)) => return a,
            (TermKind::BoolConst(false), _) => return self.not(b),
            (_, TermKind::BoolConst(false)) => return self.not(a),
            // eq(ite(c, k1, k2), k) with constant arms: select on c. This
            // unblocks unconstrained propagation through the 0/1-encoded
            // predicates of the IR translation.
            (
                TermKind::Ite {
                    cond,
                    then_t,
                    else_t,
                },
                TermKind::BvConst { value: k, .. },
            )
            | (
                TermKind::BvConst { value: k, .. },
                TermKind::Ite {
                    cond,
                    then_t,
                    else_t,
                },
            ) => {
                if let (Some(k1), Some(k2)) = (self.as_bv_const(then_t), self.as_bv_const(else_t)) {
                    if k1 != k2 {
                        if k == k1 {
                            return cond;
                        }
                        if k == k2 {
                            return self.not(cond);
                        }
                        return self.ff();
                    }
                }
            }
            _ => {}
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.intern(TermKind::Eq(a, b), Sort::Bool)
    }

    /// Disequality.
    pub fn ne(&mut self, a: TermId, b: TermId) -> TermId {
        let e = self.eq(a, b);
        self.not(e)
    }

    /// Polymorphic if-then-else.
    ///
    /// # Panics
    ///
    /// Panics if `cond` is not boolean or the branches' sorts differ.
    pub fn ite(&mut self, cond: TermId, then_t: TermId, else_t: TermId) -> TermId {
        assert_eq!(self.sort(cond), Sort::Bool, "ite: condition must be Bool");
        assert_eq!(
            self.sort(then_t),
            self.sort(else_t),
            "ite: branch sort mismatch"
        );
        if then_t == else_t {
            return then_t;
        }
        match self.kind(cond) {
            TermKind::BoolConst(true) => return then_t,
            TermKind::BoolConst(false) => return else_t,
            TermKind::Not(inner) => {
                let inner = *inner;
                return self.ite(inner, else_t, then_t);
            }
            _ => {}
        }
        if self.sort(then_t) == Sort::Bool {
            // Boolean ite: fold into and/or for simpler downstream handling.
            let nt = self.not(cond);
            let l = self.and2(cond, then_t);
            let r = self.and2(nt, else_t);
            return self.or2(l, r);
        }
        let sort = self.sort(then_t);
        self.intern(
            TermKind::Ite {
                cond,
                then_t,
                else_t,
            },
            sort,
        )
    }

    /// Binary bit-vector operation with constant folding, unit/zero laws
    /// and commutative normalization.
    ///
    /// # Panics
    ///
    /// Panics if the operands are not bit vectors of the same width.
    pub fn bv(&mut self, op: BvOp, a: TermId, b: TermId) -> TermId {
        let (Sort::Bv(wa), Sort::Bv(wb)) = (self.sort(a), self.sort(b)) else {
            panic!("bv {op:?}: operands must be bit vectors");
        };
        assert_eq!(wa, wb, "bv {op:?}: width mismatch");
        let w = wa;
        let ca = self.as_bv_const(a);
        let cb = self.as_bv_const(b);
        if let (Some(x), Some(y)) = (ca, cb) {
            return self.bv_const(op.eval(x, y, w), w);
        }
        // Unit and absorbing elements.
        match op {
            BvOp::Add | BvOp::Or | BvOp::Xor => {
                if ca == Some(0) {
                    return b;
                }
                if cb == Some(0) {
                    return a;
                }
            }
            BvOp::Sub | BvOp::Shl | BvOp::Lshr | BvOp::Ashr => {
                if cb == Some(0) {
                    return a;
                }
            }
            BvOp::Mul => {
                if ca == Some(0) || cb == Some(0) {
                    return self.bv_const(0, w);
                }
                if ca == Some(1) {
                    return b;
                }
                if cb == Some(1) {
                    return a;
                }
            }
            BvOp::And => {
                if ca == Some(0) || cb == Some(0) {
                    return self.bv_const(0, w);
                }
                if ca == Some(mask(w)) {
                    return b;
                }
                if cb == Some(mask(w)) {
                    return a;
                }
            }
            BvOp::Udiv => {
                if cb == Some(1) {
                    return a;
                }
                if cb == Some(0) {
                    return self.bv_const(mask(w), w); // x / 0 = all-ones
                }
            }
            BvOp::Urem => {
                if cb == Some(1) {
                    return self.bv_const(0, w);
                }
                if cb == Some(0) {
                    return a; // x % 0 = x
                }
            }
        }
        // Shifts by a constant amount >= width collapse.
        if let Some(k) = cb {
            if k >= w as u64 {
                match op {
                    BvOp::Shl | BvOp::Lshr => return self.bv_const(0, w),
                    BvOp::Ashr => {
                        // Sign replication == shifting by width - 1.
                        let max_sh = self.bv_const((w - 1) as u64, w);
                        return self.bv(BvOp::Ashr, a, max_sh);
                    }
                    _ => {}
                }
            }
        }
        // x - x = 0, x ^ x = 0, x & x = x, x | x = x
        if a == b {
            match op {
                BvOp::Sub | BvOp::Xor => return self.bv_const(0, w),
                BvOp::And | BvOp::Or => return a,
                _ => {}
            }
        }
        let (a, b) = if op.commutative() && b < a {
            (b, a)
        } else {
            (a, b)
        };
        self.intern(TermKind::Bv(op, a, b), Sort::Bv(w))
    }

    /// Bit-vector comparison with constant folding and reflexivity laws.
    ///
    /// # Panics
    ///
    /// Panics if the operands are not bit vectors of the same width.
    pub fn pred(&mut self, p: BvPred, a: TermId, b: TermId) -> TermId {
        let (Sort::Bv(wa), Sort::Bv(wb)) = (self.sort(a), self.sort(b)) else {
            panic!("pred {p:?}: operands must be bit vectors");
        };
        assert_eq!(wa, wb, "pred {p:?}: width mismatch");
        if let (Some(x), Some(y)) = (self.as_bv_const(a), self.as_bv_const(b)) {
            return self.bool_const(p.eval(x, y, wa));
        }
        if a == b {
            return self.bool_const(matches!(p, BvPred::Ule | BvPred::Sle));
        }
        self.intern(TermKind::Pred(p, a, b), Sort::Bool)
    }

    /// Evaluates `t` under an assignment of values to variables. Variables
    /// missing from `env` default to 0/false.
    pub fn eval(&self, t: TermId, env: &HashMap<VarIdx, u64>) -> Value {
        let mut memo: HashMap<TermId, Value> = HashMap::new();
        self.eval_memo(t, env, &mut memo)
    }

    fn eval_memo(
        &self,
        t: TermId,
        env: &HashMap<VarIdx, u64>,
        memo: &mut HashMap<TermId, Value>,
    ) -> Value {
        if let Some(&v) = memo.get(&t) {
            return v;
        }
        let v = match self.kind(t) {
            TermKind::BoolConst(b) => Value::Bool(*b),
            TermKind::BvConst { value, .. } => Value::Bv(*value),
            TermKind::Var(v) => {
                let raw = env.get(v).copied().unwrap_or(0);
                match self.var_sort(*v) {
                    Sort::Bool => Value::Bool(raw != 0),
                    Sort::Bv(w) => Value::Bv(raw & mask(w)),
                }
            }
            TermKind::Not(x) => Value::Bool(!self.eval_memo(*x, env, memo).as_bool()),
            TermKind::And(xs) => {
                let xs = xs.clone();
                Value::Bool(xs.iter().all(|&x| self.eval_memo(x, env, memo).as_bool()))
            }
            TermKind::Or(xs) => {
                let xs = xs.clone();
                Value::Bool(xs.iter().any(|&x| self.eval_memo(x, env, memo).as_bool()))
            }
            TermKind::Eq(a, b) => {
                let (a, b) = (*a, *b);
                let va = self.eval_memo(a, env, memo);
                let vb = self.eval_memo(b, env, memo);
                Value::Bool(va == vb)
            }
            TermKind::Ite {
                cond,
                then_t,
                else_t,
            } => {
                let (c, tt, ee) = (*cond, *then_t, *else_t);
                if self.eval_memo(c, env, memo).as_bool() {
                    self.eval_memo(tt, env, memo)
                } else {
                    self.eval_memo(ee, env, memo)
                }
            }
            TermKind::Bv(op, a, b) => {
                let (op, a, b) = (*op, *a, *b);
                let w = self.width(t);
                let va = self.eval_memo(a, env, memo).as_bv();
                let vb = self.eval_memo(b, env, memo).as_bv();
                Value::Bv(op.eval(va, vb, w))
            }
            TermKind::Pred(p, a, b) => {
                let (p, a, b) = (*p, *a, *b);
                let w = self.width(a);
                let va = self.eval_memo(a, env, memo).as_bv();
                let vb = self.eval_memo(b, env, memo).as_bv();
                Value::Bool(p.eval(va, vb, w))
            }
        };
        memo.insert(t, v);
        v
    }

    /// The children of a term, in a fixed order.
    pub fn children(&self, t: TermId) -> Vec<TermId> {
        match self.kind(t) {
            TermKind::BoolConst(_) | TermKind::BvConst { .. } | TermKind::Var(_) => vec![],
            TermKind::Not(x) => vec![*x],
            TermKind::And(xs) | TermKind::Or(xs) => xs.clone(),
            TermKind::Eq(a, b) => vec![*a, *b],
            TermKind::Ite {
                cond,
                then_t,
                else_t,
            } => vec![*cond, *then_t, *else_t],
            TermKind::Bv(_, a, b) | TermKind::Pred(_, a, b) => vec![*a, *b],
        }
    }

    /// Number of distinct nodes reachable from `t` (shared sub-DAG size).
    pub fn dag_size(&self, t: TermId) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![t];
        while let Some(x) = stack.pop() {
            if seen.insert(x) {
                stack.extend(self.children(x));
            }
        }
        seen.len()
    }

    /// Size of the fully expanded syntax tree of `t` — the "condition size"
    /// a non-sharing representation (the conventional design's cloned
    /// formulas) would pay. Saturates at `u64::MAX`.
    pub fn tree_size(&self, t: TermId) -> u64 {
        let mut memo: HashMap<TermId, u64> = HashMap::new();
        self.tree_size_memo(t, &mut memo)
    }

    fn tree_size_memo(&self, t: TermId, memo: &mut HashMap<TermId, u64>) -> u64 {
        if let Some(&s) = memo.get(&t) {
            return s;
        }
        let mut total: u64 = 1;
        for c in self.children(t) {
            total = total.saturating_add(self.tree_size_memo(c, memo));
        }
        memo.insert(t, total);
        total
    }

    /// Free variables of `t` (sorted, deduplicated).
    pub fn free_vars(&self, t: TermId) -> Vec<VarIdx> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        let mut stack = vec![t];
        while let Some(x) = stack.pop() {
            if !seen.insert(x) {
                continue;
            }
            if let TermKind::Var(v) = self.kind(x) {
                out.push(*v);
            }
            stack.extend(self.children(x));
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Rebuilds `t` with variables substituted per `map` (variables absent
    /// from the map are kept). Simplifying constructors re-run, so the
    /// result may be smaller than the input.
    pub fn substitute(&mut self, t: TermId, map: &HashMap<VarIdx, TermId>) -> TermId {
        let mut memo: HashMap<TermId, TermId> = HashMap::new();
        self.substitute_memo(t, map, &mut memo)
    }

    fn substitute_memo(
        &mut self,
        t: TermId,
        map: &HashMap<VarIdx, TermId>,
        memo: &mut HashMap<TermId, TermId>,
    ) -> TermId {
        if let Some(&r) = memo.get(&t) {
            return r;
        }
        let r = match self.kind(t).clone() {
            TermKind::Var(v) => map.get(&v).copied().unwrap_or(t),
            TermKind::BoolConst(_) | TermKind::BvConst { .. } => t,
            TermKind::Not(x) => {
                let x = self.substitute_memo(x, map, memo);
                self.not(x)
            }
            TermKind::And(xs) => {
                let xs: Vec<TermId> = xs
                    .iter()
                    .map(|&x| self.substitute_memo(x, map, memo))
                    .collect();
                self.and(&xs)
            }
            TermKind::Or(xs) => {
                let xs: Vec<TermId> = xs
                    .iter()
                    .map(|&x| self.substitute_memo(x, map, memo))
                    .collect();
                self.or(&xs)
            }
            TermKind::Eq(a, b) => {
                let a = self.substitute_memo(a, map, memo);
                let b = self.substitute_memo(b, map, memo);
                self.eq(a, b)
            }
            TermKind::Ite {
                cond,
                then_t,
                else_t,
            } => {
                let c = self.substitute_memo(cond, map, memo);
                let tt = self.substitute_memo(then_t, map, memo);
                let ee = self.substitute_memo(else_t, map, memo);
                self.ite(c, tt, ee)
            }
            TermKind::Bv(op, a, b) => {
                let a = self.substitute_memo(a, map, memo);
                let b = self.substitute_memo(b, map, memo);
                self.bv(op, a, b)
            }
            TermKind::Pred(p, a, b) => {
                let a = self.substitute_memo(a, map, memo);
                let b = self.substitute_memo(b, map, memo);
                self.pred(p, a, b)
            }
        };
        memo.insert(t, r);
        r
    }

    /// Renders a term as an S-expression (for diagnostics and tests).
    pub fn display(&self, t: TermId) -> String {
        match self.kind(t) {
            TermKind::BoolConst(b) => b.to_string(),
            TermKind::BvConst { value, width } => format!("#x{value:x}:{width}"),
            TermKind::Var(v) => self.var_name(*v).to_owned(),
            TermKind::Not(x) => format!("(not {})", self.display(*x)),
            TermKind::And(xs) => {
                let parts: Vec<String> = xs.iter().map(|&x| self.display(x)).collect();
                format!("(and {})", parts.join(" "))
            }
            TermKind::Or(xs) => {
                let parts: Vec<String> = xs.iter().map(|&x| self.display(x)).collect();
                format!("(or {})", parts.join(" "))
            }
            TermKind::Eq(a, b) => format!("(= {} {})", self.display(*a), self.display(*b)),
            TermKind::Ite {
                cond,
                then_t,
                else_t,
            } => format!(
                "(ite {} {} {})",
                self.display(*cond),
                self.display(*then_t),
                self.display(*else_t)
            ),
            TermKind::Bv(op, a, b) => {
                format!("({op:?} {} {})", self.display(*a), self.display(*b))
            }
            TermKind::Pred(p, a, b) => {
                format!("({p:?} {} {})", self.display(*a), self.display(*b))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_shares_nodes() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(32));
        let y = p.var("y", Sort::Bv(32));
        let a = p.bv(BvOp::Add, x, y);
        let b = p.bv(BvOp::Add, y, x); // commutative normalization
        assert_eq!(a, b);
    }

    #[test]
    fn constant_folding() {
        let mut p = TermPool::new();
        let a = p.bv_const(7, 32);
        let b = p.bv_const(5, 32);
        let s = p.bv(BvOp::Add, a, b);
        assert_eq!(p.as_bv_const(s), Some(12));
        let lt = p.pred(BvPred::Ult, b, a);
        assert_eq!(p.as_bool_const(lt), Some(true));
    }

    #[test]
    fn unit_laws() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(32));
        let zero = p.bv_const(0, 32);
        let one = p.bv_const(1, 32);
        assert_eq!(p.bv(BvOp::Add, x, zero), x);
        assert_eq!(p.bv(BvOp::Mul, x, one), x);
        assert_eq!(p.bv(BvOp::Mul, x, zero), zero);
        assert_eq!(p.bv(BvOp::Sub, x, x), zero);
        assert_eq!(p.bv(BvOp::Xor, x, x), zero);
    }

    #[test]
    fn and_or_normalization() {
        let mut p = TermPool::new();
        let a = p.var("a", Sort::Bool);
        let b = p.var("b", Sort::Bool);
        let t = p.tt();
        let f = p.ff();
        assert_eq!(p.and(&[a, t, a]), a);
        assert_eq!(p.and(&[a, f]), f);
        assert_eq!(p.or(&[a, f, a]), a);
        assert_eq!(p.or(&[a, t]), t);
        let na = p.not(a);
        assert_eq!(p.and(&[a, b, na]), f);
        assert_eq!(p.or(&[a, b, na]), t);
        // Flattening: and(a, and(a, b)) == and(a, b)
        let ab = p.and2(a, b);
        assert_eq!(p.and2(a, ab), ab);
    }

    #[test]
    fn not_involution() {
        let mut p = TermPool::new();
        let a = p.var("a", Sort::Bool);
        let na = p.not(a);
        assert_eq!(p.not(na), a);
    }

    #[test]
    fn eq_bool_shortcuts() {
        let mut p = TermPool::new();
        let a = p.var("a", Sort::Bool);
        let t = p.tt();
        let f = p.ff();
        assert_eq!(p.eq(a, t), a);
        let e = p.eq(a, f);
        assert_eq!(e, p.not(a));
        assert_eq!(p.eq(a, a), p.tt());
    }

    #[test]
    fn ite_simplifications() {
        let mut p = TermPool::new();
        let c = p.var("c", Sort::Bool);
        let x = p.var("x", Sort::Bv(8));
        let y = p.var("y", Sort::Bv(8));
        let t = p.tt();
        assert_eq!(p.ite(t, x, y), x);
        assert_eq!(p.ite(c, x, x), x);
        let nc = p.not(c);
        assert_eq!(p.ite(nc, x, y), p.ite(c, y, x));
    }

    #[test]
    fn eval_agrees_with_ops() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(32));
        let y = p.var("y", Sort::Bv(32));
        let TermKind::Var(vx) = *p.kind(x) else {
            unreachable!()
        };
        let TermKind::Var(vy) = *p.kind(y) else {
            unreachable!()
        };
        let sum = p.bv(BvOp::Add, x, y);
        let cmp = p.pred(BvPred::Slt, sum, x);
        let mut env = HashMap::new();
        env.insert(vx, 0xffff_ffff); // -1 signed
        env.insert(vy, 5u64);
        assert_eq!(p.eval(sum, &env), Value::Bv(4));
        assert_eq!(p.eval(cmp, &env), Value::Bool(false)); // 4 < -1 signed? no
    }

    #[test]
    fn substitution_resimplifies() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(32));
        let y = p.var("y", Sort::Bv(32));
        let TermKind::Var(vx) = *p.kind(x) else {
            unreachable!()
        };
        let sum = p.bv(BvOp::Add, x, y);
        let zero = p.bv_const(0, 32);
        let mut map = HashMap::new();
        map.insert(vx, zero);
        assert_eq!(p.substitute(sum, &map), y);
    }

    #[test]
    fn sizes_distinguish_dag_and_tree() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(32));
        // t = (x+x); u = t+t; DAG has 3 nodes, tree has 7.
        let t = p.bv(BvOp::Add, x, x);
        let u = p.bv(BvOp::Add, t, t);
        assert_eq!(p.dag_size(u), 3);
        assert_eq!(p.tree_size(u), 7);
    }

    #[test]
    fn free_vars_collects() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(8));
        let y = p.var("y", Sort::Bv(8));
        let c = p.bv_const(3, 8);
        let t1 = p.bv(BvOp::Mul, x, c);
        let t = p.bv(BvOp::Add, t1, y);
        assert_eq!(p.free_vars(t).len(), 2);
    }

    #[test]
    fn signed_helpers() {
        assert_eq!(to_signed(0xff, 8), -1);
        assert_eq!(to_signed(0x7f, 8), 127);
        assert_eq!(mask(8), 0xff);
        assert_eq!(mask(64), u64::MAX);
    }

    #[test]
    fn ashr_sign_extension() {
        assert_eq!(BvOp::Ashr.eval(0x80, 1, 8), 0xc0);
        assert_eq!(BvOp::Ashr.eval(0x80, 100, 8), 0xff);
        assert_eq!(BvOp::Ashr.eval(0x40, 100, 8), 0);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(8));
        let y = p.var("y", Sort::Bv(16));
        p.bv(BvOp::Add, x, y);
    }
}

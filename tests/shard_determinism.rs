//! Partitioned scans must be invisible in the output.
//!
//! `fusion::shard::analyze_sharded` splits the call graph into K
//! shards, runs each against an on-disk (or in-memory) snapshot with
//! only its closure materialized, and replays the merged outcomes over
//! the full program. None of that may reach the user: on arbitrary
//! generated multi-module programs, the sharded report must be
//! *byte-identical* — same checkers, sources, sinks, verdicts, witness
//! paths, and inter-procedural links, in the same order — to the
//! unsharded pipeline, across K ∈ {1, 2, 4, 8}, thread counts 1–8,
//! every cache/absint/compact/incremental/egraph corner exercised here,
//! and both the in-process and the multi-process (`--shard-workers`)
//! coordinators. And the merge must be a *pure replay*: zero solver
//! queries after the shards hand in their outcomes.

use fusion::cache::VerdictCache;
use fusion::checkers::CheckerSet;
use fusion::engine::{
    analyze_multi_streaming_with_cache, AnalysisOptions, Feasibility, FeasibilityEngine,
    MultiAnalysisRun,
};
use fusion::graph_solver::FusionSolver;
use fusion::shard::analyze_sharded;
use fusion::slice_cache::SliceCache;
use fusion_ir::{compile, CompileOptions, Program};
use fusion_pdg::graph::Pdg;
use fusion_pdg::paths::Link;
use fusion_smt::solver::SolverConfig;
use fusion_workloads::{generate_multi, GenConfig};
use proptest::prelude::*;
use std::sync::Arc;

/// Everything that reaches the user, in a comparable form, per checker —
/// including the inter-procedural links of the witness path.
type ReportKey = (
    usize,
    fusion_pdg::graph::Vertex,
    fusion_pdg::graph::Vertex,
    Feasibility,
    Vec<fusion_pdg::graph::Vertex>,
    Vec<Link>,
);

fn keys(run: &MultiAnalysisRun) -> Vec<ReportKey> {
    run.checkers
        .iter()
        .enumerate()
        .flat_map(|(i, b)| {
            b.reports.iter().map(move |r| {
                (
                    i,
                    r.source,
                    r.sink,
                    r.verdict,
                    r.path.nodes.clone(),
                    r.path.links.clone(),
                )
            })
        })
        .collect()
}

fn factory(incremental: bool, egraph: bool) -> impl Fn() -> Box<dyn FeasibilityEngine> + Sync {
    move || {
        let mut cfg = SolverConfig::default();
        cfg.egraph.enabled = egraph;
        let mut engine = FusionSolver::new(cfg);
        engine.incremental = incremental;
        Box::new(engine)
    }
}

fn options(use_cache: bool, absint: bool, compact: bool) -> AnalysisOptions {
    let mut o = if use_cache {
        AnalysisOptions::new()
    } else {
        AnalysisOptions::without_cache()
    };
    o = o.with_slice_cache(Arc::new(SliceCache::new()));
    o.absint = absint;
    o.compact = compact;
    o
}

fn compile_src(src: &str) -> Program {
    compile(src, CompileOptions::default()).expect("compile")
}

fn subject(seed: u64, modules: usize) -> String {
    let cfg = GenConfig {
        seed,
        functions: 6,
        ..Default::default()
    };
    generate_multi(&cfg, modules)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random multi-module program: the sharded report equals the
    /// unsharded streaming report at every K, thread count, and flag
    /// corner — and the merge replays without a single solver query.
    #[test]
    fn sharded_report_equals_unsharded(seed in 0u64..100_000, modules in 2usize..4) {
        let src = subject(seed, modules);
        let program = compile_src(&src);
        let pdg = Pdg::build(&program);
        let set = CheckerSet::new(fusion::checkers::default_checkers());
        let non_extern = program.functions.iter().filter(|f| !f.is_extern).count() as u64;

        // (use_cache, absint, compact, incremental, egraph): the full
        // default stack, everything off, and a mixed corner.
        let configs = [
            (true, true, true, true, true),
            (false, false, false, false, false),
            (true, false, true, false, true),
        ];
        for (use_cache, absint, compact, incremental, egraph) in configs {
            for threads in [1usize, 2, 4, 8] {
                let base_opts = options(use_cache, absint, compact);
                let base_cache = VerdictCache::new();
                let base = analyze_multi_streaming_with_cache(
                    &program, &pdg, &set, &factory(incremental, egraph), threads,
                    &base_opts, use_cache.then_some(&base_cache),
                );
                let base_keys = keys(&base);
                for k in [1usize, 2, 4, 8] {
                    let opts = options(use_cache, absint, compact);
                    let sharded_cache = VerdictCache::new();
                    let sharded = analyze_sharded(
                        &program, &set, &factory(incremental, egraph), threads,
                        &opts, use_cache.then_some(&sharded_cache), k, None,
                    ).expect("sharded scan");
                    prop_assert_eq!(
                        &base_keys, &keys(&sharded.run),
                        "sharded diverged at seed {} modules {} k {} threads {} \
                         cache={} absint={} compact={} incremental={} egraph={}",
                        seed, modules, k, threads,
                        use_cache, absint, compact, incremental, egraph
                    );
                    prop_assert_eq!(
                        sharded.run.queries, 0,
                        "the merge replay must not query the solver"
                    );
                    prop_assert_eq!(sharded.run.stages.shards, k as u64);
                    prop_assert_eq!(sharded.run.stages.summaries_exported, non_extern);
                    // Demand-driven imports: a shard imports at most its
                    // closure minus what it owns — never the program.
                    prop_assert!(
                        sharded.run.stages.summaries_imported < non_extern.max(1) * k as u64,
                        "imported {} summaries with {} functions at k={}",
                        sharded.run.stages.summaries_imported, non_extern, k
                    );
                }
            }
        }
    }

    /// Routing the snapshot through a real file changes nothing but the
    /// bytes-read counter.
    #[test]
    fn on_disk_snapshot_matches_in_memory(seed in 0u64..100_000) {
        let src = subject(seed, 2);
        let program = compile_src(&src);
        let set = CheckerSet::new(fusion::checkers::default_checkers());
        let dir = std::env::temp_dir().join(format!("fusion-shard-det-{}-{seed}", std::process::id()));
        let mem = analyze_sharded(
            &program, &set, &factory(true, true), 2,
            &options(true, true, true), None, 4, None,
        ).expect("in-memory");
        let disk = analyze_sharded(
            &program, &set, &factory(true, true), 2,
            &options(true, true, true), None, 4, Some(dir.as_path()),
        ).expect("on-disk");
        prop_assert_eq!(keys(&mem.run), keys(&disk.run), "seed {}", seed);
        prop_assert!(disk.run.stages.snapshot_bytes_read > 0);
        prop_assert!(dir.join("scan.fsnp").is_file(), "snapshot file materialized");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The multi-process coordinator (`--shards K --shard-workers N`) hands
/// jobs to real `fusion-scan --shard-worker` child processes and must
/// still match the unsharded and in-process sharded reports exactly,
/// finding for finding.
#[test]
fn multiprocess_sharded_scan_matches_unsharded() {
    if fusion_cli::shards::worker_binary().is_err() {
        eprintln!("skipping: no fusion-scan binary found (set FUSION_SCAN_BIN)");
        return;
    }
    let src = subject(77, 3);
    let finding_key = |r: &fusion_cli::ScanReport| {
        r.findings
            .iter()
            .map(|f| {
                (
                    f.checker.clone(),
                    f.source_function.clone(),
                    f.sink_function.clone(),
                    f.verdict.clone(),
                    f.path_length,
                )
            })
            .collect::<Vec<_>>()
    };
    for threads in [1usize, 4] {
        let base = fusion_cli::scan_source(
            &src,
            &fusion_cli::Options {
                threads,
                ..Default::default()
            },
        )
        .expect("unsharded scan");
        for k in [1usize, 2, 4, 8] {
            let inproc = fusion_cli::scan_source(
                &src,
                &fusion_cli::Options {
                    threads,
                    shards: k,
                    ..Default::default()
                },
            )
            .expect("in-process sharded scan");
            let multi = fusion_cli::scan_source(
                &src,
                &fusion_cli::Options {
                    threads,
                    shards: k,
                    shard_workers: 2,
                    ..Default::default()
                },
            )
            .expect("multi-process sharded scan");
            assert_eq!(
                finding_key(&base),
                finding_key(&inproc),
                "in-process k={k} threads={threads}"
            );
            assert_eq!(
                finding_key(&base),
                finding_key(&multi),
                "multi-process k={k} threads={threads}"
            );
            assert_eq!(multi.shards, k as u64);
            assert!(multi.snapshot_bytes_written > 0);
            assert!(multi.snapshot_bytes_read > 0);
        }
    }
}

//! # fusion-crit
//!
//! A minimal stand-in for the parts of the `criterion` crate this
//! workspace uses. The workspace renames this crate to `criterion` (see
//! the root `Cargo.toml`), so bench files keep the idiomatic
//! `use criterion::{criterion_group, criterion_main, Criterion};` while
//! building in an environment with no registry access.
//!
//! The harness is deliberately simple: each benchmark is timed with a
//! fixed number of wall-clock samples (default 20, see
//! [`BenchmarkGroup::sample_size`]) after a warm-up run, and the median,
//! minimum, and maximum per-iteration times are printed. There is no
//! statistical regression analysis. Benches honor the standard
//! `--bench` / `--test` harness flags enough for `cargo bench` and
//! `cargo test --benches` to run them.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Formats a per-iteration duration with an adaptive unit.
fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Opaque benchmark identifier (`BenchmarkId::from_parameter(...)`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Build an id whose display form is the parameter itself.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: param.to_string(),
        }
    }

    /// Build an id from a function name and a parameter.
    pub fn new(function: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), param),
        }
    }
}

/// Anything acceptable as a benchmark name.
pub trait IntoBenchmarkId {
    /// Render the display name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_name(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_name(self) -> String {
        self.name
    }
}

/// The per-benchmark timing loop handle.
pub struct Bencher {
    samples: usize,
    /// Collected per-sample durations (one closure call per sample).
    results: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`: one warm-up call, then `samples` timed calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (also primes caches/allocator).
        let _ = routine();
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            self.results.push(start.elapsed());
            drop(out);
        }
    }
}

fn run_one(name: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        results: Vec::with_capacity(samples),
    };
    f(&mut b);
    if b.results.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    b.results.sort();
    let median = b.results[b.results.len() / 2];
    let min = b.results[0];
    let max = b.results[b.results.len() - 1];
    println!(
        "{name:<40} median {:>12}   min {:>12}   max {:>12}   ({} samples)",
        fmt_duration(median),
        fmt_duration(min),
        fmt_duration(max),
        b.results.len()
    );
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: usize,
    criterion: &'c Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_name());
        if self.criterion.matches(&label) {
            run_one(&label, self.effective_samples(), f);
        }
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_name());
        if self.criterion.matches(&label) {
            run_one(&label, self.effective_samples(), |b| f(b, input));
        }
        self
    }

    /// Finish the group (upstream flushes reports here; we print a blank line).
    pub fn finish(&mut self) {
        println!();
    }

    fn effective_samples(&self) -> usize {
        if self.criterion.quick {
            1
        } else {
            self.samples
        }
    }
}

/// The top-level harness handle.
pub struct Criterion {
    filter: Option<String>,
    /// Smoke mode: one sample per bench (used when running under
    /// `cargo test --benches`).
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Parse the arguments cargo's bench/test harness protocol passes.
        // `cargo bench -- <filter>` → time normally, restricted to matches.
        // `cargo test --benches` passes `--test` (smoke mode: 1 sample).
        let mut filter = None;
        let mut quick = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => quick = true,
                "--bench" => {}
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion { filter, quick }
    }
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 20,
            criterion: self,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let label = id.into_name();
        if self.matches(&label) {
            let samples = if self.quick { 1 } else { 20 };
            run_one(&label, samples, f);
        }
        self
    }

    fn matches(&self, label: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| label.contains(f))
    }
}

/// An opaque value the optimizer is prevented from reasoning about.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declare a group of benchmark functions, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench entry point, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher {
            samples: 5,
            results: Vec::new(),
        };
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(b.results.len(), 5);
        assert_eq!(calls, 6, "warm-up plus five timed samples");
    }

    #[test]
    fn group_runs_and_respects_sample_size() {
        let mut c = Criterion {
            filter: None,
            quick: false,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("inner", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 4, "warm-up plus three samples");
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut c = Criterion {
            filter: Some("wanted".into()),
            quick: false,
        };
        let mut ran = false;
        c.bench_function("other", |b| {
            ran = true;
            b.iter(|| ());
        });
        assert!(!ran);
        c.bench_function("wanted/case", |b| b.iter(|| ran = true));
        assert!(ran);
    }

    #[test]
    fn ids_render_names() {
        assert_eq!(BenchmarkId::from_parameter("gcc").into_name(), "gcc");
        assert_eq!(BenchmarkId::new("compile", 3).into_name(), "compile/3");
    }
}

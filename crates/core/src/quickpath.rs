//! Quick paths: entry→exit value summaries on the dependence graph.
//!
//! §2 of the paper: "we can establish a quick path from the vertex `y=2x`
//! to the vertex `return z`. The quick path allows the same propagation
//! from the variable `b` to the branch condition without going through the
//! function `bar`." §3.2.3 uses the same idea for inter-procedural
//! preprocessing (Fig. 9): constant and affine return values let the solver
//! delete call/return parenthesis labels without cloning the callee.
//!
//! A [`RetSummary`] states what a function's return value is as a function
//! of its parameters, computed once per function (memoized — never per call
//! site) by value propagation over the gated SSA graph. Because the IR is
//! pure and total, these equalities hold unconditionally.

use fusion_ir::ssa::{DefKind, FuncId, Op, Program, VarId};

/// What a function returns, as seen through the quick path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetSummary {
    /// The return value is this constant.
    Const(u32),
    /// `ret = mul · param[index] + add` (wrapping 32-bit arithmetic).
    /// `mul = 1, add = 0` is the identity.
    Affine {
        /// Parameter position.
        index: usize,
        /// Multiplier.
        mul: u32,
        /// Offset.
        add: u32,
    },
    /// No quick path: the callee must be visited (cloned) to reason about
    /// its return value.
    Opaque,
}

/// The value summary of an individual definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ValSummary {
    Const(u32),
    Affine { index: usize, mul: u32, add: u32 },
    Opaque,
}

impl ValSummary {
    fn param(index: usize) -> Self {
        ValSummary::Affine {
            index,
            mul: 1,
            add: 0,
        }
    }
}

/// Computes the return summary of every function, bottom-up over the
/// (acyclic, post-unrolling) call graph.
pub fn ret_summaries(program: &Program) -> Vec<RetSummary> {
    let n = program.functions.len();
    let mut out = vec![None::<RetSummary>; n];
    for f in &program.functions {
        summary_of(program, f.id, &mut out);
    }
    out.into_iter()
        .map(|s| s.expect("all functions summarized"))
        .collect()
}

fn summary_of(program: &Program, fid: FuncId, memo: &mut Vec<Option<RetSummary>>) -> RetSummary {
    if let Some(s) = memo[fid.index()] {
        return s;
    }
    // Break (should-be-impossible) cycles conservatively.
    memo[fid.index()] = Some(RetSummary::Opaque);
    let func = program.func(fid);
    let summary = match func.ret {
        None => RetSummary::Opaque, // extern
        Some(ret) => {
            let mut vals: Vec<Option<ValSummary>> = vec![None; func.defs.len()];
            let s = value_of(program, fid, ret, &mut vals, memo);
            match s {
                ValSummary::Const(c) => RetSummary::Const(c),
                ValSummary::Affine { index, mul, add } => RetSummary::Affine { index, mul, add },
                ValSummary::Opaque => RetSummary::Opaque,
            }
        }
    };
    memo[fid.index()] = Some(summary);
    summary
}

fn value_of(
    program: &Program,
    fid: FuncId,
    var: VarId,
    vals: &mut Vec<Option<ValSummary>>,
    memo: &mut Vec<Option<RetSummary>>,
) -> ValSummary {
    if let Some(v) = vals[var.index()] {
        return v;
    }
    let func = program.func(fid);
    let v = match &func.def(var).kind {
        DefKind::Param { index } => ValSummary::param(*index),
        DefKind::Const { value, .. } => ValSummary::Const(*value),
        DefKind::Copy { src } | DefKind::Return { src } => value_of(program, fid, *src, vals, memo),
        DefKind::Ite { then_v, else_v, .. } => {
            let a = value_of(program, fid, *then_v, vals, memo);
            let b = value_of(program, fid, *else_v, vals, memo);
            if a == b && a != ValSummary::Opaque {
                a
            } else {
                ValSummary::Opaque
            }
        }
        DefKind::Branch { .. } => ValSummary::Opaque,
        DefKind::Binary { op, lhs, rhs } => {
            let a = value_of(program, fid, *lhs, vals, memo);
            let b = value_of(program, fid, *rhs, vals, memo);
            combine(*op, a, b)
        }
        DefKind::Call { callee, args, .. } => {
            match summary_of(program, *callee, memo) {
                RetSummary::Const(c) => ValSummary::Const(c),
                RetSummary::Affine { index, mul, add } => {
                    // Compose with the argument's own summary.
                    match args
                        .get(index)
                        .map(|a| value_of(program, fid, *a, vals, memo))
                    {
                        Some(ValSummary::Const(c)) => {
                            ValSummary::Const(mul.wrapping_mul(c).wrapping_add(add))
                        }
                        Some(ValSummary::Affine {
                            index: i,
                            mul: m,
                            add: a,
                        }) => ValSummary::Affine {
                            index: i,
                            mul: mul.wrapping_mul(m),
                            add: mul.wrapping_mul(a).wrapping_add(add),
                        },
                        _ => ValSummary::Opaque,
                    }
                }
                RetSummary::Opaque => ValSummary::Opaque,
            }
        }
    };
    vals[var.index()] = Some(v);
    v
}

fn combine(op: Op, a: ValSummary, b: ValSummary) -> ValSummary {
    use ValSummary::*;
    match (op, a, b) {
        (_, Const(x), Const(y)) => Const(op.eval(x, y)),
        (Op::Add, Affine { index, mul, add }, Const(c))
        | (Op::Add, Const(c), Affine { index, mul, add }) => Affine {
            index,
            mul,
            add: add.wrapping_add(c),
        },
        (Op::Sub, Affine { index, mul, add }, Const(c)) => Affine {
            index,
            mul,
            add: add.wrapping_sub(c),
        },
        (Op::Sub, Const(c), Affine { index, mul, add }) => Affine {
            index,
            mul: 0u32.wrapping_sub(mul),
            add: c.wrapping_sub(add),
        },
        (Op::Mul, Affine { index, mul, add }, Const(c))
        | (Op::Mul, Const(c), Affine { index, mul, add }) => Affine {
            index,
            mul: mul.wrapping_mul(c),
            add: add.wrapping_mul(c),
        },
        (Op::Shl, Affine { index, mul, add }, Const(c)) if c < 32 => Affine {
            index,
            mul: mul.wrapping_shl(c),
            add: add.wrapping_shl(c),
        },
        _ => Opaque,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_ir::{compile, CompileOptions};

    fn summaries(src: &str) -> (Program, Vec<RetSummary>) {
        let p = compile(src, CompileOptions::default()).expect("compile");
        let s = ret_summaries(&p);
        (p, s)
    }

    fn of<'a>(p: &Program, s: &'a [RetSummary], name: &str) -> &'a RetSummary {
        &s[p.func_by_name(name).unwrap().id.index()]
    }

    #[test]
    fn paper_bar_is_affine_times_two() {
        let (p, s) = summaries("fn bar(x) { let y = x * 2; let z = y; return z; }");
        assert_eq!(
            *of(&p, &s, "bar"),
            RetSummary::Affine {
                index: 0,
                mul: 2,
                add: 0
            }
        );
    }

    #[test]
    fn identity_and_const() {
        let (p, s) = summaries("fn id(x) { return x; } fn seven() { return 7; }");
        assert_eq!(
            *of(&p, &s, "id"),
            RetSummary::Affine {
                index: 0,
                mul: 1,
                add: 0
            }
        );
        assert_eq!(*of(&p, &s, "seven"), RetSummary::Const(7));
    }

    #[test]
    fn composition_through_calls() {
        // h(x) = g(f(x)) = 2(x + 1) + 3 = 2x + 5.
        let (p, s) = summaries(
            "fn f(x) { return x + 1; }\n\
             fn g(x) { return x * 2 + 3; }\n\
             fn h(x) { return g(f(x)); }",
        );
        assert_eq!(
            *of(&p, &s, "h"),
            RetSummary::Affine {
                index: 0,
                mul: 2,
                add: 5
            }
        );
    }

    #[test]
    fn branching_is_opaque_unless_arms_agree() {
        let (p, s) = summaries(
            "fn pick(x) { if (x > 0) { return x + 1; } return x; }\n\
             fn same(x) { let r = 5; if (x > 0) { r = 5; } return r; }\n\
             fn early(x) { if (x > 0) { return 5; } return 5; }",
        );
        assert_eq!(*of(&p, &s, "pick"), RetSummary::Opaque);
        // Both merge arms agree: the summary sees through the ite.
        assert_eq!(*of(&p, &s, "same"), RetSummary::Const(5));
        // Early returns thread `__ret_val` (initially 0) through the merge
        // chain, so the value summary is conservatively opaque even though
        // the function always returns 5.
        assert_eq!(*of(&p, &s, "early"), RetSummary::Opaque);
    }

    #[test]
    fn extern_and_extern_users_are_opaque() {
        let (p, s) = summaries("extern fn lib(x); fn f(x) { return lib(x); }");
        assert_eq!(*of(&p, &s, "lib"), RetSummary::Opaque);
        assert_eq!(*of(&p, &s, "f"), RetSummary::Opaque);
    }

    #[test]
    fn two_param_mix_is_opaque() {
        let (p, s) = summaries("fn f(x, y) { return x + y; }");
        assert_eq!(*of(&p, &s, "f"), RetSummary::Opaque);
    }

    #[test]
    fn shl_by_const_is_affine() {
        let (p, s) = summaries("fn f(x) { return (x << 3) + 1; }");
        assert_eq!(
            *of(&p, &s, "f"),
            RetSummary::Affine {
                index: 0,
                mul: 8,
                add: 1
            }
        );
    }

    #[test]
    fn summaries_validate_dynamically() {
        // Cross-check against the interpreter on a few inputs.
        let src = "fn f(x) { return x + 1; }\n\
                   fn g(x) { return x * 2 + 3; }\n\
                   fn h(x) { return g(f(x)); }";
        let (p, s) = summaries(src);
        let h = p.func_by_name("h").unwrap();
        let RetSummary::Affine { index, mul, add } = of(&p, &s, "h") else {
            panic!("expected affine")
        };
        for x in [0u32, 1, 7, u32::MAX] {
            let (ev, _) = fusion_ir::interp::eval_core(&p, h.id, &[x], 100_000).unwrap();
            let args = [x];
            let want = mul.wrapping_mul(args[*index]).wrapping_add(*add);
            assert_eq!(ev.ret, want, "x = {x}");
        }
    }
}

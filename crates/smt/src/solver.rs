//! The end-to-end SMT pipeline of Algorithm 3.
//!
//! `smt_solve(φ)`: preprocess (§4's pass list, [`crate::preprocess`]); if
//! the result is a constant, answer immediately — the paper reports 21% of
//! its 310k instances are decided here; otherwise bit-blast
//! ([`crate::bitblast`]) and run the CDCL SAT solver ([`crate::sat`]).
//! Every call carries a budget mirroring the paper's 10-second per-query
//! limit.

use crate::bitblast::blast;
use crate::egraph::{EGraphConfig, EGraphStats};
use crate::preprocess::preprocess_ext;
use crate::sat::{SatBudget, SatOutcome, SatSolver};
use crate::term::{Sort, TermId, TermPool, Value, VarIdx};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Configuration of one solver call.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverConfig {
    /// Wall-clock limit for the whole call (preprocessing + SAT).
    pub timeout: Option<Duration>,
    /// Conflict limit handed to the SAT backend.
    pub max_conflicts: Option<u64>,
    /// Skip the preprocessing phase entirely (used to model a solver
    /// deprived of the paper's optimizations in ablations).
    pub skip_preprocessing: bool,
    /// E-graph simplification leg of preprocessing (equality saturation +
    /// cost-based extraction, [`crate::egraph`]).
    pub egraph: EGraphConfig,
}

impl SolverConfig {
    /// The absolute deadline implied by [`SolverConfig::timeout`], anchored
    /// at `start`. Engines compute this once at the top of `check_paths` so
    /// the budget covers slicing / translation / instantiation too, not
    /// just the final SMT query.
    pub fn deadline_from(&self, start: Instant) -> Option<Instant> {
        self.timeout.map(|t| start + t)
    }

    /// A copy of this config whose timeout is shrunk to the wall-clock
    /// remaining until `deadline`. Returns `None` when the deadline has
    /// already passed — the caller must degrade to an unknown verdict
    /// instead of starting the query.
    pub fn with_remaining(&self, deadline: Option<Instant>) -> Option<SolverConfig> {
        match deadline {
            None => Some(*self),
            Some(d) => {
                let now = Instant::now();
                if now >= d {
                    None
                } else {
                    Some(SolverConfig {
                        timeout: Some(d - now),
                        ..*self
                    })
                }
            }
        }
    }
}

/// `true` once `deadline` (if any) has passed. Polled inside engine
/// instantiation loops so a stuck query degrades instead of stalling.
pub fn deadline_expired(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

/// A satisfying assignment for the *preprocessed* formula.
///
/// Variables eliminated during preprocessing (e.g. unconstrained ones) are
/// absent; by construction some value for them exists, but it is not
/// reconstructed. Bug-finding only consumes the sat/unsat verdict, so this
/// is sufficient — and it is exactly what the fused design needs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Model {
    values: HashMap<VarIdx, u64>,
}

impl Model {
    /// Builds a model from a variable → value map (used by the incremental
    /// session pipeline; the cold pipeline constructs it directly).
    pub(crate) fn from_values(values: HashMap<VarIdx, u64>) -> Model {
        Model { values }
    }

    /// The value assigned to `v`, if it survived preprocessing.
    pub fn value(&self, v: VarIdx) -> Option<u64> {
        self.values.get(&v).copied()
    }

    /// Number of assigned variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the model assigns no variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Evaluates a term under this model (unassigned variables read as 0).
    pub fn eval(&self, pool: &TermPool, t: TermId) -> Value {
        pool.eval(t, &self.values)
    }
}

/// The verdict of a solver call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
    /// Budget exhausted.
    Unknown,
}

impl SatResult {
    /// `true` for [`SatResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// `true` for [`SatResult::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, SatResult::Unsat)
    }
}

/// Statistics of one solver call (feeds the Fig. 11 harness).
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveStats {
    /// Whether preprocessing alone decided the query (no bit-blasting).
    pub preprocess_decided: bool,
    /// Fixpoint rounds spent in preprocessing.
    pub preprocess_rounds: u32,
    /// DAG size of the formula before preprocessing.
    pub size_before: usize,
    /// DAG size after preprocessing.
    pub size_after: usize,
    /// CNF clauses produced by bit-blasting (0 when decided early).
    pub cnf_clauses: usize,
    /// SAT conflicts.
    pub sat_conflicts: u64,
    /// SAT decisions.
    pub sat_decisions: u64,
    /// Total wall-clock duration of the call.
    pub duration: Duration,
    /// E-graph saturation counters (zeroed when the leg is disabled).
    pub egraph: EGraphStats,
}

/// Solves `formula` (Algorithm 3). Returns the verdict and call statistics.
///
/// # Panics
///
/// Panics if `formula` is not boolean-sorted.
pub fn smt_solve(
    pool: &mut TermPool,
    formula: TermId,
    config: &SolverConfig,
) -> (SatResult, SolveStats) {
    assert_eq!(
        pool.sort(formula),
        Sort::Bool,
        "smt_solve: formula must be Bool"
    );
    let start = Instant::now();
    let deadline = config.timeout.map(|t| start + t);
    let mut stats = SolveStats {
        size_before: pool.dag_size(formula),
        ..Default::default()
    };
    let processed = if config.skip_preprocessing {
        formula
    } else {
        let (pre, eg) = preprocess_ext(pool, formula, &config.egraph);
        stats.preprocess_rounds = pre.rounds;
        stats.egraph = eg;
        pre.term
    };
    stats.size_after = pool.dag_size(processed);
    if let Some(b) = pool.as_bool_const(processed) {
        stats.preprocess_decided = true;
        stats.duration = start.elapsed();
        let result = if b {
            SatResult::Sat(Model::default())
        } else {
            SatResult::Unsat
        };
        return (result, stats);
    }
    // Deadline check between stages: bit-blasting can itself be large, so
    // a call whose budget was consumed by preprocessing degrades to
    // Unknown here instead of stalling in `blast`.
    if deadline.is_some_and(|d| Instant::now() >= d) {
        stats.duration = start.elapsed();
        return (SatResult::Unknown, stats);
    }
    // Specific solver: bit-blast and hand to the SAT backend.
    let (cnf, map) = blast(pool, processed);
    stats.cnf_clauses = cnf.clauses.len();
    let budget = SatBudget {
        max_conflicts: config.max_conflicts,
        deadline,
    };
    let mut sat = SatSolver::new(&cnf);
    let outcome = sat.solve(budget);
    stats.sat_conflicts = sat.stats.conflicts;
    stats.sat_decisions = sat.stats.decisions;
    stats.duration = start.elapsed();
    let result = match outcome {
        SatOutcome::Sat(model) => {
            let mut values = HashMap::new();
            for v in pool.free_vars(processed) {
                if let Some(val) = map.value(v, &model) {
                    values.insert(v, val);
                }
            }
            SatResult::Sat(Model { values })
        }
        SatOutcome::Unsat => SatResult::Unsat,
        SatOutcome::Unknown => SatResult::Unknown,
    };
    (result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{BvOp, BvPred};

    #[test]
    fn decides_in_preprocessing() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(32));
        let y = p.var("y", Sort::Bv(32));
        let f = p.pred(BvPred::Slt, x, y);
        let (r, s) = smt_solve(&mut p, f, &SolverConfig::default());
        assert!(r.is_sat());
        assert!(s.preprocess_decided);
        assert_eq!(s.cnf_clauses, 0);
    }

    #[test]
    fn falls_through_to_sat() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(8));
        let c3 = p.bv_const(3, 8);
        let sq = p.bv(BvOp::Mul, x, x);
        let f = p.eq(sq, c3); // x² = 3 mod 256: no solution (3 mod 8 ≠ 0,1,4)
        let (r, s) = smt_solve(&mut p, f, &SolverConfig::default());
        assert!(r.is_unsat());
        assert!(!s.preprocess_decided);
        assert!(s.cnf_clauses > 0);
    }

    #[test]
    fn sat_model_satisfies_preprocessed_formula() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(8));
        let sq = p.bv(BvOp::Mul, x, x);
        let c4 = p.bv_const(4, 8);
        let f = p.eq(sq, c4);
        let (r, _) = smt_solve(&mut p, f, &SolverConfig::default());
        match r {
            SatResult::Sat(m) => {
                assert_eq!(m.eval(&p, f), Value::Bool(true));
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn unsat_conjunction() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(8));
        let c1 = p.bv_const(1, 8);
        let c2 = p.bv_const(2, 8);
        let e1 = p.eq(x, c1);
        let e2 = p.eq(x, c2);
        let f = p.and2(e1, e2);
        let (r, s) = smt_solve(&mut p, f, &SolverConfig::default());
        assert!(r.is_unsat());
        // Constant propagation alone decides this.
        assert!(s.preprocess_decided);
    }

    #[test]
    fn respects_conflict_budget() {
        // A multiplication constraint hard enough to need conflicts.
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(16));
        let y = p.var("y", Sort::Bv(16));
        let prod = p.bv(BvOp::Mul, x, y);
        let c = p.bv_const(0x8001, 16);
        let f1 = p.eq(prod, c);
        let two = p.bv_const(2, 16);
        let xg = p.pred(BvPred::Ult, two, x);
        let yg = p.pred(BvPred::Ult, two, y);
        let f = p.and(&[f1, xg, yg]);
        let cfg = SolverConfig {
            max_conflicts: Some(1),
            ..Default::default()
        };
        let (r, _) = smt_solve(&mut p, f, &cfg);
        // Either solved within one conflict or unknown — never wrong.
        if let SatResult::Sat(m) = &r {
            assert_eq!(m.eval(&p, f), Value::Bool(true));
        }
    }

    #[test]
    fn exhausted_timeout_degrades_to_unknown() {
        // A formula that survives preprocessing, solved with an
        // already-expired wall-clock budget: must answer Unknown, never
        // stall or guess.
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(16));
        let y = p.var("y", Sort::Bv(16));
        let prod = p.bv(BvOp::Mul, x, y);
        let c = p.bv_const(0x8001, 16);
        let f = p.eq(prod, c);
        let cfg = SolverConfig {
            timeout: Some(Duration::ZERO),
            ..Default::default()
        };
        let (r, s) = smt_solve(&mut p, f, &cfg);
        assert_eq!(r, SatResult::Unknown);
        assert!(!s.preprocess_decided);
    }

    #[test]
    fn skip_preprocessing_flag() {
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(8));
        let y = p.var("y", Sort::Bv(8));
        let f = p.pred(BvPred::Slt, x, y);
        let cfg = SolverConfig {
            skip_preprocessing: true,
            ..Default::default()
        };
        let (r, s) = smt_solve(&mut p, f, &cfg);
        assert!(r.is_sat());
        assert!(!s.preprocess_decided);
        assert!(s.cnf_clauses > 0);
    }
}

//! Pinpoint+AR: the abstraction-refinement baseline.
//!
//! "This AR method does not immediately compute a full path condition ...
//! it firstly computes and solves an intra-procedural condition and
//! gradually extends the condition by adding conditions from callers and
//! callees until the condition satisfiability can be decided." (§5.1)
//!
//! Dropping inter-procedural bindings *over-approximates* feasibility
//! (freed parameters and call results can take any value), so:
//!
//! * UNSAT at any abstraction level ⇒ truly infeasible (early exit);
//! * SAT at the *full* depth ⇒ truly feasible;
//! * SAT at a truncated depth ⇒ refine: include one more level of clones
//!   and solve again — the repeated solver invocations that make AR slow.

use fusion::engine::{CheckOutcome, Feasibility, FeasibilityEngine, SolveRecord};
use fusion::memory::{Category, MemoryAccountant, BYTES_PER_TERM_NODE};
use fusion_ir::ssa::{CallSiteId, DefKind, FuncId, Program};
use fusion_pdg::graph::Pdg;
use fusion_pdg::paths::DependencePath;
use fusion_pdg::slice::{compute_slice, Constraint, ConstraintKind, Slice};
use fusion_pdg::translate::{instance_var, truthy};
use fusion_smt::solver::{deadline_expired, smt_solve, SatResult, SolverConfig};
use fusion_smt::term::{TermId, TermPool};
use std::collections::{HashSet, VecDeque};

/// The abstraction-refinement engine.
#[derive(Debug)]
pub struct ArEngine {
    /// Per-refinement-iteration SMT budget.
    pub per_call: SolverConfig,
    /// Hard cap on refinement iterations (then Unknown).
    pub max_refinements: usize,
    /// Instance budget per iteration.
    pub max_instances: usize,
    memory: MemoryAccountant,
    records: Vec<SolveRecord>,
}

impl ArEngine {
    /// Creates the engine.
    pub fn new(per_call: SolverConfig) -> Self {
        Self {
            per_call,
            max_refinements: 16,
            max_instances: 1 << 14,
            memory: MemoryAccountant::new(),
            records: Vec::new(),
        }
    }

    /// Emits the condition truncated at context depth `depth`: instances
    /// with longer call strings are not materialized, leaving their
    /// interface variables free (the abstraction). Returns `(formula,
    /// instances, complete)` where `complete` means nothing was truncated.
    fn emit(
        program: &Program,
        slice: &Slice,
        pool: &mut TermPool,
        depth: usize,
        max_instances: usize,
    ) -> Option<(TermId, usize, bool)> {
        let mut parts: Vec<TermId> = Vec::new();
        let mut instances: HashSet<(Vec<CallSiteId>, FuncId)> = HashSet::new();
        let mut work: VecDeque<(Vec<CallSiteId>, FuncId)> = VecDeque::new();
        let mut complete = true;
        let schedule = |instances: &mut HashSet<(Vec<CallSiteId>, FuncId)>,
                        work: &mut VecDeque<(Vec<CallSiteId>, FuncId)>,
                        complete: &mut bool,
                        ctx: Vec<CallSiteId>,
                        f: FuncId| {
            if ctx.len() > depth {
                *complete = false; // truncated by the abstraction
                return;
            }
            if instances.insert((ctx.clone(), f)) {
                work.push_back((ctx, f));
            }
        };
        for Constraint { ctx, func, kind } in &slice.constraints {
            // Constraint instances are always materialized (they sit at
            // the abstraction's root).
            if instances.insert((ctx.clone(), *func)) {
                work.push_back((ctx.clone(), *func));
            }
            let f = program.func(*func);
            match kind {
                ConstraintKind::BranchTrue { branch } => {
                    let DefKind::Branch { cond } = f.def(*branch).kind else {
                        unreachable!("guards are branches")
                    };
                    let cv = instance_var(pool, ctx, *func, cond);
                    let t = truthy(pool, cv);
                    parts.push(t);
                }
                ConstraintKind::IteGate { ite, taken_then } => {
                    let DefKind::Ite { cond, .. } = f.def(*ite).kind else {
                        unreachable!("gated vertices are ites")
                    };
                    let cv = instance_var(pool, ctx, *func, cond);
                    let t = truthy(pool, cv);
                    parts.push(if *taken_then { t } else { pool.not(t) });
                }
            }
        }
        while let Some((ctx, fid)) = work.pop_front() {
            if instances.len() > max_instances {
                return None;
            }
            let Some(fs) = slice.funcs.get(&fid) else {
                continue;
            };
            let func = program.func(fid);
            for &v in &fs.verts {
                let def = func.def(v);
                let lhs = instance_var(pool, &ctx, fid, v);
                let equation = match &def.kind {
                    DefKind::Param { index } => {
                        let Some(&site) = ctx.last() else { continue };
                        let cs = program.call_site(site);
                        let caller_ctx = ctx[..ctx.len() - 1].to_vec();
                        let caller = program.func(cs.caller);
                        let DefKind::Call { args, .. } = &caller.def(cs.stmt).kind else {
                            unreachable!("call sites point at calls")
                        };
                        let actual = args[*index];
                        let rhs = instance_var(pool, &caller_ctx, cs.caller, actual);
                        schedule(
                            &mut instances,
                            &mut work,
                            &mut complete,
                            caller_ctx,
                            cs.caller,
                        );
                        pool.eq(lhs, rhs)
                    }
                    DefKind::Const { value, .. } => {
                        let k = pool.bv_const(*value as u64, fusion_ir::ssa::WORD_BITS);
                        pool.eq(lhs, k)
                    }
                    DefKind::Copy { src } | DefKind::Return { src } => {
                        let rhs = instance_var(pool, &ctx, fid, *src);
                        pool.eq(lhs, rhs)
                    }
                    DefKind::Binary { op, lhs: a, rhs: b } => {
                        let ta = instance_var(pool, &ctx, fid, *a);
                        let tb = instance_var(pool, &ctx, fid, *b);
                        let rhs = fusion_pdg::translate::encode_op(pool, *op, ta, tb);
                        pool.eq(lhs, rhs)
                    }
                    DefKind::Ite {
                        cond,
                        then_v,
                        else_v,
                    } => {
                        let tc = instance_var(pool, &ctx, fid, *cond);
                        let tt = instance_var(pool, &ctx, fid, *then_v);
                        let te = instance_var(pool, &ctx, fid, *else_v);
                        let c = truthy(pool, tc);
                        let rhs = pool.ite(c, tt, te);
                        pool.eq(lhs, rhs)
                    }
                    DefKind::Call { callee, site, .. } => {
                        let callee_f = program.func(*callee);
                        if callee_f.is_extern {
                            continue;
                        }
                        let mut sub_ctx = ctx.clone();
                        sub_ctx.push(*site);
                        if sub_ctx.len() > depth {
                            complete = false; // dst left free
                            continue;
                        }
                        let ret = callee_f.ret.expect("non-extern has a return");
                        let rhs = instance_var(pool, &sub_ctx, *callee, ret);
                        schedule(&mut instances, &mut work, &mut complete, sub_ctx, *callee);
                        pool.eq(lhs, rhs)
                    }
                    DefKind::Branch { .. } => continue,
                };
                parts.push(equation);
            }
        }
        Some((pool.and(&parts), instances.len(), complete))
    }
}

impl FeasibilityEngine for ArEngine {
    fn name(&self) -> &'static str {
        "pinpoint+ar"
    }

    fn check_paths(
        &mut self,
        program: &Program,
        pdg: &Pdg,
        paths: &[DependencePath],
    ) -> CheckOutcome {
        let start = std::time::Instant::now();
        // One deadline for the *whole* call: AR's repeated refinement
        // rounds share the budget, so a query that keeps refining degrades
        // to Unknown when the budget runs out instead of stalling a worker
        // for max_refinements × timeout.
        let deadline = self.per_call.deadline_from(start);
        let slice = compute_slice(program, pdg, paths);
        let base_depth = slice
            .constraints
            .iter()
            .map(|c| c.ctx.len())
            .max()
            .unwrap_or(0);
        let mut last_instances = 0usize;
        let mut decided = false;
        for round in 0..self.max_refinements {
            if deadline_expired(deadline) {
                break; // budget exhausted mid-refinement → Unknown
            }
            let depth = base_depth + round;
            // Fresh pool per refinement: AR recomputes the growing
            // condition each round (its cost signature).
            let mut pool = TermPool::new();
            let Some((formula, instances, complete)) =
                Self::emit(program, &slice, &mut pool, depth, self.max_instances)
            else {
                break; // instance blow-up
            };
            last_instances = instances;
            let Some(cfg) = self.per_call.with_remaining(deadline) else {
                break; // budget exhausted after emission → Unknown
            };
            let (result, stats) = smt_solve(&mut pool, formula, &cfg);
            let transient = pool.len() as u64 * BYTES_PER_TERM_NODE + stats.cnf_clauses as u64 * 16;
            self.memory.charge(Category::SolverState, transient);
            self.memory.release(Category::SolverState, transient);
            decided = stats.preprocess_decided;
            let feasibility = match result {
                SatResult::Unsat => Some(Feasibility::Infeasible),
                SatResult::Sat(_) if complete => Some(Feasibility::Feasible),
                SatResult::Sat(_) => None, // refine
                SatResult::Unknown => Some(Feasibility::Unknown),
            };
            if let Some(f) = feasibility {
                let outcome = CheckOutcome {
                    feasibility: f,
                    duration: start.elapsed(),
                    condition_nodes: pool.dag_size(formula) as u64,
                    instances,
                    preprocess_decided: decided,
                };
                self.records.push(SolveRecord::from_outcome(&outcome));
                return outcome;
            }
        }
        let outcome = CheckOutcome {
            feasibility: Feasibility::Unknown,
            duration: start.elapsed(),
            condition_nodes: 0,
            instances: last_instances,
            preprocess_decided: decided,
        };
        self.records.push(SolveRecord::from_outcome(&outcome));
        outcome
    }

    fn memory(&self) -> &MemoryAccountant {
        &self.memory
    }

    fn records(&self) -> &[SolveRecord] {
        &self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion::checkers::Checker;
    use fusion::engine::{analyze, AnalysisOptions};
    use fusion::graph_solver::FusionSolver;
    use fusion_ir::{compile, CompileOptions};

    fn run_with(src: &str, engine: &mut dyn FeasibilityEngine) -> (usize, usize) {
        let p = compile(src, CompileOptions::default()).expect("compile");
        let g = Pdg::build(&p);
        let run = analyze(
            &p,
            &g,
            &Checker::null_deref(),
            engine,
            &AnalysisOptions::new(),
        );
        (run.reports.len(), run.suppressed)
    }

    #[test]
    fn ar_agrees_with_fusion() {
        let src = "extern fn deref(p);\n\
            fn bar(x) { return x * 2; }\n\
            fn f1(a, b) { let q = null; let r = 1; if (bar(a) < bar(b)) { r = q; } deref(r); return 0; }\n\
            fn f2(x) { let q = null; let r = 1; if (x > 5) { if (x < 3) { r = q; } } deref(r); return 0; }\n\
            fn f3() { let q = null; let r = 1; if (bar(3) > 100) { r = q; } deref(r); return 0; }";
        let mut ar = ArEngine::new(SolverConfig::default());
        let mut fused = FusionSolver::new(SolverConfig::default());
        assert_eq!(run_with(src, &mut ar), run_with(src, &mut fused));
    }

    #[test]
    fn ar_exits_early_on_intra_unsat() {
        // The contradiction is intra-procedural: AR must decide at depth 0
        // without descending into the callee.
        let src = "extern fn deref(p);\n\
            fn deep(x) { return x + 1; }\n\
            fn f(x) { let q = null; let r = 1; \
              if (x > 5) { if (x < 3) { if (deep(x) > 0) { r = q; } } } \
              deref(r); return 0; }";
        let p = compile(src, CompileOptions::default()).unwrap();
        let g = Pdg::build(&p);
        let mut ar = ArEngine::new(SolverConfig::default());
        let run = analyze(
            &p,
            &g,
            &Checker::null_deref(),
            &mut ar,
            &AnalysisOptions::new(),
        );
        assert_eq!(run.suppressed, 1);
        // The record shows a small instance count (no deep clone needed).
        assert!(ar.records()[0].condition_nodes > 0);
    }

    #[test]
    fn ar_refines_to_feasible() {
        let src = "extern fn deref(p);\n\
            fn two(x) { return x * 2; }\n\
            fn f(a) { let q = null; let r = 1; if (two(a) == 14) { r = q; } deref(r); return 0; }";
        let mut ar = ArEngine::new(SolverConfig::default());
        assert_eq!(run_with(src, &mut ar), (1, 0));
    }
}

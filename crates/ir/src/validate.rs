//! Well-formedness validation for core SSA programs.
//!
//! Lowering and the workload generator both promise the invariants checked
//! here; the analyses depend on them (e.g. guard-region contiguity is what
//! lets [`crate::cfg`] reconstruct control flow, and operand ordering is
//! what makes single-pass evaluation sound).

use crate::ssa::{DefKind, Program, VarId};
use std::error::Error;
use std::fmt;

/// A violated invariant, with a human-readable description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError {
    /// The function in which the violation occurred.
    pub function: String,
    /// Description of the violated invariant.
    pub message: String,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid IR in `{}`: {}", self.function, self.message)
    }
}

impl Error for ValidateError {}

/// Checks all core-IR invariants.
///
/// # Errors
///
/// Returns the first violated invariant:
///
/// * definition ids are dense and ordered (`defs[i].var == VarId(i)`);
/// * every operand and guard refers to an earlier definition;
/// * guards refer to [`DefKind::Branch`] definitions;
/// * guard regions are contiguous and properly nested;
/// * parameters come first, in declaration order;
/// * non-extern functions end with their unique [`DefKind::Return`];
/// * call sites reference existing functions with matching arity, and the
///   global call-site table is consistent;
/// * externs have no body.
pub fn validate(program: &Program) -> Result<(), ValidateError> {
    for func in &program.functions {
        let fname = program.name(func.name).to_owned();
        let err = |message: String| ValidateError {
            function: fname.clone(),
            message,
        };
        if func.is_extern {
            if !func.defs.is_empty() {
                return Err(err("extern function has a body".into()));
            }
            continue;
        }
        // Dense ids, operand ordering, guard sanity.
        let mut return_count = 0usize;
        for (i, def) in func.defs.iter().enumerate() {
            if def.var.index() != i {
                return Err(err(format!("definition {i} has id {}", def.var)));
            }
            for o in def.kind.operands() {
                if o.index() >= i {
                    return Err(err(format!("{} uses {o} before its definition", def.var)));
                }
            }
            if let Some(g) = def.guard {
                if g.index() >= i {
                    return Err(err(format!("{} guarded by later vertex {g}", def.var)));
                }
                if !matches!(func.def(g).kind, DefKind::Branch { .. }) {
                    return Err(err(format!("guard {g} of {} is not a branch", def.var)));
                }
            }
            if let DefKind::Return { .. } = def.kind {
                return_count += 1;
                if def.guard.is_some() {
                    return Err(err("return statement is guarded".into()));
                }
            }
            if let DefKind::Call { callee, args, site } = &def.kind {
                let callee_f = program
                    .functions
                    .get(callee.index())
                    .ok_or_else(|| err(format!("call to out-of-range function {callee}")))?;
                if !callee_f.is_extern && callee_f.params.len() != args.len() {
                    return Err(err(format!(
                        "call at {} passes {} args to `{}` ({} params)",
                        def.var,
                        args.len(),
                        program.name(callee_f.name),
                        callee_f.params.len()
                    )));
                }
                let cs = program
                    .call_sites
                    .get(site.index())
                    .ok_or_else(|| err(format!("call site {site} out of range")))?;
                if cs.caller != func.id || cs.stmt != def.var || cs.callee != *callee {
                    return Err(err(format!("call-site table inconsistent at {site}")));
                }
            }
        }
        // Parameters first and in order.
        for (pi, &p) in func.params.iter().enumerate() {
            if p.index() != pi {
                return Err(err(format!("parameter {pi} is not definition {pi}")));
            }
            match func.def(p).kind {
                DefKind::Param { index } if index == pi => {}
                _ => return Err(err(format!("definition {p} is not parameter #{pi}"))),
            }
        }
        // Single trailing return.
        if return_count != 1 {
            return Err(err(format!("{return_count} return statements (want 1)")));
        }
        match func.ret {
            Some(r) if r.index() == func.defs.len() - 1 => {}
            _ => return Err(err("return is not the final definition".into())),
        }
        // Guard regions contiguous and properly nested: once a guard's
        // region is left, it never reopens.
        let mut closed: Vec<bool> = vec![false; func.defs.len()];
        let mut prev_chain: Vec<VarId> = Vec::new();
        for def in &func.defs {
            let mut chain = func.guards(def.var);
            chain.reverse(); // outermost first
            for g in &chain {
                if closed[g.index()] {
                    return Err(err(format!("guard region of {g} reopened at {}", def.var)));
                }
            }
            // Any guard present previously but absent now is closed.
            for g in &prev_chain {
                if !chain.contains(g) {
                    closed[g.index()] = true;
                }
            }
            prev_chain = chain;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Interner;
    use crate::lower::{lower, LowerOptions};
    use crate::parser::parse;
    use crate::ssa::{Def, DefKind, Function, VarId};

    fn compile(src: &str) -> Program {
        let mut i = Interner::new();
        let s = parse(src, &mut i).unwrap();
        lower(&s, &mut i, LowerOptions::default()).unwrap()
    }

    #[test]
    fn lowered_programs_validate() {
        let p = compile(
            "extern fn sink(x);\n\
             fn g(x) { if (x > 3) { return x * 2; } return 0; }\n\
             fn f(a, b) { let r = 0; while (r < a) { r = r + g(b); } \
               if (r == 7) { sink(r); return 1; } return r; }",
        );
        validate(&p).expect("lowered IR must validate");
    }

    #[test]
    fn detects_use_before_def() {
        let mut p = compile("fn f(a) { return a; }");
        // Corrupt: make the return read a later (nonexistent-order) var.
        let f = &mut p.functions[0];
        let last = f.defs.len() - 1;
        f.defs[0] = Def {
            var: VarId(0),
            kind: DefKind::Copy {
                src: VarId(last as u32),
            },
            guard: None,
            name: f.defs[0].name,
        };
        assert!(validate(&p).is_err());
    }

    #[test]
    fn detects_missing_return() {
        let mut p = compile("fn f(a) { return a; }");
        let f = &mut p.functions[0];
        let name = f.defs[0].name;
        let last = f.defs.len() - 1;
        f.defs[last] = Def {
            var: VarId(last as u32),
            kind: DefKind::Copy { src: VarId(0) },
            guard: None,
            name,
        };
        assert!(validate(&p).is_err());
    }

    #[test]
    fn detects_extern_with_body() {
        let mut p = compile("extern fn e(); fn f() { return e(); }");
        let name = p.functions[0].name;
        p.functions[0] = Function {
            name,
            id: p.functions[0].id,
            params: vec![],
            defs: p.functions[1].defs.clone(),
            ret: p.functions[1].ret,
            is_extern: true,
        };
        assert!(validate(&p).is_err());
    }

    #[test]
    fn detects_bad_guard_target() {
        let mut p = compile("fn f(a) { let r = 0; if (a) { r = 1; } return r; }");
        let f = &mut p.functions[0];
        // Point some guarded def's guard at a non-branch (param 0).
        for d in &mut f.defs {
            if d.guard.is_some() {
                d.guard = Some(VarId(0));
                break;
            }
        }
        assert!(validate(&p).is_err());
    }
}

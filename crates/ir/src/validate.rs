//! Well-formedness validation for core SSA programs.
//!
//! Lowering and the workload generator both promise the invariants checked
//! here; the analyses depend on them (e.g. guard-region contiguity is what
//! lets [`crate::cfg`] reconstruct control flow, and operand ordering is
//! what makes single-pass evaluation sound).

use crate::ssa::{DefKind, Program, VarId};
use std::error::Error;
use std::fmt;

/// A violated invariant, with a human-readable description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError {
    /// The function in which the violation occurred.
    pub function: String,
    /// Description of the violated invariant.
    pub message: String,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid IR in `{}`: {}", self.function, self.message)
    }
}

impl Error for ValidateError {}

/// Checks all core-IR invariants, stopping at the first violation.
///
/// A thin wrapper over [`check_program`] for callers that only need a
/// pass/fail answer; batch consumers (the CLI's `--validate`, the driver's
/// debug assertion) use [`check_program`] directly to report every
/// diagnostic at once.
///
/// # Errors
///
/// Returns the first violated invariant (see [`check_program`] for the
/// full list).
pub fn validate(program: &Program) -> Result<(), ValidateError> {
    match check_program(program).into_iter().next() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Checks all core-IR invariants, collecting *every* diagnostic.
///
/// The invariants are the contract between lowering / the workload
/// generator and everything downstream — the sparse analyses, the PDG
/// construction, and the abstract interpreter all assume them:
///
/// * **SSA single-assignment** — definition ids are dense and ordered
///   (`defs[i].var == VarId(i)`), so each variable is assigned exactly
///   once;
/// * **acyclic SSA** — every operand and guard refers to an *earlier*,
///   in-bounds definition (the gated-φ/ite encoding of merges keeps the
///   definitional system acyclic, which is what makes one-pass abstract
///   interpretation and topological translation sound);
/// * **gating well-formedness** — guards refer to [`DefKind::Branch`]
///   definitions, guard regions are contiguous and properly nested, and
///   returns are unguarded;
/// * parameters come first, in declaration order;
/// * non-extern functions end with their unique [`DefKind::Return`];
/// * call sites reference existing functions ([`crate::ssa::FuncId`]
///   in bounds) with matching arity, and the global call-site table is
///   consistent;
/// * externs have no body;
/// * **acyclic call graph** — lowering unrolls bounded recursion, so the
///   post-unrolling call graph over non-extern callees must be a DAG
///   (context-sensitive cloning would otherwise diverge).
///
/// Diagnostics are reported in program order (per function, per
/// definition); follow-on checks that would index out of bounds after an
/// earlier violation are skipped rather than risked.
pub fn check_program(program: &Program) -> Vec<ValidateError> {
    let mut errs: Vec<ValidateError> = Vec::new();
    for func in &program.functions {
        let fname = program.name(func.name).to_owned();
        let err = |message: String| ValidateError {
            function: fname.clone(),
            message,
        };
        if func.is_extern {
            if !func.defs.is_empty() {
                errs.push(err("extern function has a body".into()));
            }
            continue;
        }
        let before = errs.len();
        // Dense ids, operand ordering, guard sanity.
        let mut return_count = 0usize;
        for (i, def) in func.defs.iter().enumerate() {
            if def.var.index() != i {
                errs.push(err(format!("definition {i} has id {}", def.var)));
            }
            for o in def.kind.operands() {
                if o.index() >= func.defs.len() {
                    errs.push(err(format!("{} uses out-of-range variable {o}", def.var)));
                } else if o.index() >= i {
                    errs.push(err(format!("{} uses {o} before its definition", def.var)));
                }
            }
            if let Some(g) = def.guard {
                if g.index() >= i {
                    errs.push(err(format!("{} guarded by later vertex {g}", def.var)));
                } else if !matches!(func.def(g).kind, DefKind::Branch { .. }) {
                    errs.push(err(format!("guard {g} of {} is not a branch", def.var)));
                }
            }
            if let DefKind::Return { .. } = def.kind {
                return_count += 1;
                if def.guard.is_some() {
                    errs.push(err("return statement is guarded".into()));
                }
            }
            if let DefKind::Call { callee, args, site } = &def.kind {
                match program.functions.get(callee.index()) {
                    None => errs.push(err(format!("call to out-of-range function {callee}"))),
                    Some(callee_f) => {
                        if !callee_f.is_extern && callee_f.params.len() != args.len() {
                            errs.push(err(format!(
                                "call at {} passes {} args to `{}` ({} params)",
                                def.var,
                                args.len(),
                                program.name(callee_f.name),
                                callee_f.params.len()
                            )));
                        }
                        match program.call_sites.get(site.index()) {
                            None => errs.push(err(format!("call site {site} out of range"))),
                            Some(cs) => {
                                if cs.caller != func.id
                                    || cs.stmt != def.var
                                    || cs.callee != *callee
                                {
                                    errs.push(err(format!(
                                        "call-site table inconsistent at {site}"
                                    )));
                                }
                            }
                        }
                    }
                }
            }
        }
        // Parameters first and in order.
        for (pi, &p) in func.params.iter().enumerate() {
            if p.index() >= func.defs.len() {
                errs.push(err(format!("parameter {pi} is out of range ({p})")));
                continue;
            }
            if p.index() != pi {
                errs.push(err(format!("parameter {pi} is not definition {pi}")));
                continue;
            }
            match func.def(p).kind {
                DefKind::Param { index } if index == pi => {}
                _ => errs.push(err(format!("definition {p} is not parameter #{pi}"))),
            }
        }
        // Single trailing return.
        if return_count != 1 {
            errs.push(err(format!("{return_count} return statements (want 1)")));
        }
        match func.ret {
            Some(r) if r.index() == func.defs.len().wrapping_sub(1) => {}
            _ => errs.push(err("return is not the final definition".into())),
        }
        // Guard regions contiguous and properly nested: once a guard's
        // region is left, it never reopens. Walking guard chains requires
        // the structural checks above to have passed for this function.
        if errs.len() == before {
            let mut closed: Vec<bool> = vec![false; func.defs.len()];
            let mut prev_chain: Vec<VarId> = Vec::new();
            for def in &func.defs {
                let mut chain = func.guards(def.var);
                chain.reverse(); // outermost first
                for g in &chain {
                    if closed[g.index()] {
                        errs.push(err(format!("guard region of {g} reopened at {}", def.var)));
                    }
                }
                // Any guard present previously but absent now is closed.
                for g in &prev_chain {
                    if !chain.contains(g) {
                        closed[g.index()] = true;
                    }
                }
                prev_chain = chain;
            }
        }
    }
    // Whole-program: the post-unrolling call graph over non-extern callees
    // must be acyclic (iterative three-color DFS; one cycle is reported,
    // with its witness path).
    let n = program.functions.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for cs in &program.call_sites {
        let (caller, callee) = (cs.caller.index(), cs.callee.index());
        if caller < n && callee < n && !program.functions[callee].is_extern {
            adj[caller].push(callee);
        }
    }
    let mut color = vec![0u8; n]; // 0 = white, 1 = gray, 2 = black
    'roots: for start in 0..n {
        if color[start] != 0 {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        color[start] = 1;
        while let Some(&mut (u, ref mut next)) = stack.last_mut() {
            if *next < adj[u].len() {
                let v = adj[u][*next];
                *next += 1;
                match color[v] {
                    0 => {
                        color[v] = 1;
                        stack.push((v, 0));
                    }
                    1 => {
                        // Gray → gray edge closes a cycle; the witness is
                        // the gray path from `v` back to `u`.
                        let pos = stack
                            .iter()
                            .position(|&(f, _)| f == v)
                            .expect("gray vertex is on the stack");
                        let path: Vec<String> = stack[pos..]
                            .iter()
                            .map(|&(f, _)| program.name(program.functions[f].name).to_owned())
                            .chain(std::iter::once(
                                program.name(program.functions[v].name).to_owned(),
                            ))
                            .collect();
                        errs.push(ValidateError {
                            function: program.name(program.functions[v].name).to_owned(),
                            message: format!(
                                "call graph has a cycle: {} (recursion must be unrolled)",
                                path.join(" -> ")
                            ),
                        });
                        break 'roots;
                    }
                    _ => {}
                }
            } else {
                color[u] = 2;
                stack.pop();
            }
        }
    }
    errs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Interner;
    use crate::lower::{lower, LowerOptions};
    use crate::parser::parse;
    use crate::ssa::{Def, DefKind, Function, VarId};

    fn compile(src: &str) -> Program {
        let mut i = Interner::new();
        let s = parse(src, &mut i).unwrap();
        lower(&s, &mut i, LowerOptions::default()).unwrap()
    }

    #[test]
    fn lowered_programs_validate() {
        let p = compile(
            "extern fn sink(x);\n\
             fn g(x) { if (x > 3) { return x * 2; } return 0; }\n\
             fn f(a, b) { let r = 0; while (r < a) { r = r + g(b); } \
               if (r == 7) { sink(r); return 1; } return r; }",
        );
        validate(&p).expect("lowered IR must validate");
    }

    #[test]
    fn detects_use_before_def() {
        let mut p = compile("fn f(a) { return a; }");
        // Corrupt: make the return read a later (nonexistent-order) var.
        let f = &mut p.functions[0];
        let last = f.defs.len() - 1;
        f.defs[0] = Def {
            var: VarId(0),
            kind: DefKind::Copy {
                src: VarId(last as u32),
            },
            guard: None,
            name: f.defs[0].name,
        };
        assert!(validate(&p).is_err());
    }

    #[test]
    fn detects_missing_return() {
        let mut p = compile("fn f(a) { return a; }");
        let f = &mut p.functions[0];
        let name = f.defs[0].name;
        let last = f.defs.len() - 1;
        f.defs[last] = Def {
            var: VarId(last as u32),
            kind: DefKind::Copy { src: VarId(0) },
            guard: None,
            name,
        };
        assert!(validate(&p).is_err());
    }

    #[test]
    fn detects_extern_with_body() {
        let mut p = compile("extern fn e(); fn f() { return e(); }");
        let name = p.functions[0].name;
        p.functions[0] = Function {
            name,
            id: p.functions[0].id,
            params: vec![],
            defs: p.functions[1].defs.clone(),
            ret: p.functions[1].ret,
            is_extern: true,
        };
        assert!(validate(&p).is_err());
    }

    #[test]
    fn check_program_collects_all_diagnostics() {
        let mut p = compile("fn g(a) { return a; } fn f(b) { return b; }");
        // Corrupt both functions: each return becomes a forward self-copy.
        for f in &mut p.functions {
            let name = f.defs[0].name;
            let last = f.defs.len() - 1;
            f.defs[last] = Def {
                var: VarId(last as u32),
                kind: DefKind::Copy {
                    src: VarId(last as u32),
                },
                guard: None,
                name,
            };
        }
        let errs = check_program(&p);
        // Each function reports its own use-before-def *and* missing
        // return — `validate` would have stopped at the first.
        assert!(errs.len() >= 4, "diagnostics: {errs:?}");
        assert!(errs.iter().any(|e| e.function == "g"));
        assert!(errs.iter().any(|e| e.function == "f"));
        assert_eq!(validate(&p).unwrap_err(), errs[0]);
    }

    #[test]
    fn detects_recursive_call_graph() {
        let mut p = compile("fn g() { return 1; } fn f() { return g(); }");
        // Rewire f's call to target f itself, keeping the call-site table
        // consistent: a post-unrolling program must never be recursive.
        let fid = p.functions[1].id;
        let mut site = None;
        for d in &mut p.functions[1].defs {
            if let DefKind::Call {
                callee, site: s, ..
            } = &mut d.kind
            {
                *callee = fid;
                site = Some(*s);
            }
        }
        let site = site.expect("f has a call");
        p.call_sites[site.index()].callee = fid;
        let errs = check_program(&p);
        assert!(
            errs.iter().any(|e| e.message.contains("cycle")),
            "diagnostics: {errs:?}"
        );
        assert!(validate(&p).is_err());
    }

    #[test]
    fn detects_bad_guard_target() {
        let mut p = compile("fn f(a) { let r = 0; if (a) { r = 1; } return r; }");
        let f = &mut p.functions[0];
        // Point some guarded def's guard at a non-branch (param 0).
        for d in &mut f.defs {
            if d.guard.is_some() {
                d.guard = Some(VarId(0));
                break;
            }
        }
        assert!(validate(&p).is_err());
    }
}

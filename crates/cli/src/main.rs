//! `fusion-scan` entry point; all logic lives in the library for testing.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = fusion_cli::run(&args, &mut std::io::stdout());
    std::process::exit(code);
}

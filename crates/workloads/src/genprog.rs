//! Deterministic synthetic program generation.
//!
//! The evaluation's subjects (SPEC CINT2000 + four MLoC projects) cannot be
//! shipped; what the evaluation actually varies is the *shape* of the
//! dependence graph — function count, call-graph depth and fan-out,
//! branching density, and where feasible/infeasible flows sit. The
//! generator reproduces those shapes at a configurable scale, from a fixed
//! seed, and records ground truth for every seeded bug so precision/recall
//! (Table 5) can be measured exactly.
//!
//! Generated programs are plain surface ASTs: they go through the same
//! parser-grade validation, recursion unrolling and lowering as hand-
//! written code.

use crate::bugseed::{BugSite, SeededBug};
use fusion::checkers::CheckKind;
use fusion_ir::ast::{BinOp, Expr, Function, Program, Stmt};
use fusion_ir::interner::{Interner, Symbol};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Re-export: which checker a seeded bug belongs to.
pub use fusion::checkers::CheckKind as BugKind;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// RNG seed — everything is deterministic in it.
    pub seed: u64,
    /// Number of ordinary (filler) functions.
    pub functions: usize,
    /// Average statements per filler function.
    pub stmts_per_function: usize,
    /// Probability that a statement is a call to a later function.
    pub call_density: f64,
    /// Probability that a statement opens a branch.
    pub branch_density: f64,
    /// Probability that a statement opens a (to-be-unrolled) loop.
    pub loop_density: f64,
    /// Seeded feasible null-dereference bugs.
    pub null_feasible: usize,
    /// Seeded infeasible null-dereference candidates.
    pub null_infeasible: usize,
    /// Seeded feasible CWE-23 flows.
    pub cwe23_feasible: usize,
    /// Seeded infeasible CWE-23 candidates.
    pub cwe23_infeasible: usize,
    /// Seeded feasible CWE-402 flows.
    pub cwe402_feasible: usize,
    /// Seeded infeasible CWE-402 candidates.
    pub cwe402_infeasible: usize,
    /// How many affine helper functions to mint (quick-path fodder).
    pub affine_helpers: usize,
    /// How many opaque (branching) helpers to mint.
    pub opaque_helpers: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        Self {
            seed: 0xF051_0000,
            functions: 20,
            stmts_per_function: 12,
            call_density: 0.25,
            branch_density: 0.2,
            loop_density: 0.05,
            null_feasible: 2,
            null_infeasible: 2,
            cwe23_feasible: 1,
            cwe23_infeasible: 1,
            cwe402_feasible: 1,
            cwe402_infeasible: 1,
            affine_helpers: 4,
            opaque_helpers: 2,
        }
    }
}

/// A generated subject: the surface program, its interner, and the ground
/// truth of every seeded bug.
#[derive(Debug, Clone)]
pub struct GeneratedSubject {
    /// The surface program (run it through [`fusion_ir::compile_ast`]).
    pub surface: Program,
    /// The interner holding all names.
    pub interner: Interner,
    /// Ground truth for precision/recall accounting.
    pub bugs: Vec<SeededBug>,
}

impl GeneratedSubject {
    /// Renders the subject as concrete source text — a corpus on disk for
    /// `fusion-scan`, external diffing, or archiving alongside results.
    pub fn to_source(&self) -> String {
        fusion_ir::pretty::surface_to_string(&self.surface, &self.interner)
    }
}

struct Gen {
    rng: StdRng,
    interner: Interner,
    functions: Vec<Function>,
    bugs: Vec<SeededBug>,
    affine_helpers: Vec<Symbol>,
    opaque_helpers: Vec<Symbol>,
    /// Identity pass-through chain, shallowest first (`pass0(x) = x`,
    /// `passK(x) = pass(K-1)(x)`): facts routed through it cross K call
    /// levels.
    passthrough: Vec<Symbol>,
    next_local: usize,
}

impl Gen {
    fn sym(&mut self, s: &str) -> Symbol {
        self.interner.intern(s)
    }

    fn fresh_local(&mut self) -> Symbol {
        let n = format!("v{}", self.next_local);
        self.next_local += 1;
        self.sym(&n)
    }

    /// A random pure expression over the given variables.
    fn expr(&mut self, vars: &[Symbol], depth: usize) -> Expr {
        if depth == 0 || vars.is_empty() || self.rng.gen_bool(0.3) {
            if !vars.is_empty() && self.rng.gen_bool(0.7) {
                let v = vars[self.rng.gen_range(0..vars.len())];
                Expr::Var(v)
            } else {
                Expr::Int(self.rng.gen_range(0..1000))
            }
        } else {
            let ops = [
                BinOp::Add,
                BinOp::Sub,
                BinOp::Mul,
                BinOp::BitAnd,
                BinOp::BitOr,
                BinOp::BitXor,
                BinOp::Shr,
            ];
            let op = ops[self.rng.gen_range(0..ops.len())];
            Expr::bin(op, self.expr(vars, depth - 1), self.expr(vars, depth - 1))
        }
    }

    /// A random comparison usable as a branch condition.
    fn cond(&mut self, vars: &[Symbol]) -> Expr {
        let ops = [
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
            BinOp::Eq,
            BinOp::Ne,
        ];
        let op = ops[self.rng.gen_range(0..ops.len())];
        Expr::bin(op, self.expr(vars, 1), self.expr(vars, 1))
    }

    /// A call into a random filler function — its backward slice crosses
    /// the call graph, which is what makes conditions expensive for the
    /// conventional design.
    fn deep_call(&mut self, vars: &[Symbol], callees: &[(Symbol, usize)]) -> Option<Expr> {
        if callees.is_empty() {
            return None;
        }
        let (callee, arity) = callees[self.rng.gen_range(0..callees.len())];
        let args = (0..arity).map(|_| self.expr(vars, 1)).collect();
        Some(Expr::Call(callee, args))
    }

    /// A *provably satisfiable* condition over deep calls: `2a != 2b + 1`
    /// holds for every `a`, `b` (parity), but proving it requires slicing
    /// through the callees.
    fn deep_feasible_cond(&mut self, vars: &[Symbol], callees: &[(Symbol, usize)]) -> Option<Expr> {
        let a = self.deep_call(vars, callees)?;
        let b = self.deep_call(vars, callees)?;
        Some(Expr::bin(
            BinOp::Ne,
            Expr::bin(BinOp::Mul, a, Expr::Int(2)),
            Expr::bin(
                BinOp::Add,
                Expr::bin(BinOp::Mul, b, Expr::Int(2)),
                Expr::Int(1),
            ),
        ))
    }

    /// A *provably unsatisfiable* condition over deep calls: `2a == 2b + 1`
    /// (even = odd) — infeasible regardless of the callees' values.
    fn deep_infeasible_cond(
        &mut self,
        vars: &[Symbol],
        callees: &[(Symbol, usize)],
    ) -> Option<Expr> {
        let a = self.deep_call(vars, callees)?;
        let b = self.deep_call(vars, callees)?;
        Some(Expr::bin(
            BinOp::Eq,
            Expr::bin(BinOp::Mul, a, Expr::Int(2)),
            Expr::bin(
                BinOp::Add,
                Expr::bin(BinOp::Mul, b, Expr::Int(2)),
                Expr::Int(1),
            ),
        ))
    }

    /// A condition that is satisfiable (used to gate feasible bugs).
    fn feasible_cond(&mut self, vars: &[Symbol]) -> Expr {
        if vars.is_empty() {
            return Expr::bin(BinOp::Eq, Expr::Int(1), Expr::Int(1));
        }
        let v = Expr::Var(vars[self.rng.gen_range(0..vars.len())]);
        match self.rng.gen_range(0..3) {
            0 => Expr::bin(BinOp::Gt, v, Expr::Int(self.rng.gen_range(0..100))),
            1 => Expr::bin(
                BinOp::Eq,
                Expr::bin(BinOp::BitAnd, v, Expr::Int(1)),
                Expr::Int(0),
            ),
            _ => {
                // Two helpers of independent inputs compared — exercises
                // the quick path + affine-coset preprocessing.
                if self.affine_helpers.len() >= 2 && vars.len() >= 2 {
                    let h1 = self.affine_helpers[self.rng.gen_range(0..self.affine_helpers.len())];
                    let h2 = self.affine_helpers[self.rng.gen_range(0..self.affine_helpers.len())];
                    let a = Expr::Var(vars[0]);
                    let b = Expr::Var(vars[vars.len() - 1]);
                    Expr::bin(BinOp::Lt, Expr::Call(h1, vec![a]), Expr::Call(h2, vec![b]))
                } else {
                    Expr::bin(BinOp::Lt, v, Expr::Int(500))
                }
            }
        }
    }

    /// A condition that is unsatisfiable (used to gate infeasible bugs);
    /// returned as a nested pair when two guards are needed.
    fn infeasible_guard(&mut self, vars: &[Symbol], body: Vec<Stmt>) -> Vec<Stmt> {
        let v = if vars.is_empty() {
            Expr::Int(3)
        } else {
            Expr::Var(vars[self.rng.gen_range(0..vars.len())])
        };
        match self.rng.gen_range(0..3) {
            0 => {
                // x > 10 && x < 5 via nesting.
                let outer = Expr::bin(BinOp::Gt, v.clone(), Expr::Int(10));
                let inner = Expr::bin(BinOp::Lt, v, Expr::Int(5));
                vec![Stmt::If(outer, vec![Stmt::If(inner, body, vec![])], vec![])]
            }
            1 => {
                // 2x == odd constant (parity).
                let c = self.rng.gen_range(0..500) * 2 + 1;
                let cond = Expr::bin(
                    BinOp::Eq,
                    Expr::bin(BinOp::Mul, v, Expr::Int(2)),
                    Expr::Int(c),
                );
                vec![Stmt::If(cond, body, vec![])]
            }
            _ => {
                // (x & 1) == 2 (mask range).
                let cond = Expr::bin(
                    BinOp::Eq,
                    Expr::bin(BinOp::BitAnd, v, Expr::Int(1)),
                    Expr::Int(2),
                );
                vec![Stmt::If(cond, body, vec![])]
            }
        }
    }

    /// Filler statements for a function body.
    fn filler(
        &mut self,
        cfg: &GenConfig,
        vars: &mut Vec<Symbol>,
        mutables: &mut [Symbol],
        callees: &[(Symbol, usize)],
        count: usize,
    ) -> Vec<Stmt> {
        let mut out = Vec::new();
        for _ in 0..count {
            let roll: f64 = self.rng.gen();
            if roll < cfg.call_density && !callees.is_empty() {
                let (callee, arity) = callees[self.rng.gen_range(0..callees.len())];
                let args = (0..arity).map(|_| self.expr(vars, 1)).collect();
                let l = self.fresh_local();
                out.push(Stmt::Let(l, Expr::Call(callee, args)));
                vars.push(l);
            } else if roll < cfg.call_density + cfg.branch_density && !mutables.is_empty() {
                let cond = self.cond(vars);
                let m = mutables[self.rng.gen_range(0..mutables.len())];
                let then_e = self.expr(vars, 2);
                let else_b = if self.rng.gen_bool(0.5) {
                    let e = self.expr(vars, 2);
                    vec![Stmt::Assign(m, e)]
                } else {
                    vec![]
                };
                out.push(Stmt::If(cond, vec![Stmt::Assign(m, then_e)], else_b));
            } else if roll < cfg.call_density + cfg.branch_density + cfg.loop_density
                && !mutables.is_empty()
            {
                let m = mutables[self.rng.gen_range(0..mutables.len())];
                let bound = self.rng.gen_range(1..4);
                let cond = Expr::bin(BinOp::Lt, Expr::Var(m), Expr::Int(bound));
                let step = Expr::bin(BinOp::Add, Expr::Var(m), Expr::Int(1));
                out.push(Stmt::While(cond, vec![Stmt::Assign(m, step)]));
            } else {
                let l = self.fresh_local();
                let e = self.expr(vars, 2);
                out.push(Stmt::Let(l, e));
                vars.push(l);
            }
        }
        out
    }

    /// Emits a dedicated host function carrying one seeded bug, plus the
    /// ground-truth record. The *source* always lives in the host, so
    /// reports can be matched back by (host, kind).
    fn seed_bug(
        &mut self,
        kind: CheckKind,
        feasible: bool,
        idx: usize,
        callees: &[(Symbol, usize)],
    ) -> Function {
        let fword = if feasible { "ok" } else { "no" };
        let kword = match kind {
            CheckKind::NullDeref => "null",
            CheckKind::Cwe23 => "cwe23",
            CheckKind::Cwe402 => "cwe402",
        };
        let name = self.sym(&format!("seed_{kword}_{fword}_{idx}"));
        let p0 = self.sym("sa");
        let p1 = self.sym("sb");
        let mut body: Vec<Stmt> = Vec::new();
        let fact = self.sym("fact");
        let hold = self.sym("hold");
        let (source_expr, sink_name): (Expr, Symbol) = match kind {
            CheckKind::NullDeref => (Expr::Null, self.sym("deref")),
            CheckKind::Cwe23 => (Expr::Call(self.sym("gets"), vec![]), self.sym("fopen")),
            CheckKind::Cwe402 => (Expr::Call(self.sym("getpass"), vec![]), self.sym("sendmsg")),
        };
        body.push(Stmt::Let(fact, source_expr));
        body.push(Stmt::Let(hold, Expr::Int(1)));
        // Route the fact through the identity pass-through chain (all
        // checkers: null survives copies/returns) and, for taint, through
        // arithmetic and an affine helper.
        let mut carried = Expr::Var(fact);
        if !self.passthrough.is_empty() && self.rng.gen_bool(0.6) {
            let depth = self.rng.gen_range(0..self.passthrough.len());
            carried = Expr::Call(self.passthrough[depth], vec![carried]);
        }
        if kind != CheckKind::NullDeref {
            carried = Expr::bin(BinOp::Add, carried, Expr::Int(self.rng.gen_range(1..9)));
            if !callees.is_empty() && self.rng.gen_bool(0.5) {
                // Through an identity-ish affine helper.
                if let Some(&h) = self.affine_helpers.first() {
                    carried = Expr::Call(h, vec![carried]);
                }
            }
        }
        let gated = vec![Stmt::Assign(hold, carried)];
        let params = vec![p0, p1];
        // Most guards reach deep into the call graph — that is where the
        // conventional design's cloning cost lives.
        let deep = self.rng.gen_bool(0.7);
        if feasible {
            let cond = if deep {
                self.deep_feasible_cond(&params, callees)
                    .unwrap_or_else(|| self.feasible_cond(&params))
            } else {
                self.feasible_cond(&params)
            };
            body.push(Stmt::If(cond, gated, vec![]));
        } else if deep {
            if let Some(cond) = self.deep_infeasible_cond(&params, callees) {
                body.push(Stmt::If(cond, gated, vec![]));
            } else {
                let mut guarded = self.infeasible_guard(&params, gated);
                body.append(&mut guarded);
            }
        } else {
            let mut guarded = self.infeasible_guard(&params, gated);
            body.append(&mut guarded);
        }
        body.push(Stmt::Expr(Expr::Call(sink_name, vec![Expr::Var(hold)])));
        body.push(Stmt::Return(Expr::Int(0)));
        self.bugs.push(SeededBug {
            kind,
            host: name,
            feasible,
            site: BugSite {
                source_fn: name,
                sink_fn: name,
            },
        });
        Function {
            name,
            params,
            body,
            is_extern: false,
        }
    }
}

/// Generates one subject from the configuration.
pub fn generate(cfg: &GenConfig) -> GeneratedSubject {
    let mut g = Gen {
        rng: StdRng::seed_from_u64(cfg.seed),
        interner: Interner::new(),
        functions: Vec::new(),
        bugs: Vec::new(),
        affine_helpers: Vec::new(),
        opaque_helpers: Vec::new(),
        passthrough: Vec::new(),
        next_local: 0,
    };

    // Checker externs.
    for name in ["deref", "gets", "fopen", "getpass", "sendmsg", "libmisc"] {
        let sym = g.sym(name);
        let params = match name {
            "gets" | "getpass" => vec![],
            _ => vec![g.sym("x")],
        };
        g.functions.push(Function {
            name: sym,
            params,
            body: vec![],
            is_extern: true,
        });
    }

    // Affine helpers: quick-path fodder (`x * M + C`).
    for i in 0..cfg.affine_helpers {
        let name = g.sym(&format!("aff{i}"));
        let x = g.sym("x");
        let m = g.rng.gen_range(1..6);
        let c = g.rng.gen_range(0..50);
        let body = vec![Stmt::Return(Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Mul, Expr::Var(x), Expr::Int(m)),
            Expr::Int(c),
        ))];
        g.affine_helpers.push(name);
        g.functions.push(Function {
            name,
            params: vec![x],
            body,
            is_extern: false,
        });
    }
    // Opaque helpers: branching, so their summaries stay opaque and the
    // solvers must clone them.
    for i in 0..cfg.opaque_helpers {
        let name = g.sym(&format!("opq{i}"));
        let x = g.sym("x");
        let y = g.sym("y");
        let t = g.rng.gen_range(1..100);
        let body = vec![
            Stmt::If(
                Expr::bin(BinOp::Gt, Expr::Var(x), Expr::Int(t)),
                vec![Stmt::Return(Expr::bin(
                    BinOp::Add,
                    Expr::Var(x),
                    Expr::Var(y),
                ))],
                vec![],
            ),
            Stmt::Return(Expr::bin(BinOp::Sub, Expr::Var(y), Expr::Var(x))),
        ];
        g.opaque_helpers.push(name);
        g.functions.push(Function {
            name,
            params: vec![x, y],
            body,
            is_extern: false,
        });
    }

    // Identity pass-through chain (facts travel through K call levels;
    // the Infer-like baseline's bounded composition misses the deep ones).
    let chain_len = 6usize;
    for i in 0..chain_len {
        let name = g.sym(&format!("pass{i}"));
        let x = g.sym("x");
        let body = if i == 0 {
            vec![Stmt::Return(Expr::Var(x))]
        } else {
            let prev = g.passthrough[i - 1];
            vec![Stmt::Return(Expr::Call(prev, vec![Expr::Var(x)]))]
        };
        g.passthrough.push(name);
        g.functions.push(Function {
            name,
            params: vec![x],
            body,
            is_extern: false,
        });
    }

    // Filler functions in reverse order so calls go to already-emitted
    // (higher-index in call DAG) functions.
    let mut emitted: Vec<(Symbol, usize)> = g
        .functions
        .iter()
        .filter(|f| !f.is_extern)
        .map(|f| (f.name, f.params.len()))
        .collect();
    for i in 0..cfg.functions {
        let name = g.sym(&format!("fn{i}"));
        let arity = g.rng.gen_range(1..4usize);
        let params: Vec<Symbol> = (0..arity)
            .map(|k| g.interner.intern(&format!("p{k}")))
            .collect();
        let mut vars = params.clone();
        // A couple of mutable locals that branches can assign.
        let mut mutables = Vec::new();
        let mut body = Vec::new();
        for _ in 0..2 {
            let m = g.fresh_local();
            let init = g.expr(&vars, 1);
            body.push(Stmt::Let(m, init));
            vars.push(m);
            mutables.push(m);
        }
        let stmts = cfg.stmts_per_function.saturating_sub(3).max(1);
        let callee_window: Vec<(Symbol, usize)> = emitted.iter().rev().take(8).copied().collect();
        let mut filler = g.filler(cfg, &mut vars, &mut mutables[..], &callee_window, stmts);
        body.append(&mut filler);
        let ret = g.expr(&vars, 1);
        body.push(Stmt::Return(ret));
        g.functions.push(Function {
            name,
            params,
            body,
            is_extern: false,
        });
        emitted.push((name, arity));
    }

    // Seeded bugs, one host function each.
    let callee_window: Vec<(Symbol, usize)> = emitted.iter().rev().take(8).copied().collect();
    let plan: Vec<(CheckKind, bool, usize)> = [
        (CheckKind::NullDeref, true, cfg.null_feasible),
        (CheckKind::NullDeref, false, cfg.null_infeasible),
        (CheckKind::Cwe23, true, cfg.cwe23_feasible),
        (CheckKind::Cwe23, false, cfg.cwe23_infeasible),
        (CheckKind::Cwe402, true, cfg.cwe402_feasible),
        (CheckKind::Cwe402, false, cfg.cwe402_infeasible),
    ]
    .into_iter()
    .flat_map(|(k, f, n)| (0..n).map(move |i| (k, f, i)))
    .collect();
    for (kind, feasible, idx) in plan {
        let f = g.seed_bug(kind, feasible, idx, &callee_window);
        g.functions.push(f);
    }

    GeneratedSubject {
        surface: Program {
            functions: g.functions,
        },
        interner: g.interner,
        bugs: g.bugs,
    }
}

/// Replaces identifier tokens per `map`, leaving everything else (and
/// identifiers not in the map) untouched. Operates on whole tokens, so
/// `fn1` never rewrites inside `fn12`.
fn rename_idents(text: &str, map: &std::collections::HashMap<String, String>) -> String {
    let mut out = String::with_capacity(text.len() + text.len() / 8);
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let word = &text[start..i];
            match map.get(word) {
                Some(r) => out.push_str(r),
                None => out.push_str(word),
            }
        } else {
            out.push(c as char);
            i += 1;
        }
    }
    out
}

/// Generates `modules` independent subjects and merges them into one
/// translation unit of *disconnected* call-graph components: module `m`
/// is generated from `cfg.seed + m` and every one of its non-extern
/// function names is prefixed `m{m}_`, so the only symbols the modules
/// share are the extern library declarations (which carry no
/// definitions and never weld components together). This is the shape
/// partitioned scans need to show a real per-shard memory win — a
/// single generated module is one connected component, so its shard
/// closure would be the whole program.
pub fn generate_multi(cfg: &GenConfig, modules: usize) -> String {
    let mut out = String::new();
    for m in 0..modules.max(1) {
        let sub = generate(&GenConfig {
            seed: cfg.seed.wrapping_add(m as u64),
            ..cfg.clone()
        });
        let mut map = std::collections::HashMap::new();
        for f in sub.surface.functions.iter().filter(|f| !f.is_extern) {
            let name = sub.interner.resolve(f.name);
            map.insert(name.to_owned(), format!("m{m}_{name}"));
        }
        let text = rename_idents(&sub.to_source(), &map);
        for line in text.lines() {
            // Every module declares the same externs; keep one copy.
            if m > 0 && line.trim_start().starts_with("extern fn") {
                continue;
            }
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_ir::{compile_ast, CompileOptions};

    #[test]
    fn generated_programs_compile_and_validate() {
        for seed in [1u64, 2, 42, 0xdead] {
            let cfg = GenConfig {
                seed,
                ..Default::default()
            };
            let mut s = generate(&cfg);
            let program = compile_ast(&s.surface, &mut s.interner, CompileOptions::default())
                .expect("generated program must compile");
            assert!(program.size() > 100);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.surface, b.surface);
        assert_eq!(a.bugs.len(), b.bugs.len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&GenConfig {
            seed: 1,
            ..Default::default()
        });
        let b = generate(&GenConfig {
            seed: 2,
            ..Default::default()
        });
        assert_ne!(a.surface, b.surface);
    }

    #[test]
    fn bug_counts_match_config() {
        let cfg = GenConfig {
            null_feasible: 3,
            null_infeasible: 2,
            cwe23_feasible: 1,
            cwe23_infeasible: 0,
            cwe402_feasible: 2,
            cwe402_infeasible: 1,
            ..Default::default()
        };
        let s = generate(&cfg);
        assert_eq!(s.bugs.len(), 9);
        assert_eq!(s.bugs.iter().filter(|b| b.feasible).count(), 6);
    }

    #[test]
    fn scales_with_function_count() {
        let small = generate(&GenConfig {
            functions: 5,
            ..Default::default()
        });
        let large = generate(&GenConfig {
            functions: 50,
            ..Default::default()
        });
        let count = |s: &GeneratedSubject| s.surface.functions.len();
        assert!(count(&large) > count(&small) + 40);
    }
}
#[cfg(test)]
mod source_tests {
    use super::*;
    use fusion_ir::parser::parse;

    #[test]
    fn multi_module_merge_compiles_into_disconnected_components() {
        let cfg = GenConfig {
            functions: 6,
            ..Default::default()
        };
        let text = generate_multi(&cfg, 3);
        let program =
            fusion_ir::compile(&text, fusion_ir::CompileOptions::default()).expect("compiles");
        let errs = fusion_ir::validate::check_program(&program);
        assert!(errs.is_empty(), "{errs:?}");
        // Each module's functions survive under their prefixes, and the
        // single shared extern block didn't triple.
        let names: Vec<&str> = program
            .functions
            .iter()
            .map(|f| program.name(f.name))
            .collect();
        for m in 0..3 {
            assert!(
                names.iter().any(|n| n.starts_with(&format!("m{m}_"))),
                "module {m} missing"
            );
        }
        assert_eq!(names.iter().filter(|n| **n == "deref").count(), 1);
        // Roughly three modules' worth of functions.
        let single = generate(&cfg).surface.functions.len();
        assert!(program.functions.len() > 2 * single);
    }

    #[test]
    fn emitted_source_reparses_and_matches() {
        let subject = generate(&GenConfig {
            functions: 6,
            ..Default::default()
        });
        let text = subject.to_source();
        let mut interner = fusion_ir::Interner::new();
        let reparsed = parse(&text, &mut interner).expect("generated source parses");
        assert_eq!(reparsed.functions.len(), subject.surface.functions.len());
        // Fixpoint: printing the reparsed program reproduces the text.
        let text2 = fusion_ir::pretty::surface_to_string(&reparsed, &interner);
        assert_eq!(text, text2);
    }
}

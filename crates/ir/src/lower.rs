//! Lowering from the surface language to the core SSA form of Fig. 4.
//!
//! The pipeline implements exactly the normalizations the paper assumes in
//! §3.1:
//!
//! * **loop-free**: `while` loops are unrolled a fixed number of times
//!   (bounded-model-checking style), nested `if`s replacing iterations;
//! * **SSA with gating**: every variable has one definition; joins are merged
//!   with explicit `v = ite(cond, v_then, v_else)` assignments instead of φ
//!   (the almost-linear gating construction of Tu & Padua the paper cites);
//! * **single exit**: early returns are rewritten with a `__ret_taken` /
//!   `__ret_val` pair so each function ends in exactly one
//!   [`DefKind::Return`];
//! * **explicit control dependence**: every definition records the innermost
//!   [`DefKind::Branch`] vertex guarding it.

use crate::ast::{self, BinOp, Expr, Stmt, UnOp};
use crate::interner::{Interner, Symbol};
use crate::ssa::{CallSite, CallSiteId, Def, DefKind, FuncId, Function, Op, Program, VarId};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Options controlling lowering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LowerOptions {
    /// How many times `while` loops are unrolled (paper: "a fixed number of
    /// times in practice"; default 2).
    pub loop_unroll: usize,
}

impl Default for LowerOptions {
    fn default() -> Self {
        Self { loop_unroll: 2 }
    }
}

/// A lowering failure (unknown names, arity mismatches, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    /// The function being lowered when the error occurred, if any.
    pub function: Option<String>,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.function {
            Some(name) => write!(f, "in function `{name}`: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl Error for LowerError {}

/// Outcome of lowering a statement list, used to place return guards.
#[derive(Debug, Clone, Copy, Default)]
struct BlockOutcome {
    /// Every path through the list reaches a `return`.
    definitely_returned: bool,
    /// Some path through the list reaches a `return`.
    may_return: bool,
}

struct FuncLowerer<'a> {
    defs: Vec<Def>,
    env: HashMap<Symbol, VarId>,
    guard: Option<VarId>,
    interner: &'a mut Interner,
    func_ids: &'a HashMap<Symbol, FuncId>,
    func_arities: &'a [usize],
    call_sites: &'a mut Vec<CallSite>,
    func_id: FuncId,
    func_name: String,
    const_cache: HashMap<u32, VarId>,
    ret_val: Option<Symbol>,
    ret_taken: Option<Symbol>,
    loop_unroll: usize,
}

impl<'a> FuncLowerer<'a> {
    fn err(&self, message: impl Into<String>) -> LowerError {
        LowerError {
            function: Some(self.func_name.clone()),
            message: message.into(),
        }
    }

    fn fresh(&mut self, kind: DefKind, base: &str) -> VarId {
        let var = VarId(self.defs.len() as u32);
        let name = self.interner.intern(&format!("{base}.{}", var.0));
        self.defs.push(Def {
            var,
            kind,
            guard: self.guard,
            name,
        });
        var
    }

    /// Emits (or reuses) a constant definition. Constants are pure, so one
    /// definition per distinct value suffices; it carries the guard of its
    /// first creation point, which keeps guard regions contiguous in
    /// program order (an invariant [`crate::cfg`] relies on).
    fn constant(&mut self, value: u32) -> VarId {
        if let Some(&v) = self.const_cache.get(&value) {
            return v;
        }
        let v = self.fresh(
            DefKind::Const {
                value,
                is_null: false,
            },
            &format!("c{value}"),
        );
        self.const_cache.insert(value, v);
        v
    }

    fn lower_expr(&mut self, e: &Expr) -> Result<VarId, LowerError> {
        match e {
            Expr::Int(v) => Ok(self.constant(*v as u32)),
            Expr::Null => {
                // Null sources are never deduplicated: each occurrence is a
                // distinct bug source for the null-dereference checker.
                Ok(self.fresh(
                    DefKind::Const {
                        value: 0,
                        is_null: true,
                    },
                    "null",
                ))
            }
            Expr::Var(sym) => self.env.get(sym).copied().ok_or_else(|| {
                let name = self.interner.resolve(*sym).to_owned();
                self.err(format!("use of undefined variable `{name}`"))
            }),
            Expr::Unary(op, inner) => {
                let v = self.lower_expr(inner)?;
                let zero = self.constant(0);
                Ok(match op {
                    UnOp::Not => self.fresh(
                        DefKind::Binary {
                            op: Op::Eq,
                            lhs: v,
                            rhs: zero,
                        },
                        "t",
                    ),
                    UnOp::Neg => self.fresh(
                        DefKind::Binary {
                            op: Op::Sub,
                            lhs: zero,
                            rhs: v,
                        },
                        "t",
                    ),
                    UnOp::BitNot => {
                        let ones = self.constant(u32::MAX);
                        self.fresh(
                            DefKind::Binary {
                                op: Op::Xor,
                                lhs: v,
                                rhs: ones,
                            },
                            "t",
                        )
                    }
                })
            }
            Expr::Binary(op, a, b) => {
                let va = self.lower_expr(a)?;
                let vb = self.lower_expr(b)?;
                let simple = |op| DefKind::Binary {
                    op,
                    lhs: va,
                    rhs: vb,
                };
                let swapped = |op| DefKind::Binary {
                    op,
                    lhs: vb,
                    rhs: va,
                };
                let kind = match op {
                    BinOp::Add => simple(Op::Add),
                    BinOp::Sub => simple(Op::Sub),
                    BinOp::Mul => simple(Op::Mul),
                    BinOp::Div => simple(Op::Udiv),
                    BinOp::Rem => simple(Op::Urem),
                    BinOp::BitAnd => simple(Op::And),
                    BinOp::BitOr => simple(Op::Or),
                    BinOp::BitXor => simple(Op::Xor),
                    BinOp::Shl => simple(Op::Shl),
                    BinOp::Shr => simple(Op::Lshr),
                    BinOp::Lt => simple(Op::Slt),
                    BinOp::Le => simple(Op::Sle),
                    BinOp::Gt => swapped(Op::Slt),
                    BinOp::Ge => swapped(Op::Sle),
                    BinOp::Eq => simple(Op::Eq),
                    BinOp::Ne => simple(Op::Ne),
                    BinOp::And | BinOp::Or => {
                        let zero = self.constant(0);
                        let na = self.fresh(
                            DefKind::Binary {
                                op: Op::Ne,
                                lhs: va,
                                rhs: zero,
                            },
                            "t",
                        );
                        let nb = self.fresh(
                            DefKind::Binary {
                                op: Op::Ne,
                                lhs: vb,
                                rhs: zero,
                            },
                            "t",
                        );
                        let o = if *op == BinOp::And { Op::And } else { Op::Or };
                        DefKind::Binary {
                            op: o,
                            lhs: na,
                            rhs: nb,
                        }
                    }
                };
                Ok(self.fresh(kind, "t"))
            }
            Expr::Call(name, args) => {
                let callee = *self.func_ids.get(name).ok_or_else(|| {
                    let n = self.interner.resolve(*name).to_owned();
                    self.err(format!("call to unknown function `{n}`"))
                })?;
                let expect = self.func_arities[callee.index()];
                if args.len() != expect {
                    let n = self.interner.resolve(*name).to_owned();
                    return Err(self.err(format!(
                        "`{n}` expects {expect} argument(s), got {}",
                        args.len()
                    )));
                }
                let mut arg_vars = Vec::with_capacity(args.len());
                for a in args {
                    arg_vars.push(self.lower_expr(a)?);
                }
                let site = CallSiteId(self.call_sites.len() as u32);
                let var = VarId(self.defs.len() as u32);
                self.call_sites.push(CallSite {
                    caller: self.func_id,
                    stmt: var,
                    callee,
                });
                let base = format!("r_{}", self.interner.resolve(*name));
                Ok(self.fresh(
                    DefKind::Call {
                        callee,
                        args: arg_vars,
                        site,
                    },
                    &base,
                ))
            }
        }
    }

    fn ensure_ret_vars(&mut self) {
        if self.ret_val.is_some() {
            return;
        }
        let rv = self.interner.intern("__ret_val");
        let rt = self.interner.intern("__ret_taken");
        let zero = self.constant(0);
        self.env.insert(rv, zero);
        self.env.insert(rt, zero);
        self.ret_val = Some(rv);
        self.ret_taken = Some(rt);
    }

    /// Lowers `if (cond_var) { then } else { else }` given already-lowered
    /// branch closures, merging environment changes with gated `ite`s.
    fn lower_if(
        &mut self,
        cond: &Expr,
        then_b: &[Stmt],
        else_b: &[Stmt],
    ) -> Result<BlockOutcome, LowerError> {
        if contains_return(then_b) || contains_return(else_b) {
            self.ensure_ret_vars();
        }
        let cv = self.lower_expr(cond)?;
        let pre_env = self.env.clone();
        let outer_guard = self.guard;

        // Then branch under a fresh Branch vertex.
        let bt = self.fresh(DefKind::Branch { cond: cv }, "if");
        self.guard = Some(bt);
        let t_out = self.lower_stmts(then_b)?;
        let then_env = std::mem::replace(&mut self.env, pre_env.clone());
        self.guard = outer_guard;

        // Else branch under a Branch vertex on the negated condition.
        let (else_env, e_out) = if else_b.is_empty() {
            (pre_env.clone(), BlockOutcome::default())
        } else {
            let zero = self.constant(0);
            let ncv = self.fresh(
                DefKind::Binary {
                    op: Op::Eq,
                    lhs: cv,
                    rhs: zero,
                },
                "t",
            );
            let bf = self.fresh(DefKind::Branch { cond: ncv }, "else");
            self.guard = Some(bf);
            let e_out = self.lower_stmts(else_b)?;
            let else_env = std::mem::replace(&mut self.env, pre_env.clone());
            self.guard = outer_guard;
            (else_env, e_out)
        };

        // Merge: for every binding visible before the branch, reconcile the
        // two arms with a gated ite. Block-local `let`s disappear here.
        let mut keys: Vec<Symbol> = pre_env.keys().copied().collect();
        keys.sort_unstable();
        for sym in keys {
            let before = pre_env[&sym];
            let tv = then_env.get(&sym).copied().unwrap_or(before);
            let ev = else_env.get(&sym).copied().unwrap_or(before);
            if tv != ev {
                let base = self.interner.resolve(sym).to_owned();
                let m = self.fresh(
                    DefKind::Ite {
                        cond: cv,
                        then_v: tv,
                        else_v: ev,
                    },
                    &base,
                );
                self.env.insert(sym, m);
            } else {
                self.env.insert(sym, tv);
            }
        }

        Ok(BlockOutcome {
            definitely_returned: t_out.definitely_returned
                && e_out.definitely_returned
                && !else_b.is_empty(),
            may_return: t_out.may_return || e_out.may_return,
        })
    }

    fn lower_stmts(&mut self, stmts: &[Stmt]) -> Result<BlockOutcome, LowerError> {
        let mut outcome = BlockOutcome::default();
        let mut idx = 0usize;
        while idx < stmts.len() {
            let stmt = &stmts[idx];
            idx += 1;
            match stmt {
                Stmt::Let(sym, e) | Stmt::Assign(sym, e) => {
                    if matches!(stmt, Stmt::Assign(_, _)) && !self.env.contains_key(sym) {
                        let name = self.interner.resolve(*sym).to_owned();
                        return Err(self.err(format!("assignment to undeclared variable `{name}`")));
                    }
                    let v = self.lower_expr(e)?;
                    self.env.insert(*sym, v);
                }
                Stmt::Expr(e) => {
                    self.lower_expr(e)?;
                }
                Stmt::Return(e) => {
                    let v = self.lower_expr(e)?;
                    self.ensure_ret_vars();
                    let one = self.constant(1);
                    let (rv, rt) = (self.ret_val.unwrap(), self.ret_taken.unwrap());
                    self.env.insert(rv, v);
                    self.env.insert(rt, one);
                    outcome.definitely_returned = true;
                    outcome.may_return = true;
                    // Everything after an unconditional return is dead.
                    return Ok(outcome);
                }
                Stmt::While(cond, body) => {
                    let expanded = unroll_while(cond, body, self.loop_unroll);
                    let sub = self.lower_stmts(&expanded)?;
                    outcome.may_return |= sub.may_return;
                    if sub.definitely_returned {
                        outcome.definitely_returned = true;
                        return Ok(outcome);
                    }
                    if sub.may_return && idx < stmts.len() {
                        let rest = self.lower_guarded_rest(&stmts[idx..])?;
                        outcome.definitely_returned = rest.definitely_returned;
                        outcome.may_return |= rest.may_return;
                        return Ok(outcome);
                    }
                }
                Stmt::If(cond, then_b, else_b) => {
                    let sub = self.lower_if(cond, then_b, else_b)?;
                    outcome.may_return |= sub.may_return;
                    if sub.definitely_returned {
                        outcome.definitely_returned = true;
                        return Ok(outcome);
                    }
                    if sub.may_return && idx < stmts.len() {
                        // The remainder of this list executes only when the
                        // branch did not return: guard it on
                        // `__ret_taken == 0` and merge.
                        let rest = self.lower_guarded_rest(&stmts[idx..])?;
                        outcome.definitely_returned = rest.definitely_returned;
                        outcome.may_return |= rest.may_return;
                        return Ok(outcome);
                    }
                }
            }
        }
        Ok(outcome)
    }

    /// Lowers the tail of a statement list under the guard
    /// `__ret_taken == 0`, merging its effects back.
    fn lower_guarded_rest(&mut self, rest: &[Stmt]) -> Result<BlockOutcome, LowerError> {
        let rt_sym = self.ret_taken.expect("ret vars materialized");
        let rt = self.env[&rt_sym];
        let zero = self.constant(0);
        let cont = self.fresh(
            DefKind::Binary {
                op: Op::Eq,
                lhs: rt,
                rhs: zero,
            },
            "not_returned",
        );
        let pre_env = self.env.clone();
        let outer_guard = self.guard;
        let bc = self.fresh(DefKind::Branch { cond: cont }, "cont");
        self.guard = Some(bc);
        let out = self.lower_stmts(rest)?;
        let after_env = std::mem::replace(&mut self.env, pre_env.clone());
        self.guard = outer_guard;
        let mut keys: Vec<Symbol> = pre_env.keys().copied().collect();
        keys.sort_unstable();
        for sym in keys {
            let before = pre_env[&sym];
            let after = after_env.get(&sym).copied().unwrap_or(before);
            if after != before {
                let base = self.interner.resolve(sym).to_owned();
                let m = self.fresh(
                    DefKind::Ite {
                        cond: cont,
                        then_v: after,
                        else_v: before,
                    },
                    &base,
                );
                self.env.insert(sym, m);
            }
        }
        // The rest executes only when the branch above did not return, so
        // "definitely returns" holds overall iff the rest always returns.
        Ok(out)
    }
}

fn contains_return(stmts: &[Stmt]) -> bool {
    let mut found = false;
    ast::walk_stmts(stmts, &mut |s| {
        if matches!(s, Stmt::Return(_)) {
            found = true;
        }
    });
    found
}

/// Expands `while (c) { body }` into `k` nested `if`s (loop unrolling).
fn unroll_while(cond: &Expr, body: &[Stmt], k: usize) -> Vec<Stmt> {
    if k == 0 {
        return Vec::new();
    }
    let mut inner = body.to_vec();
    inner.extend(unroll_while(cond, body, k - 1));
    vec![Stmt::If(cond.clone(), inner, Vec::new())]
}

/// Lowers a surface program to the core SSA program.
///
/// The caller is expected to have already unrolled recursion (see
/// [`crate::callgraph::unroll_recursion`]); lowering itself does not require
/// it, but the downstream analyses assume an acyclic call graph.
///
/// # Errors
///
/// Returns [`LowerError`] for unknown variables or functions, arity
/// mismatches, and duplicate function names.
pub fn lower(
    surface: &ast::Program,
    interner: &mut Interner,
    options: LowerOptions,
) -> Result<Program, LowerError> {
    let mut func_ids = HashMap::new();
    let mut arities = Vec::new();
    for (i, f) in surface.functions.iter().enumerate() {
        if func_ids.insert(f.name, FuncId(i as u32)).is_some() {
            let name = interner.resolve(f.name).to_owned();
            return Err(LowerError {
                function: None,
                message: format!("duplicate function `{name}`"),
            });
        }
        arities.push(f.params.len());
    }

    let mut call_sites = Vec::new();
    let mut functions = Vec::with_capacity(surface.functions.len());
    for (i, sf) in surface.functions.iter().enumerate() {
        let id = FuncId(i as u32);
        if sf.is_extern {
            functions.push(Function {
                name: sf.name,
                id,
                params: Vec::new(),
                defs: Vec::new(),
                ret: None,
                is_extern: true,
            });
            continue;
        }
        let func_name = interner.resolve(sf.name).to_owned();
        let mut lw = FuncLowerer {
            defs: Vec::new(),
            env: HashMap::new(),
            guard: None,
            interner,
            func_ids: &func_ids,
            func_arities: &arities,
            call_sites: &mut call_sites,
            func_id: id,
            func_name: func_name.clone(),
            const_cache: HashMap::new(),
            ret_val: None,
            ret_taken: None,
            loop_unroll: options.loop_unroll,
        };
        // Parameters: `v = ⟨v⟩` identity statements.
        let mut params = Vec::with_capacity(sf.params.len());
        for (pi, &p) in sf.params.iter().enumerate() {
            let var = VarId(lw.defs.len() as u32);
            lw.defs.push(Def {
                var,
                kind: DefKind::Param { index: pi },
                guard: None,
                name: p,
            });
            if lw.env.insert(p, var).is_some() {
                let pname = lw.interner.resolve(p).to_owned();
                return Err(LowerError {
                    function: Some(func_name),
                    message: format!("duplicate parameter `{pname}`"),
                });
            }
            params.push(var);
        }
        let outcome = lw.lower_stmts(&sf.body)?;
        let ret_src = match (lw.ret_val, outcome.may_return) {
            (Some(rv), _) => lw.env[&rv],
            (None, _) => lw.constant(0), // fell off the end: return 0
        };
        let saved_guard = lw.guard;
        debug_assert!(saved_guard.is_none());
        let ret = lw.fresh(DefKind::Return { src: ret_src }, "ret");
        let defs = lw.defs;
        functions.push(Function {
            name: sf.name,
            id,
            params,
            defs,
            ret: Some(ret),
            is_extern: false,
        });
    }

    Ok(Program {
        functions,
        call_sites,
        interner: interner.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn lower_src(src: &str) -> Program {
        let mut i = Interner::new();
        let surface = parse(src, &mut i).expect("parse");
        lower(&surface, &mut i, LowerOptions::default()).expect("lower")
    }

    #[test]
    fn straight_line_function() {
        let p = lower_src("fn bar(x) { let y = x * 2; let z = y; return z; }");
        let f = p.func_by_name("bar").unwrap();
        assert!(!f.is_extern);
        assert_eq!(f.params.len(), 1);
        let ret = f.def(f.ret.unwrap());
        match &ret.kind {
            DefKind::Return { src } => {
                // z = y = x * 2 chain: the returned variable is defined by a
                // copy-free chain ending in the multiply.
                let mut v = *src;
                loop {
                    match &f.def(v).kind {
                        DefKind::Copy { src } => v = *src,
                        DefKind::Binary { op: Op::Mul, .. } => break,
                        other => panic!("unexpected def {other:?}"),
                    }
                }
            }
            other => panic!("not a return: {other:?}"),
        }
    }

    #[test]
    fn early_return_becomes_gated_single_exit() {
        let p = lower_src("fn f(a) { if (a > 0) { return 1; } return 2; }");
        let f = p.func_by_name("f").unwrap();
        // Exactly one Return definition, and it is the last one.
        let returns: Vec<_> = f
            .defs
            .iter()
            .filter(|d| matches!(d.kind, DefKind::Return { .. }))
            .collect();
        assert_eq!(returns.len(), 1);
        assert_eq!(returns[0].var, f.ret.unwrap());
        assert_eq!(returns[0].var.index(), f.defs.len() - 1);
        // The returned value must be an ite selecting between 1 and 2.
        let DefKind::Return { src } = f.def(f.ret.unwrap()).kind else {
            unreachable!()
        };
        let mut saw_ite = false;
        let mut stack = vec![src];
        while let Some(v) = stack.pop() {
            if let DefKind::Ite { then_v, else_v, .. } = &f.def(v).kind {
                saw_ite = true;
                stack.push(*then_v);
                stack.push(*else_v);
            }
        }
        assert!(saw_ite);
    }

    #[test]
    fn guards_nest_for_nested_ifs() {
        let p = lower_src("fn f(a, b) { let r = 0; if (a) { if (b) { r = 1; } } return r; }");
        let f = p.func_by_name("f").unwrap();
        // Find the constant-1 def guarded by the inner branch; its guard's
        // guard must be the outer branch.
        let inner_guarded = f
            .defs
            .iter()
            .find(|d| d.guard.is_some() && f.def(d.guard.unwrap()).guard.is_some());
        assert!(
            inner_guarded.is_some(),
            "expected a doubly-nested definition"
        );
        let d = inner_guarded.unwrap();
        let g1 = d.guard.unwrap();
        assert!(matches!(f.def(g1).kind, DefKind::Branch { .. }));
        let g2 = f.def(g1).guard.unwrap();
        assert!(matches!(f.def(g2).kind, DefKind::Branch { .. }));
        assert!(f.def(g2).guard.is_none());
    }

    #[test]
    fn while_is_unrolled() {
        let p = lower_src("fn f(n) { let i = 0; while (i < n) { i = i + 1; } return i; }");
        let f = p.func_by_name("f").unwrap();
        // Two unrollings => two Branch vertices from the loop condition.
        let branches = f
            .defs
            .iter()
            .filter(|d| matches!(d.kind, DefKind::Branch { .. }))
            .count();
        assert_eq!(branches, 2);
        // And two adds.
        let adds = f
            .defs
            .iter()
            .filter(|d| matches!(d.kind, DefKind::Binary { op: Op::Add, .. }))
            .count();
        assert_eq!(adds, 2);
    }

    #[test]
    fn call_sites_are_distinct() {
        let p = lower_src(
            "fn bar(x) { return x; } fn foo(a, b) { let c = bar(a); let d = bar(b); return c + d; }",
        );
        assert_eq!(p.call_sites.len(), 2);
        assert_ne!(p.call_sites[0].stmt, p.call_sites[1].stmt);
        assert_eq!(p.call_sites[0].callee, p.call_sites[1].callee);
    }

    #[test]
    fn extern_calls_resolve() {
        let p = lower_src("extern fn gets(); fn f() { let x = gets(); return x; }");
        let f = p.func_by_name("f").unwrap();
        let call = f
            .defs
            .iter()
            .find(|d| matches!(d.kind, DefKind::Call { .. }))
            .unwrap();
        let DefKind::Call { callee, .. } = &call.kind else {
            unreachable!()
        };
        assert!(p.func(*callee).is_extern);
    }

    #[test]
    fn null_sources_are_not_deduplicated() {
        let p = lower_src("fn f() { let a = null; let b = null; return a + b; }");
        let f = p.func_by_name("f").unwrap();
        let nulls = f
            .defs
            .iter()
            .filter(|d| matches!(d.kind, DefKind::Const { is_null: true, .. }))
            .count();
        assert_eq!(nulls, 2);
    }

    #[test]
    fn plain_constants_are_deduplicated() {
        let p = lower_src("fn f() { let a = 7; let b = 7; return a + b; }");
        let f = p.func_by_name("f").unwrap();
        let sevens = f
            .defs
            .iter()
            .filter(|d| {
                matches!(
                    d.kind,
                    DefKind::Const {
                        value: 7,
                        is_null: false
                    }
                )
            })
            .count();
        assert_eq!(sevens, 1);
    }

    #[test]
    fn errors_on_undefined_variable() {
        let mut i = Interner::new();
        let s = parse("fn f() { return zz; }", &mut i).unwrap();
        let err = lower(&s, &mut i, LowerOptions::default()).unwrap_err();
        assert!(err.message.contains("zz"));
    }

    #[test]
    fn errors_on_arity_mismatch() {
        let mut i = Interner::new();
        let s = parse("fn g(x) { return x; } fn f() { return g(1, 2); }", &mut i).unwrap();
        let err = lower(&s, &mut i, LowerOptions::default()).unwrap_err();
        assert!(err.message.contains("argument"));
    }

    #[test]
    fn errors_on_duplicate_function() {
        let mut i = Interner::new();
        let s = parse("fn f() { return 0; } fn f() { return 1; }", &mut i).unwrap();
        assert!(lower(&s, &mut i, LowerOptions::default()).is_err());
    }

    #[test]
    fn ssa_operands_precede_uses() {
        let p = lower_src(
            "fn f(a, b) { let r = 0; if (a < b) { r = a; } else { r = b; } \
             while (r < 10) { r = r + a; } return r; }",
        );
        for f in &p.functions {
            for d in &f.defs {
                for o in d.kind.operands() {
                    assert!(o.index() < d.var.index(), "operand after use in {}", d.var);
                }
                if let Some(g) = d.guard {
                    assert!(g.index() < d.var.index());
                    assert!(matches!(f.def(g).kind, DefKind::Branch { .. }));
                }
            }
        }
    }

    #[test]
    fn fall_through_returns_zero() {
        let p = lower_src("fn f(a) { if (a) { return 5; } }");
        let f = p.func_by_name("f").unwrap();
        let DefKind::Return { src } = f.def(f.ret.unwrap()).kind else {
            unreachable!()
        };
        // Returned value: ite(a != 0 path, 5, 0)
        match &f.def(src).kind {
            DefKind::Ite { .. } => {}
            other => panic!("expected ite merge of return value, got {other:?}"),
        }
    }

    #[test]
    fn statements_after_maybe_return_are_guarded() {
        let p = lower_src(
            "extern fn sink(x);\n\
             fn f(a, p) { if (a) { return 0; } sink(p); return 1; }",
        );
        let f = p.func_by_name("f").unwrap();
        let call = f
            .defs
            .iter()
            .find(|d| matches!(d.kind, DefKind::Call { .. }))
            .unwrap();
        // sink(p) must be guarded by the continuation branch.
        let g = call.guard.expect("sink call must be guarded");
        let DefKind::Branch { cond } = f.def(g).kind else {
            panic!("guard not a branch")
        };
        // cond is `__ret_taken == 0`
        match f.def(cond).kind {
            DefKind::Binary { op: Op::Eq, .. } => {}
            ref other => panic!("continuation condition wrong: {other:?}"),
        }
    }
}

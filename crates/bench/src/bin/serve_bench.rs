//! `serve_bench` — the warm-analysis-service perf harness
//! (`BENCH_serve.json`).
//!
//! Measures the tentpole claim of the service mode: after one
//! single-function edit, a warm `rescan` (resident PDG, facts, slice
//! closures, verdict cache, and recorded work-item outcomes; dirtiness
//! tracking evicts only what the edit reaches) beats a cold scan of the
//! edited program — at 1–8 threads, with reports asserted byte-identical
//! and invalidated-vs-retained counts recorded.
//!
//! Corpus: the pipeline harness's many-source hot-sink program plus two
//! scaled workload subjects, each edited by inserting one statement into
//! one middle function.
//!
//! Output: `BENCH_serve.json` (override with `FUSION_BENCH_OUT`). With
//! `FUSION_BENCH_ENFORCE=1` the process exits non-zero unless, at 4
//! threads, the warm rescan (a) takes at most 50% of the cold wall,
//! (b) issues strictly fewer solver queries, and (c) reports
//! byte-identically — the CI regression gate.

use fusion::checkers::CheckerSet;
use fusion::engine::{AnalysisOptions, FeasibilityEngine, MultiAnalysisRun};
use fusion::graph_solver::FusionSolver;
use fusion::incremental::{AnalysisSession, InvalidationStats};
use fusion::slice_cache::SliceCache;
use fusion_bench::{banner, default_budget, report, scale_from_env};
use fusion_ir::{compile, CompileOptions, Program};
use fusion_workloads::{generate, SUBJECTS};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Thread count the CI gate is applied at.
const GATE_THREADS: usize = 4;
/// Wall-clock measurements take the best of this many repetitions.
const ITERS: usize = 3;
/// Thread counts measured and recorded.
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Same shape as the pipeline harness's synthetic subject: many
/// independent hot functions, so an edit to one retains the others.
fn hot_sink_source(funcs: usize, sinks: usize) -> String {
    let mut s = String::from("extern fn deref(p);\n");
    for f in 0..funcs {
        let _ = writeln!(
            s,
            "fn churn{f}(a, b) {{ let t = a * b; let u = t * t + a; \
             let v = u * b + t; let z = v * v + u; return z; }}"
        );
        let _ = writeln!(s, "fn hot{f}(x, y) {{");
        let _ = writeln!(s, "  let w = churn{f}(x, y);");
        for k in 0..sinks {
            let target = 77 + 2 * k + f;
            let _ = writeln!(
                s,
                "  let q{k} = null; let r{k} = 1; if (w == {target}) {{ r{k} = q{k}; }} deref(r{k});"
            );
        }
        let _ = writeln!(
            s,
            "  let qz = null; let rz = 1; if (x * x == 3) {{ rz = qz; }} deref(rz);"
        );
        let _ = writeln!(s, "  return 0;\n}}");
    }
    s
}

/// Inserts one content-changing statement at the start of the body of
/// the middle non-extern function (spliced after the header's `{`, so
/// single-line function bodies are edited correctly too).
fn edit_middle_function(source: &str) -> String {
    let headers: Vec<usize> = source
        .lines()
        .enumerate()
        .filter(|(_, l)| l.starts_with("fn "))
        .map(|(i, _)| i)
        .collect();
    assert!(!headers.is_empty(), "subject has no functions");
    let line_idx = headers[headers.len() / 2];
    let mut out = String::new();
    for (i, l) in source.lines().enumerate() {
        if i == line_idx {
            let brace = l.find('{').expect("function header opens a body");
            out.push_str(&l[..=brace]);
            out.push_str(" let zq_serve_bench_edit = 9;");
            out.push_str(&l[brace + 1..]);
        } else {
            out.push_str(l);
        }
        out.push('\n');
    }
    out
}

struct Entry {
    name: String,
    base: String,
    edited: String,
}

fn corpus() -> Vec<Entry> {
    let mut entries = Vec::new();
    let hot = hot_sink_source(8, 12);
    entries.push(Entry {
        name: "hot-sinks".into(),
        edited: edit_middle_function(&hot),
        base: hot,
    });
    let scale = scale_from_env();
    for spec in &SUBJECTS[..2] {
        let src = generate(&spec.gen_config(scale)).to_source();
        entries.push(Entry {
            name: spec.name.to_string(),
            edited: edit_middle_function(&src),
            base: src,
        });
    }
    entries
}

fn compile_src(src: &str) -> Program {
    compile(src, CompileOptions::default()).expect("corpus compiles")
}

fn factory() -> impl Fn() -> Box<dyn FeasibilityEngine> + Sync {
    let budget = default_budget();
    move || Box::new(FusionSolver::new(budget)) as Box<dyn FeasibilityEngine>
}

fn options() -> AnalysisOptions {
    AnalysisOptions::new().with_slice_cache(Arc::new(SliceCache::new()))
}

type ReportKey = (
    String,
    fusion_pdg::graph::Vertex,
    fusion_pdg::graph::Vertex,
    fusion::engine::Feasibility,
    Vec<fusion_pdg::graph::Vertex>,
);

fn keys(run: &MultiAnalysisRun) -> Vec<ReportKey> {
    run.checkers
        .iter()
        .flat_map(|b| {
            b.reports.iter().map(move |r| {
                (
                    b.kind.to_string(),
                    r.source,
                    r.sink,
                    r.verdict,
                    r.path.nodes.clone(),
                )
            })
        })
        .collect()
}

/// One thread count's aggregated measurements over the corpus.
#[derive(Default)]
struct Row {
    threads: usize,
    cold_us: u128,
    warm_us: u128,
    cold_queries: u64,
    warm_queries: u64,
    candidates_total: u64,
    inv: InvalidationStats,
    reports_identical: bool,
}

fn main() {
    banner(
        "serve_bench: warm rescan-after-one-edit vs cold scan",
        "resident caches + dirtiness tracking; reports asserted identical",
    );
    let set = CheckerSet::new(fusion::checkers::default_checkers());
    let make = factory();
    let entries = corpus();
    let mut rows: Vec<Row> = Vec::new();

    for &threads in &THREAD_COUNTS {
        let mut row = Row {
            threads,
            reports_identical: true,
            ..Default::default()
        };
        for entry in &entries {
            // Cold: a fresh session scanning the edited program — the
            // same driver the warm path uses, nothing resident. Best of
            // ITERS; each repetition is fully cold.
            let mut best_cold = u128::MAX;
            let mut cold_run = None;
            for _ in 0..ITERS {
                let mut session = AnalysisSession::new(set.clone(), options(), threads);
                let t = Instant::now();
                let run = session.scan(compile_src(&entry.edited), &make);
                best_cold = best_cold.min(t.elapsed().as_micros());
                cold_run = Some(run);
            }
            let cold_run = cold_run.expect("ITERS > 0");

            // Warm: scan the base (untimed), then time the rescan of the
            // edited program. Each repetition rebuilds the resident state
            // so every timed rescan performs real invalidation work.
            let mut best_warm = u128::MAX;
            let mut warm_run = None;
            let mut inv = InvalidationStats::default();
            for _ in 0..ITERS {
                let mut session = AnalysisSession::new(set.clone(), options(), threads);
                session.scan(compile_src(&entry.base), &make);
                let t = Instant::now();
                let run = session.rescan(compile_src(&entry.edited), &make);
                best_warm = best_warm.min(t.elapsed().as_micros());
                inv = session.last_invalidation();
                warm_run = Some(run);
            }
            let warm_run = warm_run.expect("ITERS > 0");

            if keys(&warm_run) != keys(&cold_run) {
                row.reports_identical = false;
            }
            row.cold_us += best_cold;
            row.warm_us += best_warm;
            row.cold_queries += cold_run.queries as u64;
            row.warm_queries += warm_run.queries as u64;
            row.candidates_total += warm_run.candidates as u64;
            row.inv.functions_edited += inv.functions_edited;
            row.inv.functions_affected += inv.functions_affected;
            row.inv.facts_invalidated += inv.facts_invalidated;
            row.inv.facts_retained += inv.facts_retained;
            row.inv.slices_invalidated += inv.slices_invalidated;
            row.inv.slices_retained += inv.slices_retained;
            row.inv.verdicts_invalidated += inv.verdicts_invalidated;
            row.inv.verdicts_retained += inv.verdicts_retained;
            row.inv.iso_invalidated += inv.iso_invalidated;
            row.inv.candidates_reanalyzed += inv.candidates_reanalyzed;

            if threads == GATE_THREADS {
                println!(
                    "  {:<16} cold={:>8}us warm={:>8}us reanalyzed {}/{} candidates \
                     (verdicts {} evicted / {} kept)",
                    entry.name,
                    best_cold,
                    best_warm,
                    inv.candidates_reanalyzed,
                    warm_run.candidates,
                    inv.verdicts_invalidated,
                    inv.verdicts_retained,
                );
            }
        }
        rows.push(row);
    }

    println!("--------------------------------------------------------------");
    for row in &rows {
        let pct = if row.cold_us == 0 {
            0.0
        } else {
            100.0 * row.warm_us as f64 / row.cold_us as f64
        };
        println!(
            "threads={}: cold {:>9.3}ms  warm {:>9.3}ms  ({pct:.1}% of cold)  \
             queries {} -> {}",
            row.threads,
            row.cold_us as f64 / 1000.0,
            row.warm_us as f64 / 1000.0,
            row.cold_queries,
            row.warm_queries,
        );
    }

    let mut per_threads = String::new();
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            per_threads.push_str(",\n    ");
        }
        let pct = if row.cold_us == 0 {
            0.0
        } else {
            100.0 * row.warm_us as f64 / row.cold_us as f64
        };
        let _ = write!(
            per_threads,
            "{{\"threads\": {}, \"cold_wall_us\": {}, \"warm_wall_us\": {}, \
             \"warm_pct_of_cold\": {pct:.2}, \"cold_queries\": {}, \"warm_queries\": {}, \
             \"candidates_total\": {}, \"candidates_reanalyzed\": {}, \
             \"functions_edited\": {}, \"functions_affected\": {}, \
             \"facts_invalidated\": {}, \"facts_retained\": {}, \
             \"slices_invalidated\": {}, \"slices_retained\": {}, \
             \"verdicts_invalidated\": {}, \"verdicts_retained\": {}, \
             \"iso_invalidated\": {}, \"reports_identical\": {}}}",
            row.threads,
            row.cold_us,
            row.warm_us,
            row.cold_queries,
            row.warm_queries,
            row.candidates_total,
            row.inv.candidates_reanalyzed,
            row.inv.functions_edited,
            row.inv.functions_affected,
            row.inv.facts_invalidated,
            row.inv.facts_retained,
            row.inv.slices_invalidated,
            row.inv.slices_retained,
            row.inv.verdicts_invalidated,
            row.inv.verdicts_retained,
            row.inv.iso_invalidated,
            row.reports_identical,
        );
    }

    let gate_row = rows
        .iter()
        .find(|r| r.threads == GATE_THREADS)
        .expect("gate thread count is measured");
    let gate_pct = if gate_row.cold_us == 0 {
        0.0
    } else {
        100.0 * gate_row.warm_us as f64 / gate_row.cold_us as f64
    };
    let all_identical = rows.iter().all(|r| r.reports_identical);

    let json = format!(
        "{{\n  \"scale\": {},\n  \"threads\": {GATE_THREADS},\n  \"iters\": {ITERS},\n  \
         \"per_threads\": [\n    {per_threads}\n  ],\n  \
         \"warm_pct_of_cold_at_gate\": {gate_pct:.2},\n  \
         \"reports_identical\": {all_identical}\n}}\n",
        scale_from_env(),
    );
    report::write("BENCH_serve.json", &json);

    // CI gates at GATE_THREADS: warm ≤ 50% of cold wall, strictly fewer
    // queries, byte-identical reports.
    let gate = report::Gate::from_env();
    gate.require(all_identical, || {
        "warm rescan reports diverged from the cold scan".into()
    });
    gate.require(gate_row.warm_us * 2 <= gate_row.cold_us, || {
        format!(
            "warm rescan wall {}us exceeds 50% of cold wall {}us at {GATE_THREADS} threads",
            gate_row.warm_us, gate_row.cold_us
        )
    });
    gate.require(gate_row.warm_queries < gate_row.cold_queries, || {
        format!(
            "warm rescan issued {} queries, not strictly fewer than cold's {}",
            gate_row.warm_queries, gate_row.cold_queries
        )
    });
    gate.pass("warm rescan ≤ 50% of cold, fewer queries, identical reports");
}

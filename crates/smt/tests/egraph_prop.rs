//! Property tests for the e-graph simplification pass.
//!
//! Equality saturation with empty known-bits seeds must be a *logical
//! equivalence*, not merely equisatisfiable: every rewrite unites terms
//! with the same value under every assignment, no fresh variables are
//! introduced, and extraction picks one representative per class — so
//! the extracted term must evaluate identically to the input at every
//! point. This holds for **every** extraction strategy, which is the
//! contract that lets `SolverConfig` swap extractors freely (and the
//! reason the end-to-end reports stay byte-identical with the pass on
//! or off, see `tests/egraph_determinism.rs` at the workspace root).
//!
//! Also pinned here: the pass is deterministic (same input term → same
//! output term), and the saturation caps fall through cleanly (a cap
//! hit returns the input unchanged rather than a half-rewritten term).

use fusion_smt::egraph::{egraph_simplify, EGraphConfig, ExtractorKind};
use fusion_smt::preprocess::BitsSeeds;
use fusion_smt::term::{BvOp, BvPred, Sort, TermId, TermPool, Value};
use proptest::prelude::*;
use std::collections::HashMap;

const W: u32 = 4;
const NVARS: usize = 3;

/// A compact recipe for building a random formula inside a fresh pool.
#[derive(Debug, Clone)]
enum Ast {
    Var(u8),
    Const(u8),
    Bv(u8, Box<Ast>, Box<Ast>),
    Ite(Box<Ast>, Box<Ast>, Box<Ast>),
}

#[derive(Debug, Clone)]
enum BoolAst {
    Eq(Ast, Ast),
    Pred(u8, Ast, Ast),
    Not(Box<BoolAst>),
    And(Vec<BoolAst>),
    Or(Vec<BoolAst>),
}

fn ast_strategy() -> impl Strategy<Value = Ast> {
    let leaf = prop_oneof![
        (0..NVARS as u8).prop_map(Ast::Var),
        (0..16u8).prop_map(Ast::Const),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (0..11u8, inner.clone(), inner.clone()).prop_map(|(op, a, b)| Ast::Bv(
                op,
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, a, b)| Ast::Ite(
                Box::new(c),
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
}

fn bool_strategy() -> impl Strategy<Value = BoolAst> {
    let leaf = prop_oneof![
        (ast_strategy(), ast_strategy()).prop_map(|(a, b)| BoolAst::Eq(a, b)),
        (0..4u8, ast_strategy(), ast_strategy()).prop_map(|(p, a, b)| BoolAst::Pred(p, a, b)),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|b| BoolAst::Not(Box::new(b))),
            prop::collection::vec(inner.clone(), 2..4).prop_map(BoolAst::And),
            prop::collection::vec(inner, 2..4).prop_map(BoolAst::Or),
        ]
    })
}

fn build_bv(pool: &mut TermPool, ast: &Ast) -> TermId {
    match ast {
        Ast::Var(i) => pool.var(&format!("v{i}"), Sort::Bv(W)),
        Ast::Const(c) => pool.bv_const(*c as u64, W),
        Ast::Bv(op, a, b) => {
            let ops = [
                BvOp::Add,
                BvOp::Sub,
                BvOp::Mul,
                BvOp::Udiv,
                BvOp::Urem,
                BvOp::And,
                BvOp::Or,
                BvOp::Xor,
                BvOp::Shl,
                BvOp::Lshr,
                BvOp::Ashr,
            ];
            let a = build_bv(pool, a);
            let b = build_bv(pool, b);
            pool.bv(ops[*op as usize % ops.len()], a, b)
        }
        Ast::Ite(c, a, b) => {
            let c = build_bv(pool, c);
            let zero = pool.bv_const(0, W);
            let cb = pool.ne(c, zero);
            let a = build_bv(pool, a);
            let b = build_bv(pool, b);
            pool.ite(cb, a, b)
        }
    }
}

fn build_bool(pool: &mut TermPool, ast: &BoolAst) -> TermId {
    match ast {
        BoolAst::Eq(a, b) => {
            let a = build_bv(pool, a);
            let b = build_bv(pool, b);
            pool.eq(a, b)
        }
        BoolAst::Pred(p, a, b) => {
            let preds = [BvPred::Ult, BvPred::Ule, BvPred::Slt, BvPred::Sle];
            let a = build_bv(pool, a);
            let b = build_bv(pool, b);
            pool.pred(preds[*p as usize % preds.len()], a, b)
        }
        BoolAst::Not(b) => {
            let b = build_bool(pool, b);
            pool.not(b)
        }
        BoolAst::And(xs) => {
            let xs: Vec<TermId> = xs.iter().map(|x| build_bool(pool, x)).collect();
            pool.and(&xs)
        }
        BoolAst::Or(xs) => {
            let xs: Vec<TermId> = xs.iter().map(|x| build_bool(pool, x)).collect();
            pool.or(&xs)
        }
    }
}

/// An always-on config for `kind` — explicit `enabled` so the property
/// holds even under the CI leg that sets `FUSION_NO_EGRAPH=1` (which
/// flips the *default* config off; the pass itself must still be
/// correct whenever somebody turns it on).
fn config(kind: ExtractorKind) -> EGraphConfig {
    EGraphConfig {
        enabled: true,
        extractor: kind,
        ..EGraphConfig::default()
    }
}

/// Assert `a` and `b` evaluate identically under **every** assignment
/// to the free variables of `a` (extraction can only shrink the
/// variable set, never grow it).
fn assert_pointwise_equal(
    pool: &TermPool,
    a: TermId,
    b: TermId,
    ctx: &str,
) -> Result<(), TestCaseError> {
    let vars = pool.free_vars(a);
    prop_assert!(vars.len() <= NVARS, "unexpected fresh variables");
    for &v in &pool.free_vars(b) {
        prop_assert!(
            vars.contains(&v),
            "{ctx}: output mentions a variable the input does not"
        );
    }
    let total = 1u64 << (W as u64 * vars.len() as u64);
    for bits in 0..total {
        let mut env = HashMap::new();
        for (i, &v) in vars.iter().enumerate() {
            env.insert(v, (bits >> (W as u64 * i as u64)) & ((1 << W) - 1));
        }
        prop_assert_eq!(
            pool.eval(a, &env),
            pool.eval(b, &env),
            "{}: {} vs {} at env {:?}",
            ctx,
            pool.display(a),
            pool.display(b),
            env
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_extractor_preserves_semantics(ast in bool_strategy()) {
        let mut pool = TermPool::new();
        let f = build_bool(&mut pool, &ast);
        for kind in ExtractorKind::ALL {
            let (out, stats) = egraph_simplify(&mut pool, f, &BitsSeeds::default(), &config(kind));
            // The acceptance guard never hands back a costlier DAG than
            // it was given (node-for-node the costs may differ, but the
            // size counter it reports must be the real size).
            prop_assert_eq!(stats.nodes_after, pool.dag_size(out) as u64);
            assert_pointwise_equal(&pool, f, out, kind.name())?;
        }
    }

    #[test]
    fn extraction_is_deterministic(ast in bool_strategy()) {
        // Same pool, same term, same config → the hash-consed output id
        // must be identical run to run. This is what lets the fragment
        // cache key on (function, vertex set) alone and still produce
        // byte-identical reports.
        let mut pool = TermPool::new();
        let f = build_bool(&mut pool, &ast);
        for kind in ExtractorKind::ALL {
            let cfg = config(kind);
            let (out1, _) = egraph_simplify(&mut pool, f, &BitsSeeds::default(), &cfg);
            let (out2, _) = egraph_simplify(&mut pool, f, &BitsSeeds::default(), &cfg);
            prop_assert_eq!(out1, out2, "{} not deterministic", kind.name());
        }
    }

    #[test]
    fn cap_hit_falls_through_to_input(ast in bool_strategy()) {
        // A starved e-node budget must abandon the pass and return the
        // input term *unchanged* — never a partially rewritten one.
        let mut pool = TermPool::new();
        let f = build_bool(&mut pool, &ast);
        // Leaves (the pool may constant-fold the whole formula at build
        // time) return before the cap is ever consulted.
        prop_assume!(pool.dag_size(f) > 1);
        let mut cfg = config(ExtractorKind::default());
        cfg.max_enodes = 1;
        let (out, stats) = egraph_simplify(&mut pool, f, &BitsSeeds::default(), &cfg);
        prop_assert_eq!(out, f);
        prop_assert_eq!(stats.cap_hits, 1);
    }

    #[test]
    fn disabled_config_is_identity(ast in bool_strategy()) {
        let mut pool = TermPool::new();
        let f = build_bool(&mut pool, &ast);
        let (out, stats) = egraph_simplify(&mut pool, f, &BitsSeeds::default(), &EGraphConfig::disabled());
        prop_assert_eq!(out, f);
        prop_assert_eq!(stats.rewrites, 0);
    }
}

/// Concrete case the shift-add decomposition must win: `x * 6` becomes
/// `(x << 2) + (x << 1)` (or any equivalent), and the result still
/// evaluates like multiplication at every point.
#[test]
fn const_mul_decomposition_is_pointwise_exact() {
    let mut pool = TermPool::new();
    let x = pool.var("x", Sort::Bv(W));
    let six = pool.bv_const(6, W);
    let m = pool.bv(BvOp::Mul, x, six);
    let y = pool.var("y", Sort::Bv(W));
    let f = pool.eq(m, y);
    for kind in ExtractorKind::ALL {
        let (out, _) = egraph_simplify(
            &mut pool,
            f,
            &BitsSeeds::default(),
            &EGraphConfig {
                enabled: true,
                extractor: kind,
                ..EGraphConfig::default()
            },
        );
        let vars = pool.free_vars(f);
        for bits in 0..(1u64 << (W * 2)) {
            let mut env = HashMap::new();
            for (i, &v) in vars.iter().enumerate() {
                env.insert(v, (bits >> (W as u64 * i as u64)) & ((1 << W) - 1));
            }
            assert_eq!(
                pool.eval(f, &env),
                pool.eval(out, &env),
                "{}: {}",
                kind.name(),
                pool.display(out)
            );
        }
        // No multiplier may survive extraction for a cheap-to-shift
        // constant: the whole point of pricing Mul near its clause cost.
        assert!(
            !pool.display(out).contains("bvmul"),
            "{}: {}",
            kind.name(),
            pool.display(out)
        );
    }
}

/// Value → sanity check that `Value` equality is what the pointwise
/// assertions rely on (a `Bool` never equals a `Bv`).
#[test]
fn value_discriminants_do_not_collide() {
    assert_ne!(Value::Bool(true), Value::Bv(1));
}

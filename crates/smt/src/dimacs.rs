//! DIMACS CNF import/export for the SAT backend.
//!
//! Lets the CDCL solver be exercised against standard SAT benchmarks and
//! lets bit-blasted conditions be handed to external SAT solvers — the
//! same interop role [`crate::smtlib`] plays at the SMT level.

use crate::cnf::{BVar, Cnf, Lit};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// A DIMACS parsing failure with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimacsError {
    /// 1-based line of the problem.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for DimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DIMACS error at line {}: {}", self.line, self.message)
    }
}

impl Error for DimacsError {}

/// Serializes a CNF in DIMACS format (`p cnf <vars> <clauses>` header,
/// 1-based literals, zero-terminated clauses).
pub fn to_dimacs(cnf: &Cnf) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", cnf.num_vars, cnf.clauses.len());
    for clause in &cnf.clauses {
        for lit in clause {
            let v = lit.var().0 as i64 + 1;
            let _ = write!(out, "{} ", if lit.is_pos() { v } else { -v });
        }
        out.push_str("0\n");
    }
    out
}

/// Parses DIMACS text into a [`Cnf`]. Comment lines (`c ...`) and blank
/// lines are skipped; clauses may span lines; `%`-terminated SATLIB files
/// are accepted.
///
/// # Errors
///
/// Returns [`DimacsError`] on a missing/malformed header, literals out of
/// the declared range, or trailing garbage.
pub fn from_dimacs(text: &str) -> Result<Cnf, DimacsError> {
    let mut num_vars: Option<u32> = None;
    let mut declared_clauses = 0usize;
    let mut cnf = Cnf::new();
    let mut current: Vec<Lit> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if line.starts_with('%') {
            break; // SATLIB trailer
        }
        if let Some(rest) = line.strip_prefix("p ") {
            if num_vars.is_some() {
                return Err(DimacsError {
                    line: line_no,
                    message: "duplicate header".into(),
                });
            }
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 3 || parts[0] != "cnf" {
                return Err(DimacsError {
                    line: line_no,
                    message: format!("bad header `{line}`"),
                });
            }
            let nv: u32 = parts[1].parse().map_err(|_| DimacsError {
                line: line_no,
                message: format!("bad variable count `{}`", parts[1]),
            })?;
            declared_clauses = parts[2].parse().map_err(|_| DimacsError {
                line: line_no,
                message: format!("bad clause count `{}`", parts[2]),
            })?;
            for _ in 0..nv {
                cnf.fresh();
            }
            num_vars = Some(nv);
            continue;
        }
        let nv = num_vars.ok_or(DimacsError {
            line: line_no,
            message: "clause before `p cnf` header".into(),
        })?;
        for tok in line.split_whitespace() {
            let v: i64 = tok.parse().map_err(|_| DimacsError {
                line: line_no,
                message: format!("bad literal `{tok}`"),
            })?;
            if v == 0 {
                cnf.add(std::mem::take(&mut current));
            } else {
                let var = v.unsigned_abs() - 1;
                if var >= nv as u64 {
                    return Err(DimacsError {
                        line: line_no,
                        message: format!("literal {v} out of range (max {nv})"),
                    });
                }
                current.push(Lit::new(BVar(var as u32), v > 0));
            }
        }
    }
    if !current.is_empty() {
        cnf.add(current); // final clause without trailing 0 — tolerated
    }
    let _ = declared_clauses; // informational only; real files often lie
    Ok(cnf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::{solve_cnf, SatBudget, SatOutcome};

    #[test]
    fn round_trips() {
        let mut cnf = Cnf::new();
        let a = cnf.fresh();
        let b = cnf.fresh();
        cnf.add(vec![Lit::pos(a), Lit::neg(b)]);
        cnf.add(vec![Lit::neg(a)]);
        let text = to_dimacs(&cnf);
        assert!(text.starts_with("p cnf 2 2"));
        let back = from_dimacs(&text).unwrap();
        assert_eq!(back.num_vars, 2);
        assert_eq!(back.clauses, cnf.clauses);
    }

    #[test]
    fn parses_comments_and_multiline_clauses() {
        let text = "c a comment\np cnf 3 2\n1 -2\n3 0\n-1 2 0\n";
        let cnf = from_dimacs(text).unwrap();
        assert_eq!(cnf.clauses.len(), 2);
        assert_eq!(cnf.clauses[0].len(), 3);
    }

    #[test]
    fn solves_a_classic_instance() {
        // (x1 ∨ x2) ∧ (¬x1 ∨ x2) ∧ (x1 ∨ ¬x2) ∧ (¬x1 ∨ ¬x2): unsat.
        let text = "p cnf 2 4\n1 2 0\n-1 2 0\n1 -2 0\n-1 -2 0\n";
        let cnf = from_dimacs(text).unwrap();
        assert_eq!(solve_cnf(&cnf, SatBudget::default()), SatOutcome::Unsat);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_dimacs("1 2 0\n").is_err()); // clause before header
        assert!(from_dimacs("p cnf nope 3\n").is_err());
        assert!(from_dimacs("p cnf 2 1\n5 0\n").is_err()); // out of range
        assert!(from_dimacs("p cnf 2 1\np cnf 2 1\n").is_err()); // dup header
    }

    #[test]
    fn blasted_formulas_export() {
        use crate::bitblast::blast;
        use crate::term::{BvOp, Sort, TermPool};
        let mut p = TermPool::new();
        let x = p.var("x", Sort::Bv(8));
        let c = p.bv_const(9, 8);
        let d = p.bv(BvOp::Mul, x, x);
        let f = p.eq(d, c);
        let (cnf, _) = blast(&p, f);
        let text = to_dimacs(&cnf);
        let back = from_dimacs(&text).unwrap();
        // Solving the re-imported CNF gives the same verdict.
        assert_eq!(
            matches!(solve_cnf(&back, SatBudget::default()), SatOutcome::Sat(_)),
            matches!(solve_cnf(&cnf, SatBudget::default()), SatOutcome::Sat(_)),
        );
    }
}

//! The warm analysis service must be invisible in the output.
//!
//! `AnalysisSession::rescan` diffs an edited program against resident
//! per-function content fingerprints, evicts exactly the absint facts,
//! slice closures, verdicts, and compacted regions the edit reaches, and
//! re-runs only the affected `(checker, source)` work items — replaying
//! recorded outcomes for the rest. None of that may reach the user: on
//! arbitrary generated programs with arbitrary single-function edits,
//! the warm rescan's reports must be *byte-identical* — same checkers,
//! sources, sinks, verdicts, witness paths, in the same order — to a
//! cold batch scan of the edited program, across the sequential,
//! barrier, and streaming drivers, thread counts 1–8, and every
//! cache/absint/compact/incremental/egraph combination exercised here.
//! And the invalidation must be *strict*: an edit touching nothing
//! reachable from any source re-solves zero candidates.

use fusion::cache::VerdictCache;
use fusion::checkers::CheckerSet;
use fusion::engine::{
    analyze_multi_parallel_with_cache, analyze_multi_streaming_with_cache,
    analyze_multi_with_cache, AnalysisOptions, Feasibility, FeasibilityEngine, MultiAnalysisRun,
};
use fusion::graph_solver::FusionSolver;
use fusion::incremental::AnalysisSession;
use fusion::slice_cache::SliceCache;
use fusion_ir::{compile, CompileOptions, Program};
use fusion_pdg::graph::Pdg;
use fusion_smt::solver::SolverConfig;
use fusion_workloads::{generate, GenConfig};
use proptest::prelude::*;
use std::sync::Arc;

/// Everything that reaches the user, in a comparable form, per checker.
type ReportKey = (
    String,
    fusion_pdg::graph::Vertex,
    fusion_pdg::graph::Vertex,
    Feasibility,
    Vec<fusion_pdg::graph::Vertex>,
);

fn keys(run: &MultiAnalysisRun) -> Vec<ReportKey> {
    run.checkers
        .iter()
        .flat_map(|b| {
            b.reports.iter().map(move |r| {
                (
                    b.kind.to_string(),
                    r.source,
                    r.sink,
                    r.verdict,
                    r.path.nodes.clone(),
                )
            })
        })
        .collect()
}

fn factory(incremental: bool, egraph: bool) -> impl Fn() -> Box<dyn FeasibilityEngine> + Sync {
    move || {
        let mut cfg = SolverConfig::default();
        cfg.egraph.enabled = egraph;
        let mut engine = FusionSolver::new(cfg);
        engine.incremental = incremental;
        Box::new(engine)
    }
}

/// Fresh analysis options (own slice cache) for one run or session.
fn options(use_cache: bool, absint: bool, compact: bool) -> AnalysisOptions {
    let mut o = if use_cache {
        AnalysisOptions::new()
    } else {
        AnalysisOptions::without_cache()
    };
    o = o.with_slice_cache(Arc::new(SliceCache::new()));
    o.absint = absint;
    o.compact = compact;
    o
}

/// Inserts one harmless-but-content-changing statement right after the
/// header of the `pick`-th non-extern function, returning the edited
/// source and the edited function's name. The generator's pretty-printer
/// puts every `fn name(args) {` header on its own line.
fn edit_one_function(source: &str, pick: usize) -> (String, String) {
    let headers: Vec<(usize, &str)> = source
        .lines()
        .enumerate()
        .filter(|(_, l)| l.starts_with("fn "))
        .collect();
    assert!(!headers.is_empty(), "generated subject has no functions");
    let (line_idx, header) = headers[pick % headers.len()];
    let name = header["fn ".len()..]
        .split('(')
        .next()
        .expect("function header has `(`")
        .to_string();
    let mut out = String::new();
    for (i, l) in source.lines().enumerate() {
        out.push_str(l);
        out.push('\n');
        if i == line_idx {
            out.push_str("    let zq_serve_edit = 41;\n");
        }
    }
    (out, name)
}

fn compile_src(src: &str) -> Program {
    compile(src, CompileOptions::default()).expect("compile")
}

/// The three cold drivers over the edited program, with fresh caches.
#[allow(clippy::too_many_arguments)]
fn cold_runs(
    program: &Program,
    set: &CheckerSet,
    use_cache: bool,
    absint: bool,
    compact: bool,
    incremental: bool,
    egraph: bool,
    threads: usize,
) -> Vec<(&'static str, MultiAnalysisRun)> {
    let pdg = Pdg::build(program);
    let mut out = Vec::new();
    let seq_opts = options(use_cache, absint, compact);
    let seq_cache = VerdictCache::new();
    let mut engine = factory(incremental, egraph)();
    out.push((
        "sequential",
        analyze_multi_with_cache(
            program,
            &pdg,
            set,
            engine.as_mut(),
            &seq_opts,
            use_cache.then_some(&seq_cache),
        ),
    ));
    let barrier_opts = options(use_cache, absint, compact);
    let barrier_cache = VerdictCache::new();
    out.push((
        "barrier",
        analyze_multi_parallel_with_cache(
            program,
            &pdg,
            set,
            &factory(incremental, egraph),
            threads,
            &barrier_opts,
            use_cache.then_some(&barrier_cache),
        ),
    ));
    let stream_opts = options(use_cache, absint, compact);
    let stream_cache = VerdictCache::new();
    out.push((
        "streaming",
        analyze_multi_streaming_with_cache(
            program,
            &pdg,
            set,
            &factory(incremental, egraph),
            threads,
            &stream_opts,
            use_cache.then_some(&stream_cache),
        ),
    ));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random program, random single-function edit: the warm rescan's
    /// transcript equals every cold driver's over the edited program.
    #[test]
    fn warm_rescan_equals_cold_scan(seed in 0u64..100_000, pick in 0usize..64) {
        let cfg = GenConfig { seed, functions: 10, ..Default::default() };
        let base_src = generate(&cfg).to_source();
        let (edited_src, _edited_fn) = edit_one_function(&base_src, pick);
        let set = CheckerSet::new(fusion::checkers::default_checkers());

        // (use_cache, absint, compact, incremental, egraph): the full
        // default stack, everything off, and two mixed corners.
        let configs = [
            (true, true, true, true, true),
            (false, false, false, false, false),
            (true, false, true, false, true),
            (false, true, false, true, false),
        ];
        for (use_cache, absint, compact, incremental, egraph) in configs {
            for threads in [1usize, 2, 4, 8] {
                let mut session = AnalysisSession::new(
                    set.clone(),
                    options(use_cache, absint, compact),
                    threads,
                );
                session.scan(compile_src(&base_src), &factory(incremental, egraph));
                let warm = session.rescan(compile_src(&edited_src), &factory(incremental, egraph));
                let warm_keys = keys(&warm);
                for (driver, cold) in cold_runs(
                    &compile_src(&edited_src), &set,
                    use_cache, absint, compact, incremental, egraph, threads,
                ) {
                    prop_assert_eq!(
                        &warm_keys, &keys(&cold),
                        "warm rescan diverged from cold {} at seed {} pick {} threads {} \
                         cache={} absint={} compact={} incremental={} egraph={}",
                        driver, seed, pick, threads,
                        use_cache, absint, compact, incremental, egraph
                    );
                    prop_assert_eq!(warm.candidates, cold.candidates);
                }
                let inv = session.last_invalidation();
                prop_assert!(
                    inv.candidates_reanalyzed <= warm.candidates as u64,
                    "reanalyzed {} of {} candidates", inv.candidates_reanalyzed, warm.candidates
                );
                prop_assert_eq!(inv.functions_edited, 1, "exactly one function was edited");
            }
        }
    }

    /// A rescan with *no* textual change replays everything: zero engine
    /// queries, zero candidates re-analyzed, identical transcript.
    #[test]
    fn unchanged_rescan_is_pure_replay(seed in 0u64..100_000) {
        let cfg = GenConfig { seed, functions: 10, ..Default::default() };
        let src = generate(&cfg).to_source();
        let set = CheckerSet::new(fusion::checkers::default_checkers());
        for threads in [1usize, 4] {
            let mut session = AnalysisSession::new(set.clone(), options(true, true, true), threads);
            let cold = session.scan(compile_src(&src), &factory(true, true));
            let warm = session.rescan(compile_src(&src), &factory(true, true));
            prop_assert_eq!(keys(&cold), keys(&warm), "seed {} threads {}", seed, threads);
            prop_assert_eq!(warm.queries, 0, "replay must not query the engine");
            prop_assert_eq!(session.last_invalidation().candidates_reanalyzed, 0);
            prop_assert_eq!(session.last_invalidation().verdicts_invalidated, 0);
        }
    }
}

/// Strict invalidation: an edit to a function that no source's component
/// reaches re-solves *zero* candidates and evicts nothing.
#[test]
fn edit_outside_source_components_resolves_zero_candidates() {
    let base = "extern fn deref(p); extern fn getpass(); extern fn sendmsg(x);\n\
        fn buggy(x) { let q = null; let r = 1; if (x > 0) { r = q; } deref(r); return 0; }\n\
        fn leaky(f) { let a = getpass(); let c = 1; if (f > 3) { c = a + 1; } sendmsg(c); return 0; }\n\
        fn inert(z) { let w = z + 1; return w * 2; }";
    // Only `inert` changes; it calls nothing, is called by nothing, and
    // contains no source of any checker.
    let edited = base.replace("let w = z + 1", "let w = z + 2");
    assert_ne!(base, edited);
    let set = CheckerSet::new(fusion::checkers::default_checkers());
    for threads in [1usize, 2, 8] {
        let mut session = AnalysisSession::new(set.clone(), options(true, true, true), threads);
        let cold = session.scan(compile_src(base), &factory(true, true));
        assert!(cold.candidates > 0, "subject must have candidates");
        let warm = session.rescan(compile_src(&edited), &factory(true, true));
        assert_eq!(keys(&cold), keys(&warm), "threads={threads}");
        let inv = session.last_invalidation();
        assert_eq!(inv.functions_edited, 1);
        assert_eq!(inv.functions_affected, 1, "inert is its own component");
        assert_eq!(
            inv.candidates_reanalyzed, 0,
            "an edit outside every source's component must re-solve nothing"
        );
        assert_eq!(inv.verdicts_invalidated, 0);
        assert_eq!(inv.slices_invalidated, 0);
        assert_eq!(
            warm.queries, 0,
            "no engine query on a fully-replayed rescan"
        );
        // The counters surface through the run's stage stats too.
        assert_eq!(warm.stages.candidates_reanalyzed, 0);
        assert_eq!(warm.stages.verdicts_invalidated, 0);
    }
}

/// End-to-end through the serve protocol: a warm `rescan` response's
/// findings are identical to a cold one-shot `scan_source` of the edited
/// program, for a generated subject over the line-delimited JSON loop.
#[test]
fn serve_loop_warm_findings_match_cold_scan_source() {
    use fusion_cli::json;
    use std::io::Cursor;

    let cfg = GenConfig {
        seed: 2024,
        functions: 10,
        ..Default::default()
    };
    let base_src = generate(&cfg).to_source();
    let (edited_src, edited_fn) = edit_one_function(&base_src, 3);
    for threads in [1usize, 4] {
        let opts = fusion_cli::Options {
            serve: true,
            threads,
            ..Default::default()
        };
        let requests = format!(
            "{{\"cmd\": \"scan\", \"source\": \"{}\"}}\n\
             {{\"cmd\": \"rescan\", \"source\": \"{}\", \"edited_fns\": [\"{}\"]}}\n",
            json::escape(&base_src),
            json::escape(&edited_src),
            json::escape(&edited_fn),
        );
        let mut out = Vec::new();
        let code = fusion_cli::serve::serve_loop(&opts, Cursor::new(requests), &mut out);
        assert_eq!(code, 0);
        let text = String::from_utf8(out).unwrap();
        let responses: Vec<json::Value> = text
            .lines()
            .map(|l| json::Value::parse(l).expect("valid response JSON"))
            .collect();
        assert_eq!(responses.len(), 2);
        let warm = responses[1].get("report").expect("rescan returns a report");
        let cold = fusion_cli::scan_source(
            &edited_src,
            &fusion_cli::Options {
                threads,
                ..Default::default()
            },
        )
        .expect("cold scan");
        // Byte-level comparison of the findings arrays: serialize the
        // cold findings through the same JSON path.
        let cold_json = json::Value::parse(&cold.to_json()).expect("valid cold JSON");
        assert_eq!(
            warm.get("findings").unwrap(),
            cold_json.get("findings").unwrap(),
            "threads={threads}"
        );
        assert_eq!(
            responses[1].get("functions_edited").unwrap().as_f64(),
            Some(1.0)
        );
    }
}

//! Property test: lowering preserves semantics on *generated* programs.
//!
//! The workload generator produces arbitrary structured surface programs
//! (branches, loops, call DAGs, seeded bugs); for every function we compare
//! the surface interpreter (with bounded loop semantics) against the
//! speculative core-SSA evaluator on sampled inputs — values and observed
//! extern-call traces must agree exactly.

use fusion_ir::callgraph::unroll_recursion;
use fusion_ir::interp::{eval_core, eval_surface};
use fusion_ir::lower::{lower, LowerOptions};
use fusion_ir::validate::validate;
use fusion_workloads::{generate, GenConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generated_programs_lower_equivalently(seed in 0u64..10_000, inputs in prop::collection::vec(any::<u32>(), 3)) {
        let cfg = GenConfig {
            seed,
            functions: 8,
            stmts_per_function: 10,
            ..Default::default()
        };
        let mut subject = generate(&cfg);
        let unroll = 2usize;
        let surface = unroll_recursion(&subject.surface, &mut subject.interner, 2)
            .expect("call graph builds");
        let core = lower(&surface, &mut subject.interner, LowerOptions { loop_unroll: unroll })
            .expect("lowering succeeds");
        validate(&core).expect("core IR validates");

        for func in core.functions.iter().filter(|f| !f.is_extern) {
            let name_sym = func.name;
            let args: Vec<u32> = (0..func.params.len())
                .map(|i| inputs.get(i).copied().unwrap_or(17))
                .collect();
            let surf = eval_surface(&surface, &subject.interner, name_sym, &args, unroll, 2_000_000);
            let core_r = eval_core(&core, func.id, &args, 2_000_000);
            // Fuel exhaustion on either side: skip (speculative core
            // evaluation can cost more; equivalence holds where both
            // terminate within budget).
            if let (Ok((sv, st)), Ok((cv, ct))) = (surf, core_r) {
                prop_assert_eq!(
                    sv,
                    cv.ret,
                    "value mismatch in {} seed {}",
                    subject.interner.resolve(name_sym),
                    seed
                );
                let mut s_calls = st.extern_calls;
                let mut c_calls = ct.extern_calls;
                s_calls.sort();
                c_calls.sort();
                prop_assert_eq!(
                    s_calls,
                    c_calls,
                    "trace mismatch in {} seed {}",
                    subject.interner.resolve(name_sym),
                    seed
                );
            }
        }
    }
}

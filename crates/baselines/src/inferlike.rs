//! An Infer-like compositional analyzer (the Table 5 comparator).
//!
//! Models the three properties §5.2 attributes Infer's numbers to:
//!
//! * **path-insensitivity** — flows are reported by reachability on the
//!   dependence graph with *no* feasibility check, so every infeasible
//!   guard becomes a false positive ("the innate approximation of
//!   abduction");
//! * **limited cross-file reasoning** — per-function summaries compose
//!   only up to a bounded call depth, so deep inter-procedural flows are
//!   missed ("its limited capability of detecting cross-file bugs");
//! * **summary caching** — pre/post summaries are computed for *every*
//!   function and retained for the whole run ("it generates and caches
//!   many function summaries"), charged to [`Category::Summaries`].
//!
//! The analyzer is bottom-up over the call graph like bi-abduction: each
//! function gets a summary of (a) sink hits involving its parameters,
//! (b) parameter-to-return flows, (c) fact-born-here escapes.

use fusion::checkers::Checker;
use fusion::engine::{AnalysisRun, BugReport, Feasibility};
use fusion::memory::{Category, MemoryAccountant, BYTES_PER_DEF};
use fusion_ir::ssa::{DefKind, FuncId, Program, VarId};
use fusion_pdg::graph::{Pdg, Vertex};
use fusion_pdg::paths::DependencePath;
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

/// What a value inside a function can be, abstractly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Origin {
    /// Derived from parameter `i`.
    Param(usize),
    /// Derived from a source statement (function, definition).
    Source(FuncId, VarId),
}

/// The compositional summary of one function. Depths count how many call
/// levels a flow has already crossed; composition adds one per call and
/// drops flows beyond the configured bound (the cross-file limitation).
#[derive(Debug, Clone, Default)]
struct Summary {
    /// (origin, consumed depth) pairs reaching the return value.
    ret: BTreeSet<(Origin, usize)>,
    /// (origin, consumed depth, sink function, sink statement).
    sink_hits: BTreeSet<(Origin, usize, FuncId, VarId)>,
}

/// Configuration of the Infer-like analyzer.
#[derive(Debug, Clone, Copy)]
pub struct InferOptions {
    /// Summary composition depth: facts do not propagate through more than
    /// this many call levels (the cross-file limitation).
    pub max_compose_depth: usize,
}

impl Default for InferOptions {
    fn default() -> Self {
        Self {
            max_compose_depth: 3,
        }
    }
}

/// Runs the Infer-like analysis for one checker. Returns an
/// [`AnalysisRun`] shaped like the fused engines' so Table 5 can compare
/// directly. All reports carry [`Feasibility::Unknown`] verdicts — the
/// analyzer never consults a solver.
pub fn analyze_inferlike(
    program: &Program,
    _pdg: &Pdg,
    checker: &Checker,
    options: &InferOptions,
) -> AnalysisRun {
    let t0 = Instant::now();
    let mut memory = MemoryAccountant::new();
    // Bottom-up over the (acyclic) call graph with per-function depth
    // tracking: summaries compose only `max_compose_depth` levels.
    let mut summaries: BTreeMap<FuncId, Summary> = BTreeMap::new();
    let order = topo_order(program);
    for fid in order {
        let func = program.func(fid);
        if func.is_extern {
            summaries.insert(fid, Summary::default());
            continue;
        }
        let mut origins: Vec<BTreeSet<(Origin, usize)>> = vec![BTreeSet::new(); func.defs.len()];
        let mut summary = Summary::default();
        for def in &func.defs {
            let mut here: BTreeSet<(Origin, usize)> = BTreeSet::new();
            match &def.kind {
                DefKind::Param { index } => {
                    here.insert((Origin::Param(*index), 0));
                }
                DefKind::Const { is_null: true, .. }
                    if checker.kind == fusion::checkers::CheckKind::NullDeref =>
                {
                    here.insert((Origin::Source(fid, def.var), 0));
                }
                DefKind::Call { callee, args, .. } => {
                    let callee_f = program.func(*callee);
                    let callee_name = program.name(callee_f.name).to_owned();
                    if callee_f.is_extern && checker.source_fns.contains(&callee_name) {
                        here.insert((Origin::Source(fid, def.var), 0));
                    }
                    let is_sink = callee_f.is_extern && checker.sink_fns.contains(&callee_name);
                    for &a in args {
                        for &(origin, depth) in &origins[a.index()] {
                            if is_sink {
                                summary.sink_hits.insert((origin, depth, fid, def.var));
                            }
                            // Pass-through of extern libraries (taint only).
                            if callee_f.is_extern && checker.through_extern && !is_sink {
                                here.insert((origin, depth));
                            }
                        }
                    }
                    // Compose with a non-extern callee's summary, adding
                    // one level of depth and dropping flows beyond the
                    // bound.
                    if !callee_f.is_extern {
                        let cs = summaries.get(callee).cloned().unwrap_or_default();
                        for &(origin, d, sfid, svar) in &cs.sink_hits {
                            match origin {
                                Origin::Param(i) => {
                                    if let Some(arg) = args.get(i) {
                                        for &(o, d0) in &origins[arg.index()] {
                                            let total = d0 + d + 1;
                                            if total <= options.max_compose_depth {
                                                summary.sink_hits.insert((o, total, sfid, svar));
                                            }
                                        }
                                    }
                                }
                                // A callee-internal source hitting a sink
                                // is already in the callee's own report
                                // set; nothing to lift.
                                Origin::Source(..) => {}
                            }
                        }
                        for &(origin, d) in &cs.ret {
                            match origin {
                                Origin::Param(i) => {
                                    if let Some(arg) = args.get(i) {
                                        for &(o, d0) in &origins[arg.index()] {
                                            let total = d0 + d + 1;
                                            if total <= options.max_compose_depth {
                                                here.insert((o, total));
                                            }
                                        }
                                    }
                                }
                                Origin::Source(sf, sv) => {
                                    // A source escaping the callee.
                                    let total = d + 1;
                                    if total <= options.max_compose_depth {
                                        here.insert((Origin::Source(sf, sv), total));
                                    }
                                }
                            }
                        }
                    }
                }
                other => {
                    for (slot, op) in other.operands().into_iter().enumerate() {
                        if checker.propagates_through(func, def.var, slot) {
                            here.extend(origins[op.index()].iter().copied());
                        }
                    }
                }
            }
            origins[def.var.index()] = here;
        }
        if let Some(ret) = func.ret {
            summary.ret = origins[ret.index()].clone();
        }
        let nodes = (summary.sink_hits.len() + summary.ret.len() + 4) as u64;
        memory.charge(Category::Summaries, nodes * 64);
        summaries.insert(fid, summary);
    }

    // Reports: every source-origin sink hit from every summary, with NO
    // feasibility filtering.
    let mut reports: Vec<BugReport> = Vec::new();
    let mut seen: BTreeSet<(FuncId, VarId, FuncId, VarId)> = BTreeSet::new();
    for summary in summaries.values() {
        for &(origin, _depth, sfid, svar) in &summary.sink_hits {
            if let Origin::Source(of, ov) = origin {
                if seen.insert((of, ov, sfid, svar)) {
                    reports.push(BugReport {
                        source: Vertex::new(of, ov),
                        sink: Vertex::new(sfid, svar),
                        verdict: Feasibility::Unknown, // never checked
                        path: DependencePath::unit(Vertex::new(of, ov)),
                    });
                }
            }
        }
    }
    let candidates = reports.len();
    memory.charge(Category::Graph, program.size() as u64 * BYTES_PER_DEF);
    AnalysisRun {
        engine: "infer-like".to_string(),
        reports,
        suppressed: 0,
        candidates,
        queries: 0,
        cache: fusion::cache::CacheStats::default(), // never consults one
        slice: fusion::slice_cache::SliceCacheStats::default(), // never slices
        stages: fusion::engine::StageStats::default(),
        propagate_time: t0.elapsed(),
        solve_time: std::time::Duration::ZERO,
        peak_memory: memory.peak_total(),
    }
}

fn topo_order(program: &Program) -> Vec<FuncId> {
    // Callees before callers (the call graph is a DAG post-unrolling).
    let n = program.functions.len();
    let mut deps: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for cs in &program.call_sites {
        if cs.caller != cs.callee {
            deps[cs.caller.index()].insert(cs.callee.index());
        }
    }
    let mut order = Vec::with_capacity(n);
    let mut done = vec![false; n];
    // Kahn-style with a stack for determinism.
    let mut progress = true;
    while order.len() < n && progress {
        progress = false;
        for i in 0..n {
            if !done[i] && deps[i].iter().all(|&d| done[d]) {
                done[i] = true;
                order.push(FuncId(i as u32));
                progress = true;
            }
        }
    }
    // Any residue (unexpected cycles) appended conservatively.
    for (i, d) in done.iter().enumerate() {
        if !*d {
            order.push(FuncId(i as u32));
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion::checkers::Checker;
    use fusion::engine::{analyze, AnalysisOptions};
    use fusion::graph_solver::FusionSolver;
    use fusion_ir::{compile, CompileOptions};
    use fusion_smt::solver::SolverConfig;

    fn setup(src: &str) -> (Program, Pdg) {
        let p = compile(src, CompileOptions::default()).expect("compile");
        let g = Pdg::build(&p);
        (p, g)
    }

    #[test]
    fn reports_infeasible_flows_as_false_positives() {
        // Fusion suppresses the guarded-impossible flow; infer-like
        // reports it.
        let (p, g) = setup(
            "extern fn deref(p);\n\
             fn f(x) { let q = null; let r = 1; if (x > 5) { if (x < 3) { r = q; } } deref(r); return 0; }",
        );
        let infer = analyze_inferlike(&p, &g, &Checker::null_deref(), &InferOptions::default());
        assert_eq!(infer.reports.len(), 1);
        let mut fused = FusionSolver::new(SolverConfig::default());
        let fusion_run = analyze(
            &p,
            &g,
            &Checker::null_deref(),
            &mut fused,
            &AnalysisOptions::new(),
        );
        assert_eq!(fusion_run.reports.len(), 0);
    }

    #[test]
    fn misses_deep_interprocedural_flows() {
        // A 5-deep identity chain exceeds the compose depth of 3.
        let (p, g) = setup(
            "extern fn deref(p);\n\
             fn i1(x) { return x; }\n\
             fn i2(x) { return i1(x); }\n\
             fn i3(x) { return i2(x); }\n\
             fn i4(x) { return i3(x); }\n\
             fn i5(x) { return i4(x); }\n\
             fn f() { let q = null; let r = i5(q); deref(r); return 0; }",
        );
        let infer = analyze_inferlike(&p, &g, &Checker::null_deref(), &InferOptions::default());
        assert_eq!(infer.reports.len(), 0, "deep flow must be missed");
        let mut fused = FusionSolver::new(SolverConfig::default());
        let fusion_run = analyze(
            &p,
            &g,
            &Checker::null_deref(),
            &mut fused,
            &AnalysisOptions::new(),
        );
        assert_eq!(fusion_run.reports.len(), 1, "fusion finds it");
    }

    #[test]
    fn finds_shallow_flows() {
        let (p, g) = setup(
            "extern fn deref(p);\n\
             fn f() { let q = null; deref(q); return 0; }",
        );
        let infer = analyze_inferlike(&p, &g, &Checker::null_deref(), &InferOptions::default());
        assert_eq!(infer.reports.len(), 1);
    }

    #[test]
    fn taint_through_callee_sink() {
        // The sink is inside the callee; the tainted value enters through
        // a parameter.
        let (p, g) = setup(
            "extern fn gets(); extern fn fopen(p);\n\
             fn open_it(path) { fopen(path); return 0; }\n\
             fn f() { let i = gets(); open_it(i); return 0; }",
        );
        let infer = analyze_inferlike(&p, &g, &Checker::cwe23(), &InferOptions::default());
        assert_eq!(infer.reports.len(), 1);
    }

    #[test]
    fn charges_summary_memory_for_every_function() {
        let (p, g) = setup("fn a() { return 1; } fn b() { return a(); } fn c() { return b(); }");
        let run = analyze_inferlike(&p, &g, &Checker::null_deref(), &InferOptions::default());
        assert!(run.peak_memory > 0);
    }
}

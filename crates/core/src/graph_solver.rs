//! The IR-based SMT solutions: Algorithm 4 (unoptimized) and Algorithm 6
//! (optimized — the Fusion solver).
//!
//! Both consume a set Π of dependence paths and decide the feasibility of
//! `φ_Π` **without the analysis ever having computed a condition**: the
//! slice *is* the condition (§3.2.1). The difference is what happens to
//! cloning:
//!
//! * [`UnoptimizedGraphSolver`] (Alg. 4) slices, clones every callee at
//!   every call site in the slice, translates, and calls the standalone
//!   pipeline — linear per instance but exponentially many instances;
//! * [`FusionSolver`] (Alg. 6) first computes a *local* condition per
//!   function (once, not per clone), preprocesses it intra-procedurally
//!   with its interface protected, consults the entry→exit **quick paths**
//!   ([`crate::quickpath`]) to delete call/return labels whose callees
//!   have constant or affine returns (Fig. 9), and only then instantiates
//!   the shrunken residue at the surviving call sites.
//!
//! Neither engine ever caches a *path condition* — the "no caching"
//! property of §3.2.2 concerns conditions. [`FusionSolver`] does retain
//! query-independent artifacts across queries in one *epoch*: preprocessed
//! local conditions (linear-size graph data), instantiated residues, and —
//! in incremental mode — a [`SolveSession`] holding the Tseitin encodings
//! and learnt clauses of formulas already solved. Epochs are bounded: a
//! group boundary past [`FusionSolver::epoch_pool_limit`] resets the pool,
//! the caches and the session together (their keys are `TermId`s, which a
//! pool reset invalidates).

use crate::absint::ProgramFacts;
use crate::cache::{path_set_key, Key128};
use crate::engine::{CheckOutcome, EngineStages, Feasibility, FeasibilityEngine, SolveRecord};
use crate::memory::{Category, MemoryAccountant, BYTES_PER_TERM_NODE};
use crate::quickpath::{ret_summaries, RetSummary};
use crate::slice_cache::{Closure, SliceCache};
use fusion_ir::ssa::{CallSiteId, DefKind, FuncId, Program, VarId, WORD_BITS};
use fusion_pdg::graph::Pdg;
use fusion_pdg::paths::DependencePath;
use fusion_pdg::slice::{
    compute_closure, compute_slice, constraints_for, Constraint, ConstraintKind,
};
use fusion_pdg::translate::{
    encode_op, instance_var_tracked, translate, truthy, TranslateOptions, VarOrigins,
};
use fusion_smt::preprocess::{
    preprocess_fragment_seeded_ext, refute_by_known_bits_seeded, BitsSeeds,
};
use fusion_smt::session::SolveSession;
use fusion_smt::solver::{deadline_expired, smt_solve, SatResult, SolverConfig};
use fusion_smt::term::{Sort, TermId, TermKind, TermPool, VarIdx};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// Algorithm 4: slice → clone everything → translate → standalone solve.
#[derive(Debug)]
pub struct UnoptimizedGraphSolver {
    /// Per-query SMT budget.
    pub per_call: SolverConfig,
    /// Cloning budget; exceeding it yields [`Feasibility::Unknown`].
    pub translate_opts: TranslateOptions,
    memory: MemoryAccountant,
    records: Vec<SolveRecord>,
    stages: EngineStages,
}

impl UnoptimizedGraphSolver {
    /// Creates the engine with the given per-query budget.
    pub fn new(per_call: SolverConfig) -> Self {
        Self {
            per_call,
            translate_opts: TranslateOptions::default(),
            memory: MemoryAccountant::new(),
            records: Vec::new(),
            stages: EngineStages::default(),
        }
    }
}

impl FeasibilityEngine for UnoptimizedGraphSolver {
    fn name(&self) -> &'static str {
        "fusion-unopt"
    }

    fn check_paths(
        &mut self,
        program: &Program,
        pdg: &Pdg,
        paths: &[DependencePath],
    ) -> CheckOutcome {
        let start = Instant::now();
        let deadline = self.per_call.deadline_from(start);
        // Algorithm 4 bypasses the slice memo by design: it re-slices every
        // query from scratch (the baseline the optimized pipeline is
        // measured against), so `begin_candidate` / `attach_slice_cache`
        // stay at their no-op defaults.
        let slice = compute_slice(program, pdg, paths);
        self.stages.slices_computed += 1;
        self.stages.slice_wall += start.elapsed();
        // Fresh pool per query: nothing is cached (§3.2.2).
        let translate_start = Instant::now();
        let mut pool = TermPool::new();
        let translated = match translate(program, &slice, &mut pool, &self.translate_opts) {
            Ok(t) => t,
            Err(_) => {
                self.stages.translate_wall += translate_start.elapsed();
                return CheckOutcome {
                    feasibility: Feasibility::Unknown,
                    duration: start.elapsed(),
                    condition_nodes: pool.len() as u64,
                    instances: 0,
                    preprocess_decided: false,
                };
            }
        };
        let condition_nodes = pool.dag_size(translated.formula) as u64;
        self.stages.translate_wall += translate_start.elapsed();
        // Budget the final query with whatever wall-clock remains after
        // slicing and translation; an exhausted budget degrades to Unknown
        // instead of stalling a worker.
        let Some(cfg) = self.per_call.with_remaining(deadline) else {
            let outcome = CheckOutcome {
                feasibility: Feasibility::Unknown,
                duration: start.elapsed(),
                condition_nodes,
                instances: translated.instances,
                preprocess_decided: false,
            };
            self.records.push(SolveRecord::from_outcome(&outcome));
            return outcome;
        };
        // Transient memory: the cloned condition is resident *during* the
        // query, so charge it before solving; the SAT clause bytes are only
        // known once the query returns, so they are charged (and everything
        // released) afterwards. Charging and releasing back-to-back would
        // never overlap the query and understate concurrent peaks.
        let cond_bytes = condition_nodes * BYTES_PER_TERM_NODE;
        self.memory.charge(Category::SolverState, cond_bytes);
        let solve_start = Instant::now();
        let (result, stats) = smt_solve(&mut pool, translated.formula, &cfg);
        self.stages.solve_wall += solve_start.elapsed();
        self.stages.absorb_egraph(&stats.egraph);
        let clause_bytes = stats.cnf_clauses as u64 * 16;
        self.memory.charge(Category::SolverState, clause_bytes);
        self.memory
            .release(Category::SolverState, cond_bytes + clause_bytes);
        let feasibility = match result {
            SatResult::Sat(_) => Feasibility::Feasible,
            SatResult::Unsat => Feasibility::Infeasible,
            SatResult::Unknown => Feasibility::Unknown,
        };
        let outcome = CheckOutcome {
            feasibility,
            duration: start.elapsed(),
            condition_nodes,
            instances: translated.instances,
            preprocess_decided: stats.preprocess_decided,
        };
        self.records.push(SolveRecord::from_outcome(&outcome));
        outcome
    }

    fn memory(&self) -> &MemoryAccountant {
        &self.memory
    }

    fn records(&self) -> &[SolveRecord] {
        &self.records
    }

    fn stage_totals(&self) -> EngineStages {
        self.stages
    }
}

/// A function's local condition: equations over uncontexted names,
/// preprocessed once with the interface protected.
#[derive(Debug, Clone)]
struct LocalCond {
    formula: TermId,
    /// smt variable → IR variable, for per-instance renaming.
    var_map: HashMap<VarIdx, VarId>,
}

/// Renames a preprocessed local condition into the instance named by `ctx`:
/// interface variables map to their context-tagged instance names,
/// preprocessing-introduced fresh variables are renamed apart per instance.
/// Instance-variable provenance is recorded in `origins` so the final
/// formula can be seeded with per-function abstract facts.
fn instantiate(
    pool: &mut TermPool,
    lc: &LocalCond,
    ctx: &[CallSiteId],
    fid: FuncId,
    origins: &mut VarOrigins,
) -> TermId {
    let mut subst: HashMap<VarIdx, TermId> = HashMap::new();
    for smt_var in pool.free_vars(lc.formula) {
        let target = match lc.var_map.get(&smt_var) {
            Some(&ir_var) => instance_var_tracked(pool, ctx, fid, ir_var, origins),
            None => pool.fresh_var("inst", pool.var_sort(smt_var)),
        };
        subst.insert(smt_var, target);
    }
    pool.substitute(lc.formula, &subst)
}

/// A cached local condition with its accounting and recency metadata.
#[derive(Debug, Clone)]
struct CachedLocal {
    cond: LocalCond,
    /// Bytes charged to [`Category::Cache`] for this entry.
    bytes: u64,
    /// Last-touched tick, for LRU eviction.
    tick: u64,
}

/// The candidate the driver announced via
/// [`FeasibilityEngine::begin_candidate`]: its canonical content key, its
/// full path set, and the lazily resolved union closure shared by every
/// alternative-path query of the candidate.
///
/// The closure stays `None` until a query actually needs it, so a
/// candidate fully answered by the verdict cache never slices at all.
#[derive(Debug)]
struct CandCtx {
    key: Key128,
    paths: Vec<DependencePath>,
    closure: Option<Arc<Closure>>,
}

/// Solver-side counters for the bench harness (`solve_bench`), aggregated
/// over every `check_paths` call issued to one [`FusionSolver`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FusionMetrics {
    /// Term-pool nodes built across all queries (pool growth, which for a
    /// cold engine equals everything: local conditions, instances,
    /// preprocessing rewrites).
    pub terms_built: u64,
    /// Permanent CNF clauses held by the incremental session (0 in cold
    /// mode — cold clauses die with each query's solver).
    pub session_clauses: u64,
    /// SAT conflicts accumulated by the incremental session.
    pub session_conflicts: u64,
    /// Learnt clauses currently retained by the session.
    pub session_learnts: u64,
}

/// Algorithm 6: the optimized, fused solver.
#[derive(Debug)]
pub struct FusionSolver {
    /// Per-query SMT budget.
    pub per_call: SolverConfig,
    /// Instance budget for the residual cloning (rarely reached).
    pub max_instances: usize,
    /// Ablation: disable the quick-path summaries (every callee is cloned
    /// as in Algorithm 4).
    pub use_quick_paths: bool,
    /// Ablation: skip the intra-procedural preprocessing of local
    /// conditions (clone raw equations).
    pub use_local_preprocess: bool,
    /// Solve final queries through one incremental [`SolveSession`] per
    /// epoch (assumption-guarded CDCL with memoized bit-blasting and
    /// learnt-clause retention) instead of a cold per-query pipeline.
    /// Verdicts are identical either way; this is purely a time/space
    /// trade. The CLI exposes `--no-incremental` to turn it off.
    pub incremental: bool,
    /// Pool-size threshold (term nodes) above which a group boundary
    /// ([`FeasibilityEngine::begin_group`]) resets the solving epoch —
    /// pool, caches and session together. High by default so small runs
    /// never reset.
    pub epoch_pool_limit: usize,
    /// Entry-count bound of the local-condition cache; least recently
    /// used entries are evicted beyond it.
    pub local_cache_cap: usize,
    memory: MemoryAccountant,
    records: Vec<SolveRecord>,
    /// Quick-path summaries, computed once per program (keyed by a cheap
    /// program identity: function count + size).
    summaries: Option<(usize, usize, Vec<RetSummary>)>,
    /// Persistent pool hosting the cached per-function local conditions.
    /// These are *linear-size graph data* (an alternative encoding of the
    /// PDG slice, preprocessed once per (function, slice) — §3.2.3), not
    /// path conditions: their bytes are charged to [`Category::Cache`]
    /// like the verdict cache's.
    pool: TermPool,
    local_cache: HashMap<(FuncId, u64), CachedLocal>,
    /// Total bytes currently charged for `local_cache` entries.
    local_cache_bytes: u64,
    /// Monotone counter backing the LRU order of `local_cache`.
    tick: u64,
    /// The incremental solving session of the current epoch (lazy).
    session: Option<SolveSession>,
    /// Instantiated-residue memo: `(context, function, local formula) →
    /// instance formula`. Avoids re-running the substitution (and minting
    /// fresh `inst` variables) for instantiations repeated across queries
    /// in one epoch. Sharing the preprocessing-introduced fresh variables
    /// across queries is sound: each query's constraints on them live
    /// under that query's own root assumption.
    inst_cache: HashMap<(Vec<CallSiteId>, FuncId, TermId), TermId>,
    terms_built: u64,
    /// Shared slice-closure memo, attached by the driver
    /// ([`FeasibilityEngine::attach_slice_cache`]). Holds dependence
    /// structure only — never formulas (§3.2.2's "no caching" concerns
    /// *conditions*).
    slice_cache: Option<Arc<SliceCache>>,
    /// The current candidate context ([`FeasibilityEngine::begin_candidate`]),
    /// sharing one union closure across its alternative-path queries.
    cand: Option<CandCtx>,
    /// Per-stage wall and counter totals ([`EngineStages`]).
    stages: EngineStages,
    /// Abstract-interpretation facts attached by the driver
    /// ([`FeasibilityEngine::attach_absint`]). Used to seed the known-bits
    /// analysis of local-condition preprocessing and the final assembled
    /// query (refute-only — never changes which candidates are reported).
    facts: Option<Arc<ProgramFacts>>,
    /// Provenance of instance variables minted this epoch: which
    /// `(function, IR variable)` each SMT clone instantiates. Facts are
    /// memoized per function, so every clone of one definition shares one
    /// seed.
    origins: VarOrigins,
}

impl FusionSolver {
    /// Creates the engine with the given per-query budget.
    pub fn new(per_call: SolverConfig) -> Self {
        Self {
            per_call,
            max_instances: 1 << 16,
            use_quick_paths: true,
            use_local_preprocess: true,
            incremental: true,
            epoch_pool_limit: 1 << 20,
            local_cache_cap: 1024,
            memory: MemoryAccountant::new(),
            records: Vec::new(),
            summaries: None,
            pool: TermPool::new(),
            local_cache: HashMap::new(),
            local_cache_bytes: 0,
            tick: 0,
            session: None,
            inst_cache: HashMap::new(),
            terms_built: 0,
            slice_cache: None,
            cand: None,
            stages: EngineStages::default(),
            facts: None,
            origins: VarOrigins::new(),
        }
    }

    /// Aggregate solver-side metrics (see [`FusionMetrics`]).
    pub fn metrics(&self) -> FusionMetrics {
        FusionMetrics {
            terms_built: self.terms_built,
            session_clauses: self
                .session
                .as_ref()
                .map(|s| s.permanent_clauses() as u64)
                .unwrap_or(0),
            session_conflicts: self.session.as_ref().map(|s| s.conflicts()).unwrap_or(0),
            session_learnts: self
                .session
                .as_ref()
                .map(|s| s.learnt_clauses() as u64)
                .unwrap_or(0),
        }
    }

    /// Drops everything keyed by `TermId`: the pool, the local-condition
    /// and instantiation caches, and the session. Called when the program
    /// changes and when a group boundary finds the pool past
    /// [`FusionSolver::epoch_pool_limit`].
    fn reset_epoch(&mut self) {
        self.pool = TermPool::new();
        self.local_cache.clear();
        self.memory.release(Category::Cache, self.local_cache_bytes);
        self.local_cache_bytes = 0;
        self.inst_cache.clear();
        self.session = None;
        self.origins = VarOrigins::new();
        self.memory.set(Category::SolverState, 0);
    }

    fn summaries_for(&mut self, program: &Program) -> &[RetSummary] {
        let key = (program.functions.len(), program.size());
        let stale = match &self.summaries {
            Some((n, s, _)) => (*n, *s) != key,
            None => true,
        };
        if stale {
            // The quick-path summaries are the Const/Affine projection of
            // the abstract-interpretation domain; when the driver attached
            // matching facts, project them instead of recomputing.
            let sums = match &self.facts {
                Some(f) if f.matches(program) => f.ret_summaries(),
                _ => ret_summaries(program),
            };
            self.summaries = Some((key.0, key.1, sums));
            self.reset_epoch();
        }
        &self.summaries.as_ref().expect("just set").2
    }

    /// Builds (and preprocesses, once per distinct (function, slice) pair)
    /// the local condition over the sliced vertices. The protected
    /// interface is query-independent: parameters, the return value, call
    /// results and arguments, and every branch/ite condition a constraint
    /// could ever reference — so the cached condition is sound for all
    /// queries sharing the vertex set.
    fn local_condition(
        &mut self,
        program: &Program,
        fid: FuncId,
        verts: &std::collections::BTreeSet<VarId>,
    ) -> LocalCond {
        // FNV-style hash of the vertex set as the cache key.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for v in verts {
            h ^= v.0 as u64 + 1;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self.local_cache.get_mut(&(fid, h)) {
            entry.tick = tick;
            return entry.cond.clone();
        }
        let func = program.func(fid);
        let egraph_cfg = self.per_call.egraph;
        let mut egraph_stats = fusion_smt::egraph::EGraphStats::default();
        let pool = &mut self.pool;
        let mut var_map: HashMap<VarIdx, VarId> = HashMap::new();
        let mut local = |pool: &mut TermPool, v: VarId| -> TermId {
            let t = pool.var(&format!("l{}:v{}", fid.0, v.0), Sort::Bv(WORD_BITS));
            if let TermKind::Var(idx) = *pool.kind(t) {
                var_map.insert(idx, v);
            }
            t
        };
        let mut parts = Vec::new();
        let mut protected: HashSet<VarIdx> = HashSet::new();
        let protect = |pool: &mut TermPool, protected: &mut HashSet<VarIdx>, t: TermId| {
            if let TermKind::Var(idx) = *pool.kind(t) {
                protected.insert(idx);
            }
        };
        // Variables that any query's constraints could reference: branch
        // and ite conditions (query-independent rule).
        let mut cond_vars: HashSet<VarId> = HashSet::new();
        for def in &func.defs {
            match &def.kind {
                DefKind::Branch { cond } => {
                    cond_vars.insert(*cond);
                }
                DefKind::Ite { cond, .. } => {
                    cond_vars.insert(*cond);
                }
                _ => {}
            }
        }
        for &v in verts {
            let def = func.def(v);
            match &def.kind {
                // Cross-instance equations are emitted per instance, not
                // here; their endpoints are interface variables.
                DefKind::Param { .. } => {
                    let t = local(pool, v);
                    protect(pool, &mut protected, t);
                }
                DefKind::Call { args, .. } => {
                    let t = local(pool, v);
                    protect(pool, &mut protected, t);
                    for &a in args {
                        let at = local(pool, a);
                        protect(pool, &mut protected, at);
                    }
                }
                DefKind::Branch { .. } => {}
                DefKind::Const { value, .. } => {
                    let lhs = local(pool, v);
                    let k = pool.bv_const(*value as u64, WORD_BITS);
                    parts.push(pool.eq(lhs, k));
                }
                DefKind::Copy { src } | DefKind::Return { src } => {
                    let lhs = local(pool, v);
                    let rhs = local(pool, *src);
                    parts.push(pool.eq(lhs, rhs));
                }
                DefKind::Binary { op, lhs: a, rhs: b } => {
                    let lhs = local(pool, v);
                    let ta = local(pool, *a);
                    let tb = local(pool, *b);
                    let rhs = encode_op(pool, *op, ta, tb);
                    parts.push(pool.eq(lhs, rhs));
                }
                DefKind::Ite {
                    cond,
                    then_v,
                    else_v,
                } => {
                    let lhs = local(pool, v);
                    let tc = local(pool, *cond);
                    let tt = local(pool, *then_v);
                    let te = local(pool, *else_v);
                    let c = truthy(pool, tc);
                    let rhs = pool.ite(c, tt, te);
                    parts.push(pool.eq(lhs, rhs));
                }
            }
            if cond_vars.contains(&v) || Some(v) == func.ret {
                let t = local(pool, v);
                protect(pool, &mut protected, t);
            }
        }
        let raw = pool.and(&parts);
        // Intra-procedural preprocessing, once per function — never per
        // clone (§3.2.3, "reducing the number of functions to clone" /
        // "speeding up preprocessing"). When the driver attached abstract
        // facts, the fragment's known-bits analysis is seeded with them —
        // per-function facts are unconditional, so the cached fragment
        // stays sound for every instance, and bit facts fire on first
        // contact instead of being rediscovered structurally per query.
        let formula = if self.use_local_preprocess {
            let mut seeds = BitsSeeds::new();
            if let Some(facts) = &self.facts {
                if facts.matches(program) {
                    for (&idx, &v) in &var_map {
                        let av = facts.value(fid, v);
                        if av.known != 0 {
                            seeds.insert(idx, av.known as u64, av.value as u64);
                        }
                    }
                }
            }
            // The seeded pipeline now opens with bounded equality
            // saturation: the fragment is rewritten to its cheapest
            // equivalent form once, here, before the engine clones it into
            // every calling context (§3.2.3) — and since the pass is a
            // pure term equivalence over unconditional seeds, the cached
            // fragment never encodes a path condition (§3.2.2).
            let (pre, eg) =
                preprocess_fragment_seeded_ext(pool, raw, &protected, &seeds, &egraph_cfg);
            egraph_stats = eg;
            pre.term
        } else {
            raw
        };
        let lc = LocalCond { formula, var_map };
        self.stages.absorb_egraph(&egraph_stats);
        // Bounded, cache-resident data: evict least-recently-used entries
        // past the capacity, then charge this entry's bytes to
        // [`Category::Cache`] exactly like the verdict cache does.
        let bytes = self.pool.dag_size(formula) as u64 * BYTES_PER_TERM_NODE;
        while self.local_cache.len() >= self.local_cache_cap {
            // Ticks are unique, so the minimum is deterministic.
            let Some((&key, _)) = self.local_cache.iter().min_by_key(|(_, e)| e.tick) else {
                break;
            };
            let evicted = self.local_cache.remove(&key).expect("key just found");
            self.memory.release(Category::Cache, evicted.bytes);
            self.local_cache_bytes -= evicted.bytes;
        }
        self.memory.charge(Category::Cache, bytes);
        self.local_cache_bytes += bytes;
        self.local_cache.insert(
            (fid, h),
            CachedLocal {
                cond: lc.clone(),
                bytes,
                tick,
            },
        );
        lc
    }

    /// Resolves the slice closure (Rules 2–3) for `paths`, sharing work at
    /// two levels:
    ///
    /// * **within a candidate** — when the driver has announced a
    ///   candidate via [`FeasibilityEngine::begin_candidate`], the union
    ///   closure over the candidate's *full* path set is computed at most
    ///   once and serves every alternative-path query. Sound because the
    ///   closure only contributes definitional equations over acyclic SSA
    ///   (extra definitions never change satisfiability); the per-path
    ///   constraints (Rules 1/5) are recomputed per query by the caller;
    /// * **across candidates / engines / runs** — closures are memoized
    ///   in the attached [`SliceCache`] under the canonical content key
    ///   ([`path_set_key`]).
    ///
    /// Resolution is lazy: a candidate fully answered by the verdict cache
    /// never reaches this method and does zero slice work.
    fn obtain_closure(
        &mut self,
        program: &Program,
        pdg: &Pdg,
        paths: &[DependencePath],
    ) -> Arc<Closure> {
        // Candidate context: one union closure for all alternative paths.
        if let Some(ctx) = &mut self.cand {
            if let Some(c) = &ctx.closure {
                self.stages.slices_reused += 1;
                return Arc::clone(c);
            }
            if let Some(cache) = &self.slice_cache {
                if let Some(c) = cache.get(ctx.key) {
                    self.stages.slices_reused += 1;
                    ctx.closure = Some(Arc::clone(&c));
                    return c;
                }
            }
            let c = Arc::new(compute_closure(program, pdg, &ctx.paths));
            self.stages.slices_computed += 1;
            if let Some(cache) = &self.slice_cache {
                cache.insert(ctx.key, Arc::clone(&c));
            }
            ctx.closure = Some(Arc::clone(&c));
            return c;
        }
        // No candidate context (direct `check_paths` calls): memoize by
        // content key when a cache is attached, else compute fresh.
        if let Some(cache) = self.slice_cache.clone() {
            let key = path_set_key(program, paths);
            if let Some(c) = cache.get(key) {
                self.stages.slices_reused += 1;
                return c;
            }
            let c = Arc::new(compute_closure(program, pdg, paths));
            self.stages.slices_computed += 1;
            cache.insert(key, Arc::clone(&c));
            return c;
        }
        self.stages.slices_computed += 1;
        Arc::new(compute_closure(program, pdg, paths))
    }
}

impl FeasibilityEngine for FusionSolver {
    fn name(&self) -> &'static str {
        "fusion"
    }

    fn begin_group(&mut self, _group: u64) {
        // A fresh session per slice group: queries within a group share
        // almost all of their encoding, so the session amortizes heavily
        // there; *across* groups the overlap is small, and keeping one
        // session alive would make every query re-search the accumulated
        // universe (CDCL must extend its assignment over every variable
        // ever blasted). Dropping the session — but keeping the pool and
        // the term-level caches — bounds the SAT universe to one group's
        // cone. Group boundaries are also the only place the whole epoch
        // may reset: no `TermId` from a previous group is live in the
        // caller, so once the pool outgrows its budget the pool, caches
        // and session drop together.
        self.session = None;
        self.cand = None;
        if self.pool.len() > self.epoch_pool_limit {
            self.reset_epoch();
        }
    }

    fn begin_candidate(
        &mut self,
        _program: &Program,
        _pdg: &Pdg,
        key: Key128,
        paths: &[DependencePath],
    ) {
        self.cand = Some(CandCtx {
            key,
            paths: paths.to_vec(),
            closure: None,
        });
    }

    fn attach_slice_cache(&mut self, cache: Arc<SliceCache>) {
        self.slice_cache = Some(cache);
    }

    fn attach_absint(&mut self, facts: Arc<ProgramFacts>) {
        self.facts = Some(facts);
    }

    fn stage_totals(&self) -> EngineStages {
        self.stages
    }

    fn check_paths(
        &mut self,
        program: &Program,
        pdg: &Pdg,
        paths: &[DependencePath],
    ) -> CheckOutcome {
        let start = Instant::now();
        let deadline = self.per_call.deadline_from(start);
        let summaries: Vec<RetSummary> = self.summaries_for(program).to_vec();
        // Phase 2 dependence closure — memoized and shared (candidate ctx,
        // slice cache); Phase 1 constraints — cheap, recomputed from the
        // concrete queried path, never shared (§3.2.2).
        let slice_start = Instant::now();
        let closure = self.obtain_closure(program, pdg, paths);
        let constraints = constraints_for(program, paths);
        self.stages.slice_wall += slice_start.elapsed();
        // Local conditions, computed and preprocessed once per function
        // per program (cache hits across queries).
        let translate_start = Instant::now();
        let mut locals: HashMap<FuncId, LocalCond> = HashMap::new();
        for (&fid, fs) in closure.iter() {
            let lc = self.local_condition(program, fid, &fs.verts);
            locals.insert(fid, lc);
        }
        let pool_before = self.pool.len();
        let incremental = self.incremental;
        let pool = &mut self.pool;
        let inst_cache = &mut self.inst_cache;
        let origins = &mut self.origins;

        let mut parts: Vec<TermId> = Vec::new();
        let mut instances: HashSet<(Vec<CallSiteId>, FuncId)> = HashSet::new();
        let mut work: VecDeque<(Vec<CallSiteId>, FuncId)> = VecDeque::new();
        let schedule = |instances: &mut HashSet<(Vec<CallSiteId>, FuncId)>,
                        work: &mut VecDeque<(Vec<CallSiteId>, FuncId)>,
                        ctx: Vec<CallSiteId>,
                        f: FuncId| {
            if instances.insert((ctx.clone(), f)) {
                work.push_back((ctx, f));
            }
        };

        // Context-tagged constraints (identical to Algorithm 4).
        for Constraint { ctx, func, kind } in &constraints {
            schedule(&mut instances, &mut work, ctx.clone(), *func);
            let f = program.func(*func);
            match kind {
                ConstraintKind::BranchTrue { branch } => {
                    let DefKind::Branch { cond } = f.def(*branch).kind else {
                        unreachable!("guards are branches")
                    };
                    let cv = instance_var_tracked(pool, ctx, *func, cond, origins);
                    let t = truthy(pool, cv);
                    parts.push(t);
                }
                ConstraintKind::IteGate { ite, taken_then } => {
                    let DefKind::Ite { cond, .. } = f.def(*ite).kind else {
                        unreachable!("gated vertices are ites")
                    };
                    let cv = instance_var_tracked(pool, ctx, *func, cond, origins);
                    let t = truthy(pool, cv);
                    parts.push(if *taken_then { t } else { pool.not(t) });
                }
            }
        }

        // Instantiate: substitute the preprocessed local condition, emit
        // binding equations, and use quick paths to avoid descending.
        let mut blowup = false;
        while let Some((ctx, fid)) = work.pop_front() {
            // A stuck instantiation (deep contexts, huge slices) must not
            // stall a worker: the per-call deadline is polled every
            // iteration and the query degrades to Unknown, exactly like an
            // instance blowup.
            if instances.len() > self.max_instances || deadline_expired(deadline) {
                blowup = true;
                break;
            }
            let Some(fs) = closure.get(&fid) else {
                continue;
            };
            let func = program.func(fid);
            let lc = &locals[&fid];
            // Rename the local condition into this instance. In incremental
            // mode the substitution (and its fresh-variable minting) is
            // memoized per (context, function, local formula) for the
            // epoch — repeated instantiations across queries reuse the same
            // instance formula, which the session then recognizes as an
            // already-blasted subterm.
            let inst_formula = if incremental {
                match inst_cache.get(&(ctx.clone(), fid, lc.formula)) {
                    Some(&cached) => cached,
                    None => {
                        let f = instantiate(pool, lc, &ctx, fid, origins);
                        inst_cache.insert((ctx.clone(), fid, lc.formula), f);
                        f
                    }
                }
            } else {
                instantiate(pool, lc, &ctx, fid, origins)
            };
            parts.push(inst_formula);

            for &v in &fs.verts {
                match &func.def(v).kind {
                    DefKind::Param { index } => {
                        let Some(&site) = ctx.last() else { continue };
                        let cs = program.call_site(site);
                        let caller_ctx = ctx[..ctx.len() - 1].to_vec();
                        let caller = program.func(cs.caller);
                        let DefKind::Call { args, .. } = &caller.def(cs.stmt).kind else {
                            unreachable!("call sites point at calls")
                        };
                        let actual = args[*index];
                        let lhs = instance_var_tracked(pool, &ctx, fid, v, origins);
                        let rhs =
                            instance_var_tracked(pool, &caller_ctx, cs.caller, actual, origins);
                        schedule(&mut instances, &mut work, caller_ctx, cs.caller);
                        let e = pool.eq(lhs, rhs);
                        parts.push(e);
                    }
                    DefKind::Call { callee, args, site } => {
                        let callee_f = program.func(*callee);
                        if callee_f.is_extern {
                            continue; // unconstrained result
                        }
                        let lhs = instance_var_tracked(pool, &ctx, fid, v, origins);
                        // Quick path: constant / affine callees never get
                        // cloned — the parenthesis label is deleted.
                        let summary = if self.use_quick_paths {
                            summaries[callee.index()]
                        } else {
                            RetSummary::Opaque
                        };
                        match summary {
                            RetSummary::Const(c) => {
                                let k = pool.bv_const(c as u64, WORD_BITS);
                                let e = pool.eq(lhs, k);
                                parts.push(e);
                            }
                            RetSummary::Affine { index, mul, add } => {
                                let actual = args[index];
                                let av = instance_var_tracked(pool, &ctx, fid, actual, origins);
                                let m = pool.bv_const(mul as u64, WORD_BITS);
                                let a = pool.bv_const(add as u64, WORD_BITS);
                                let prod = pool.bv(fusion_smt::term::BvOp::Mul, m, av);
                                let rhs = pool.bv(fusion_smt::term::BvOp::Add, prod, a);
                                let e = pool.eq(lhs, rhs);
                                parts.push(e);
                            }
                            RetSummary::Opaque => {
                                let mut sub_ctx = ctx.clone();
                                sub_ctx.push(*site);
                                let ret = callee_f.ret.expect("non-extern has a return");
                                let rhs =
                                    instance_var_tracked(pool, &sub_ctx, *callee, ret, origins);
                                schedule(&mut instances, &mut work, sub_ctx, *callee);
                                let e = pool.eq(lhs, rhs);
                                parts.push(e);
                            }
                        }
                    }
                    _ => {}
                }
            }
        }

        self.stages.translate_wall += translate_start.elapsed();
        if blowup {
            let grown = (pool.len() - pool_before) as u64;
            self.terms_built += grown;
            return CheckOutcome {
                feasibility: Feasibility::Unknown,
                duration: start.elapsed(),
                condition_nodes: grown,
                instances: instances.len(),
                preprocess_decided: false,
            };
        }
        let formula = pool.and(&parts);
        let condition_nodes = pool.dag_size(formula) as u64;
        // Absint seeding: before any session or bit-blasting work, try to
        // refute the assembled query against the per-function known-bits
        // facts. Facts are unconditional consequences of the definitional
        // system, so a bit conflict here is a genuine Unsat — the seeding
        // is refute-only and never claims feasibility.
        let mut absint_refuted = false;
        if let Some(facts) = self.facts.clone() {
            if facts.matches(program) {
                let mut seeds = BitsSeeds::new();
                for idx in pool.free_vars(formula) {
                    if let Some((ofid, ovar)) = origins.get(idx) {
                        let av = facts.value(ofid, ovar);
                        if av.known != 0 {
                            seeds.insert(idx, av.known as u64, av.value as u64);
                        }
                    }
                }
                if !seeds.is_empty() {
                    let r = refute_by_known_bits_seeded(pool, formula, &seeds);
                    if pool.as_bool_const(r) == Some(false) {
                        absint_refuted = true;
                    }
                }
            }
        }
        if absint_refuted {
            self.stages.absint_refutes += 1;
            self.terms_built += (self.pool.len() - pool_before) as u64;
            let outcome = CheckOutcome {
                feasibility: Feasibility::Infeasible,
                duration: start.elapsed(),
                condition_nodes,
                instances: instances.len(),
                preprocess_decided: true,
            };
            self.records.push(SolveRecord::from_outcome(&outcome));
            return outcome;
        }
        // Budget the final query with the wall-clock remaining after
        // instantiation.
        let Some(cfg) = self.per_call.with_remaining(deadline) else {
            self.terms_built += (self.pool.len() - pool_before) as u64;
            let outcome = CheckOutcome {
                feasibility: Feasibility::Unknown,
                duration: start.elapsed(),
                condition_nodes,
                instances: instances.len(),
                preprocess_decided: false,
            };
            self.records.push(SolveRecord::from_outcome(&outcome));
            return outcome;
        };
        let cond_bytes = condition_nodes * BYTES_PER_TERM_NODE;
        let solve_start = Instant::now();
        let (result, stats) = if self.incremental {
            // Incremental: one assumption-guarded query against the
            // epoch's persistent session. The session's clause database
            // and CNF variables are resident *across* queries (set-based
            // accounting); the assembled condition is a transient spike on
            // top of them during the query.
            if self.session.is_none() {
                // A fresh session opens here (first real query after a
                // group boundary) — the counter the multi-client bench
                // uses to show cross-checker groups share sessions.
                self.stages.sessions_opened += 1;
            }
            let session = self.session.get_or_insert_with(SolveSession::new);
            let out = session.solve_formula(&mut self.pool, formula, &cfg);
            let resident = session.permanent_clauses() as u64 * 16 + session.cnf_vars() as u64 * 8;
            self.memory
                .set(Category::SolverState, resident + cond_bytes);
            self.memory.set(Category::SolverState, resident);
            out
        } else {
            // Cold: transient memory — the assembled condition plus SAT
            // state — charged while the query runs, released after (no
            // caching, §3.2.2). The condition is resident before the solve
            // starts; the clause count is known only once it returns.
            self.memory.charge(Category::SolverState, cond_bytes);
            let out = smt_solve(&mut self.pool, formula, &cfg);
            let clause_bytes = out.1.cnf_clauses as u64 * 16;
            self.memory.charge(Category::SolverState, clause_bytes);
            self.memory
                .release(Category::SolverState, cond_bytes + clause_bytes);
            out
        };
        self.stages.solve_wall += solve_start.elapsed();
        self.stages.absorb_egraph(&stats.egraph);
        self.terms_built += (self.pool.len() - pool_before) as u64;
        let feasibility = match result {
            SatResult::Sat(_) => Feasibility::Feasible,
            SatResult::Unsat => Feasibility::Infeasible,
            SatResult::Unknown => Feasibility::Unknown,
        };
        let outcome = CheckOutcome {
            feasibility,
            duration: start.elapsed(),
            condition_nodes,
            instances: instances.len(),
            preprocess_decided: stats.preprocess_decided,
        };
        self.records.push(SolveRecord::from_outcome(&outcome));
        outcome
    }

    fn memory(&self) -> &MemoryAccountant {
        &self.memory
    }

    fn records(&self) -> &[SolveRecord] {
        &self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkers::Checker;
    use crate::propagate::{discover, PropagateOptions};
    use fusion_ir::{compile, CompileOptions};

    fn check_all(
        src: &str,
        engine: &mut dyn FeasibilityEngine,
    ) -> Vec<(Feasibility, CheckOutcome)> {
        let p = compile(src, CompileOptions::default()).expect("compile");
        let g = Pdg::build(&p);
        let cands = discover(&p, &g, &Checker::null_deref(), &PropagateOptions::default());
        cands
            .iter()
            .map(|c| {
                let o = engine.check_paths(&p, &g, &c.paths[..1]);
                (o.feasibility, o)
            })
            .collect()
    }

    const FIG1: &str = "extern fn deref(p);\n\
        fn bar(x) { let y = x * 2; let z = y; return z; }\n\
        fn foo(a, b) {\n\
          let pp = null;\n\
          let c = bar(a);\n\
          let d = bar(b);\n\
          let r = 1;\n\
          if (c < d) { r = pp; }\n\
          deref(r);\n\
          return 0;\n\
        }";

    #[test]
    fn both_engines_agree_on_figure1() {
        let mut unopt = UnoptimizedGraphSolver::new(SolverConfig::default());
        let mut fused = FusionSolver::new(SolverConfig::default());
        let a = check_all(FIG1, &mut unopt);
        let b = check_all(FIG1, &mut fused);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert_eq!(a[0].0, Feasibility::Feasible);
        assert_eq!(b[0].0, Feasibility::Feasible);
    }

    #[test]
    fn fusion_avoids_cloning_affine_callees() {
        let mut unopt = UnoptimizedGraphSolver::new(SolverConfig::default());
        let mut fused = FusionSolver::new(SolverConfig::default());
        let a = check_all(FIG1, &mut unopt);
        let b = check_all(FIG1, &mut fused);
        // Alg. 4 clones bar twice (3 instances); Alg. 6's quick path
        // eliminates both clones (1 instance: foo itself).
        assert_eq!(a[0].1.instances, 3);
        assert_eq!(b[0].1.instances, 1);
    }

    #[test]
    fn fusion_decides_figure1_in_preprocessing() {
        // The paper's §2 claim: after unconstrained propagation via the
        // quick path, c < d is satisfiable with no bit-blasting.
        let mut fused = FusionSolver::new(SolverConfig::default());
        let b = check_all(FIG1, &mut fused);
        assert!(b[0].1.preprocess_decided, "outcome: {:?}", b[0].1);
    }

    #[test]
    fn engines_agree_on_infeasible_paths() {
        let src = "extern fn deref(p);\n\
            fn foo(x) {\n\
              let pp = null;\n\
              let r = 1;\n\
              if (x > 5) { if (x < 3) { r = pp; } }\n\
              deref(r);\n\
              return 0;\n\
            }";
        let mut unopt = UnoptimizedGraphSolver::new(SolverConfig::default());
        let mut fused = FusionSolver::new(SolverConfig::default());
        let a = check_all(src, &mut unopt);
        let b = check_all(src, &mut fused);
        assert_eq!(a[0].0, Feasibility::Infeasible);
        assert_eq!(b[0].0, Feasibility::Infeasible);
    }

    #[test]
    fn engines_agree_on_interprocedural_constants() {
        // Fig. 9's shape: a constant-returning callee decides the branch.
        let src = "extern fn deref(p);\n\
            fn ten() { return 10; }\n\
            fn foo() {\n\
              let pp = null;\n\
              let r = 1;\n\
              if (ten() > 5) { r = pp; }\n\
              deref(r);\n\
              return 0;\n\
            }";
        let mut unopt = UnoptimizedGraphSolver::new(SolverConfig::default());
        let mut fused = FusionSolver::new(SolverConfig::default());
        let a = check_all(src, &mut unopt);
        let b = check_all(src, &mut fused);
        assert_eq!(a[0].0, Feasibility::Feasible);
        assert_eq!(b[0].0, Feasibility::Feasible);
        // Fusion used the Const quick path: no instance of `ten`.
        assert_eq!(b[0].1.instances, 1);
        assert_eq!(a[0].1.instances, 2);
    }

    #[test]
    fn infeasible_interprocedural_constant() {
        let src = "extern fn deref(p);\n\
            fn three() { return 3; }\n\
            fn foo() {\n\
              let pp = null;\n\
              let r = 1;\n\
              if (three() > 5) { r = pp; }\n\
              deref(r);\n\
              return 0;\n\
            }";
        let mut unopt = UnoptimizedGraphSolver::new(SolverConfig::default());
        let mut fused = FusionSolver::new(SolverConfig::default());
        let a = check_all(src, &mut unopt);
        let b = check_all(src, &mut fused);
        assert_eq!(a[0].0, Feasibility::Infeasible);
        assert_eq!(b[0].0, Feasibility::Infeasible);
    }

    #[test]
    fn deep_call_chain_instance_counts() {
        // Each level calls the next twice: Alg. 4 needs 2^d clones, the
        // quick path collapses affine levels entirely.
        let src = "extern fn deref(p);\n\
            fn l0(x) { return x + 1; }\n\
            fn l1(x) { return l0(x) + l0(x + 1); }\n\
            fn l2(x) { return l1(x) + l1(x + 1); }\n\
            fn foo(a) {\n\
              let pp = null;\n\
              let r = 1;\n\
              if (l2(a) > 5) { r = pp; }\n\
              deref(r);\n\
              return 0;\n\
            }";
        let mut unopt = UnoptimizedGraphSolver::new(SolverConfig::default());
        let mut fused = FusionSolver::new(SolverConfig::default());
        let a = check_all(src, &mut unopt);
        let b = check_all(src, &mut fused);
        assert_eq!(a[0].0, Feasibility::Feasible);
        assert_eq!(b[0].0, Feasibility::Feasible);
        // l1/l2 are opaque (two-branch sums are affine? l0 affine; l1 =
        // l0(x) + l0(x+1) = (x+1) + (x+2): Opaque per the summary algebra
        // (affine + affine on the same param is not tracked), so fusion
        // still clones some — but strictly fewer than Alg. 4.
        assert!(b[0].1.instances <= a[0].1.instances);
        assert_eq!(a[0].1.instances, 1 + 1 + 2 + 4);
    }

    #[test]
    fn attached_facts_refute_assembled_queries_before_solving() {
        // Direct `check_paths` calls see no driver triage, so the seeded
        // refutation of the assembled query is the layer that fires: the
        // parity guard's condition variable carries a known-bits fact of
        // constant 0, and the conjunction is refuted before any session
        // or bit-blasting work.
        let src = "extern fn deref(p);\n\
            fn foo(x) {\n\
              let pp = null;\n\
              let r = 1;\n\
              if (x * 2 == 5) { r = pp; }\n\
              deref(r);\n\
              return 0;\n\
            }";
        let p = compile(src, CompileOptions::default()).expect("compile");
        let g = Pdg::build(&p);
        let cands = discover(&p, &g, &Checker::null_deref(), &PropagateOptions::default());
        assert_eq!(cands.len(), 1);
        let mut fused = FusionSolver::new(SolverConfig::default());
        fused.attach_absint(Arc::new(crate::absint::ProgramFacts::compute(&p)));
        let o = fused.check_paths(&p, &g, &cands[0].paths[..1]);
        assert_eq!(o.feasibility, Feasibility::Infeasible);
        assert!(
            fused.stage_totals().absint_refutes > 0 || o.preprocess_decided,
            "the seeded layers must decide the parity guard pre-solve: {o:?}"
        );
        // An unseeded engine agrees on the verdict (refute-only contract).
        let mut plain = FusionSolver::new(SolverConfig::default());
        let o2 = plain.check_paths(&p, &g, &cands[0].paths[..1]);
        assert_eq!(o2.feasibility, Feasibility::Infeasible);
    }

    #[test]
    fn expired_deadline_degrades_to_unknown() {
        // A zero wall-clock budget can never answer Sat/Unsat; both engines
        // must degrade to Unknown rather than stall or guess.
        let cfg = SolverConfig {
            timeout: Some(std::time::Duration::ZERO),
            ..SolverConfig::default()
        };
        let mut unopt = UnoptimizedGraphSolver::new(cfg);
        let mut fused = FusionSolver::new(cfg);
        let a = check_all(FIG1, &mut unopt);
        let b = check_all(FIG1, &mut fused);
        assert_eq!(a[0].0, Feasibility::Unknown);
        assert_eq!(b[0].0, Feasibility::Unknown);
    }
}

//! `multicheck_bench` — the fused multi-client perf harness
//! (`BENCH_multicheck.json`).
//!
//! One comparison over a synthetic multi-client corpus: running three
//! checkers as **one fused pass** (`analyze_multi_streaming_with_cache`
//! over the whole [`CheckerSet`]) against the old way — a **per-checker
//! loop** of three independent single-checker scans, each with its own
//! fresh engine, verdict cache, and slice memo (three separate tool
//! invocations). Both sides run the streaming pipeline at the same
//! thread count, and the fused per-checker reports are asserted
//! byte-identical to single-checker sequential runs.
//!
//! The corpus is built so the clients genuinely overlap: checker A taints
//! `gets → fopen`, checker B taints `getpass → send`, and checker C (an
//! "audit" client) watches *both* pairs — so every one of C's dependence
//! paths is byte-identical to one of A's or B's. The fused pass answers
//! C entirely from the shared checker-independent verdict cache, opens
//! no sessions and computes no slice closures for it, while the loop
//! pays a third full scan.
//!
//! Output: `BENCH_multicheck.json` in the working directory (override
//! with `FUSION_BENCH_OUT`). With `FUSION_BENCH_ENFORCE=1` the process
//! exits non-zero unless the fused pass opens strictly fewer solver
//! sessions, computes strictly fewer slice closures, and finishes within
//! 90% of the per-checker loop's wall — the CI regression gate for the
//! multi-client fusion.

use fusion::cache::VerdictCache;
use fusion::checkers::{CheckKind, Checker, CheckerSet};
use fusion::engine::{
    analyze_multi_streaming_with_cache, analyze_multi_with_cache, analyze_streaming_with_cache,
    AnalysisOptions, FeasibilityEngine, MultiAnalysisRun,
};
use fusion::graph_solver::FusionSolver;
use fusion::slice_cache::SliceCache;
use fusion_bench::{banner, default_budget, report, scale_from_env};
use fusion_ir::{compile, CompileOptions};
use fusion_pdg::graph::Pdg;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Thread count both sides run at (the ISSUE's "at 4 threads"
/// acceptance point).
const THREADS: usize = 4;
/// Wall-clock measurements take the best of this many repetitions.
const ITERS: usize = 3;

/// Synthetic multi-client subject: `funcs` functions, each tainting
/// `gets → fopen` and `getpass → send` through one opaque nonlinear
/// core, mixing feasible and infeasible guards (`x * x == 3` has no
/// solution modulo a power of two).
fn multi_client_source(funcs: usize, per: usize) -> String {
    let mut s = String::from(
        "extern fn gets(); extern fn fopen(p);\n\
         extern fn getpass(); extern fn send(x);\n",
    );
    for f in 0..funcs {
        let _ = writeln!(
            s,
            "fn churn{f}(a, b) {{ let t = a * b; let u = t * t + a; \
             let v = u * b + t; let z = v * v + u; return z; }}"
        );
        let _ = writeln!(s, "fn client{f}(x, y) {{");
        let _ = writeln!(s, "  let w = churn{f}(x, y);");
        let _ = writeln!(s, "  let t = gets(); let p = getpass();");
        for k in 0..per {
            let ta = 77 + 2 * k + f;
            let tb = 131 + 2 * k + f;
            let _ = writeln!(
                s,
                "  let c{k} = 1; if (w == {ta}) {{ c{k} = t + {k}; }} fopen(c{k});"
            );
            let _ = writeln!(
                s,
                "  let d{k} = 1; if (w == {tb}) {{ d{k} = p + {k}; }} send(d{k});"
            );
        }
        let _ = writeln!(s, "  let cz = 1; if (x * x == 3) {{ cz = t; }} fopen(cz);");
        let _ = writeln!(s, "  return 0;\n}}");
    }
    s
}

fn spec(kind: CheckKind, sources: &[&str], sinks: &[&str]) -> Checker {
    Checker {
        kind,
        source_fns: sources.iter().map(|s| s.to_string()).collect(),
        sink_fns: sinks.iter().map(|s| s.to_string()).collect(),
        through_binary: true,
        through_extern: true,
        sanitizer_fns: Vec::new(),
    }
}

/// The three clients: two narrow checkers plus an audit checker whose
/// `(source, sink)` universe is exactly their union, so its paths
/// duplicate theirs byte-for-byte.
fn clients() -> Vec<Checker> {
    vec![
        spec(CheckKind::Cwe23, &["gets"], &["fopen"]),
        spec(CheckKind::Cwe402, &["getpass"], &["send"]),
        spec(CheckKind::Cwe23, &["gets", "getpass"], &["fopen", "send"]),
    ]
}

fn factory() -> impl Fn() -> Box<dyn FeasibilityEngine> + Sync {
    let budget = default_budget();
    move || Box::new(FusionSolver::new(budget)) as Box<dyn FeasibilityEngine>
}

type ReportKey = (
    fusion_pdg::graph::Vertex,
    fusion_pdg::graph::Vertex,
    fusion::engine::Feasibility,
    Vec<fusion_pdg::graph::Vertex>,
);

fn keys<'a>(reports: impl IntoIterator<Item = &'a fusion::BugReport>) -> Vec<ReportKey> {
    reports
        .into_iter()
        .map(|r| (r.source, r.sink, r.verdict, r.path.nodes.clone()))
        .collect()
}

fn breakdown_keys(run: &MultiAnalysisRun) -> Vec<Vec<ReportKey>> {
    run.checkers.iter().map(|b| keys(&b.reports)).collect()
}

fn main() {
    banner(
        "multicheck_bench: fused multi-client pass vs per-checker loop",
        "same corpus, same threads; per-checker reports asserted identical",
    );
    let budget = default_budget();
    let src = multi_client_source(6, 8);
    let program = compile(&src, CompileOptions::default()).expect("corpus compiles");
    let pdg = Pdg::build(&program);
    let checkers = clients();
    let set = CheckerSet::new(checkers.clone());
    let make = factory();

    // Reference transcripts: one sequential fused run, split per checker
    // (itself asserted against the single-checker wrappers by the test
    // suite; here it pins the parallel runs).
    let seq_cache = VerdictCache::new();
    let mut seq_engine = FusionSolver::new(budget);
    let reference = analyze_multi_with_cache(
        &program,
        &pdg,
        &set,
        &mut seq_engine,
        &AnalysisOptions::new(),
        Some(&seq_cache),
    );
    let want = breakdown_keys(&reference);
    assert!(
        want.iter().all(|k| !k.is_empty()),
        "every client must report"
    );

    let mut reports_identical = true;
    let mut loop_wall_us = u128::MAX;
    let mut fused_wall_us = u128::MAX;
    let mut loop_sessions = 0u64;
    let mut fused_sessions = 0u64;
    let mut loop_slices = 0u64;
    let mut fused_slices = 0u64;
    let mut loop_reused = 0u64;
    let mut fused_reused = 0u64;

    for _ in 0..ITERS {
        // Per-checker loop: three independent scans, fresh engine +
        // verdict cache + slice memo each — the old checker-at-a-time
        // deployment (three tool invocations).
        let t = Instant::now();
        let mut rep_sessions = 0u64;
        let mut rep_slices = 0u64;
        let mut rep_reused = 0u64;
        let mut rep_keys = Vec::new();
        for checker in &checkers {
            let cache = VerdictCache::new();
            let opts = AnalysisOptions::new().with_slice_cache(Arc::new(SliceCache::new()));
            let run = analyze_streaming_with_cache(
                &program,
                &pdg,
                checker,
                &make,
                THREADS,
                &opts,
                Some(&cache),
            );
            rep_sessions += run.stages.sessions_opened;
            rep_slices += run.stages.slices_computed;
            rep_reused += run.stages.slices_reused;
            rep_keys.push(keys(&run.reports));
        }
        let wall = t.elapsed().as_micros();
        if rep_keys != want {
            reports_identical = false;
        }
        if wall < loop_wall_us {
            loop_wall_us = wall;
            loop_sessions = rep_sessions;
            loop_slices = rep_slices;
            loop_reused = rep_reused;
        }

        // Fused pass: the whole set in one streaming run, one verdict
        // cache and one slice memo across all clients.
        let cache = VerdictCache::new();
        let opts = AnalysisOptions::new().with_slice_cache(Arc::new(SliceCache::new()));
        let t = Instant::now();
        let run = analyze_multi_streaming_with_cache(
            &program,
            &pdg,
            &set,
            &make,
            THREADS,
            &opts,
            Some(&cache),
        );
        let wall = t.elapsed().as_micros();
        if breakdown_keys(&run) != want {
            reports_identical = false;
        }
        if wall < fused_wall_us {
            fused_wall_us = wall;
            fused_sessions = run.stages.sessions_opened;
            fused_slices = run.stages.slices_computed;
            fused_reused = run.stages.slices_reused;
        }
    }
    assert!(
        reports_identical,
        "fused and per-checker reports must be byte-identical"
    );

    let fused_pct = if loop_wall_us == 0 {
        0.0
    } else {
        100.0 * fused_wall_us as f64 / loop_wall_us as f64
    };

    println!("--------------------------------------------------------------");
    println!(
        "wall:     loop {:>9.3}ms   fused {:>9.3}ms   ({fused_pct:.1}% of loop)",
        loop_wall_us as f64 / 1000.0,
        fused_wall_us as f64 / 1000.0,
    );
    println!("sessions: loop {loop_sessions} opened -> fused {fused_sessions}");
    println!(
        "slices:   loop {loop_slices} computed / {loop_reused} reused -> \
         fused {fused_slices} computed / {fused_reused} reused"
    );

    let json = format!(
        "{{\n  \"scale\": {},\n  \"threads\": {THREADS},\n  \"iters\": {ITERS},\n  \
         \"checkers\": {},\n  \
         \"loop_wall_us\": {loop_wall_us},\n  \"fused_wall_us\": {fused_wall_us},\n  \
         \"fused_pct_of_loop\": {fused_pct:.2},\n  \
         \"loop_sessions_opened\": {loop_sessions},\n  \
         \"fused_sessions_opened\": {fused_sessions},\n  \
         \"loop_slices_computed\": {loop_slices},\n  \
         \"fused_slices_computed\": {fused_slices},\n  \
         \"loop_slices_reused\": {loop_reused},\n  \
         \"fused_slices_reused\": {fused_reused},\n  \
         \"reports_identical\": {reports_identical}\n}}\n",
        scale_from_env(),
        set.len(),
    );
    report::write("BENCH_multicheck.json", &json);

    // CI gates: the fused pass must share for real — strictly fewer
    // sessions, strictly fewer slice closures, and ≤ 90% of the
    // loop's wall at the bench thread count.
    let gate = report::Gate::from_env();
    gate.require(fused_sessions < loop_sessions, || {
        format!(
            "fused pass opened {fused_sessions} sessions, \
             per-checker loop opened {loop_sessions}"
        )
    });
    gate.require(fused_slices < loop_slices, || {
        format!(
            "fused pass computed {fused_slices} slice closures, \
             per-checker loop computed {loop_slices}"
        )
    });
    gate.require(fused_wall_us as f64 <= loop_wall_us as f64 * 0.90, || {
        format!(
            "fused wall {fused_wall_us}us exceeds 90% of \
             loop wall {loop_wall_us}us"
        )
    });
    gate.pass(
        "fused opened fewer sessions, computed fewer slices, \
         and ran within 90% of the loop",
    );
}

//! # fusion
//!
//! The primary contribution of *Path-Sensitive Sparse Analysis without Path
//! Conditions* (Shi, Yao, Wu, Zhang — PLDI 2021): an inter-procedurally
//! path-sensitive sparse analysis in which the SMT solver works directly on
//! the program dependence graph, so the analysis never computes, caches, or
//! excessively clones path conditions.
//!
//! * [`absint`] — the sparse abstract interpreter (Const ⊑ Affine ⊑
//!   Interval × KnownBits per definition, memoized once per function) that
//!   triages candidates before any solver work and seeds formula
//!   preprocessing with known-bits facts;
//! * [`checkers`] — the paper's three checkers (null dereference, CWE-23,
//!   CWE-402) as data-driven source/sink/propagation specs;
//! * [`propagate`] — sparse, condition-free fact propagation collecting
//!   dependence paths (Algorithms 1/2/5);
//! * [`quickpath`] — entry→exit value summaries (the §2 "quick path" and
//!   the Fig. 9 label deletion);
//! * [`graph_solver`] — the IR-based SMT solutions: Algorithm 4
//!   (unoptimized) and Algorithm 6 (the Fusion solver);
//! * [`engine`] — the drivers (sequential, work-stealing barrier, and
//!   streaming — each fused over a whole [`checkers::CheckerSet`] in one
//!   multi-client pass), the [`engine::FeasibilityEngine`] trait the
//!   baselines also implement, and bug reports;
//! * [`cache`] — the sharded feasibility-verdict memo cache shared across
//!   worker engines;
//! * [`compact`] — the pre-discovery PDG-compaction pass: frontier
//!   reachability pruning, summary-chain collapse, and isomorphic-fragment
//!   verdict sharing, all over dependence structure only;
//! * [`slice_cache`] — the sharded LRU memo of slice *closures* (dependence
//!   structure only — never formulas, preserving §3.2.2's discipline);
//! * [`incremental`] — the warm analysis service: per-function content
//!   fingerprints, the dirtiness tracker, eviction provenance, and the
//!   resident [`incremental::AnalysisSession`] behind `fusion-scan
//!   --serve`;
//! * [`stream`] — the bounded channel behind the streaming
//!   discovery→solve pipeline;
//! * [`snapshot`] — the versioned, checksummed on-disk container for
//!   PDG partitions, facts, summaries, verdicts, and outcomes (never a
//!   path condition);
//! * [`partition`] — the bottom-up SCC-respecting call-graph
//!   partitioner behind `--shards`;
//! * [`shard`] — per-shard sub-program extraction, demand-driven
//!   summary import, and the deterministic merge/replay coordinator;
//! * [`memory`] — categorized byte accounting behind every memory number
//!   in the reproduced tables.
//!
//! ## Quick start
//!
//! ```
//! use fusion::checkers::Checker;
//! use fusion::engine::{analyze, AnalysisOptions};
//! use fusion::graph_solver::FusionSolver;
//! use fusion_ir::{compile, CompileOptions};
//! use fusion_pdg::graph::Pdg;
//! use fusion_smt::solver::SolverConfig;
//!
//! let program = compile(
//!     "extern fn deref(p);
//!      fn f(x) { let q = null; let r = 1; if (x > 0) { r = q; } deref(r); return 0; }",
//!     CompileOptions::default(),
//! )?;
//! let pdg = Pdg::build(&program);
//! let mut engine = FusionSolver::new(SolverConfig::default());
//! let run = analyze(&program, &pdg, &Checker::null_deref(), &mut engine,
//!                   &AnalysisOptions::new());
//! assert_eq!(run.reports.len(), 1); // x > 0 is satisfiable
//! # Ok::<(), fusion_ir::CompileError>(())
//! ```

#![warn(missing_docs)]

pub mod absint;
pub mod cache;
pub mod checkers;
pub mod compact;
pub mod engine;
pub mod graph_solver;
pub mod incremental;
pub mod memory;
pub mod partition;
pub mod propagate;
pub mod quickpath;
pub mod report;
pub mod shard;
pub mod slice_cache;
pub mod snapshot;
pub mod stream;

pub use absint::{AbsVal, ProgramFacts};
pub use cache::{path_set_key, CacheStats, Key128, VerdictCache};
pub use checkers::{default_checkers, CheckKind, Checker, CheckerId, CheckerSet};
pub use compact::{CompactPdg, CompactStats, IsoVerdicts};
pub use engine::{
    analyze, analyze_multi, analyze_multi_parallel, analyze_multi_parallel_with_cache,
    analyze_multi_streaming, analyze_multi_streaming_with_cache, analyze_multi_with_cache,
    analyze_parallel, analyze_parallel_with_cache, analyze_streaming, analyze_streaming_with_cache,
    analyze_with_cache, AnalysisOptions, AnalysisRun, BugReport, CheckOutcome, CheckerBreakdown,
    Feasibility, FeasibilityEngine, MultiAnalysisRun, SolveRecord, StageStats,
};
pub use engine::{analyze_multi_streaming_session, ItemOutcomes, SessionParams};
pub use graph_solver::{FusionSolver, UnoptimizedGraphSolver};
pub use incremental::{
    AnalysisSession, DirtinessTracker, EditDiff, InvalidationStats, SessionProvenance,
};
pub use memory::{run_accounting, Category, MemoryAccountant};
pub use partition::ShardPlan;
pub use shard::{analyze_sharded, ShardedRun};
pub use slice_cache::{SliceCache, SliceCacheStats};
pub use snapshot::{Snapshot, SnapshotError, SnapshotWriter};

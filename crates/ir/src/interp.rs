//! Reference interpreters for the surface and core languages.
//!
//! Two evaluators with identical observable behaviour:
//!
//! * [`eval_surface`] executes the structured surface AST, cutting every
//!   `while` loop off after `loop_limit` iterations (the bounded-model-
//!   checking semantics the paper adopts by unrolling);
//! * [`eval_core`] executes a lowered SSA function *speculatively* — every
//!   definition is evaluated (the language is pure and total), and a
//!   definition counts as *executed* iff its guard chain is all-true.
//!
//! External functions are modeled by a deterministic hash of their name and
//! arguments so both evaluators agree. The test suite uses the pair to
//! validate lowering end-to-end, and the analysis crates use [`eval_core`]
//! as dynamic ground truth for path feasibility.

use crate::ast::{self, BinOp, Expr, Stmt, UnOp};
use crate::interner::{Interner, Symbol};
use crate::ssa::{self, DefKind, FuncId, Op};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// An observed call to an external function: callee name and argument
/// values, recorded only when the call actually executes.
pub type ExternCall = (Symbol, Vec<u32>);

/// The sequence of executed external calls, in execution order for the
/// surface evaluator and in definition order for the core evaluator.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Executed external calls.
    pub extern_calls: Vec<ExternCall>,
}

/// Evaluation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// Ran out of fuel (call depth / statement budget).
    FuelExhausted,
    /// A name did not resolve (malformed program).
    Unbound(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::FuelExhausted => write!(f, "evaluation fuel exhausted"),
            EvalError::Unbound(n) => write!(f, "unbound name `{n}`"),
        }
    }
}

impl Error for EvalError {}

/// Deterministic model of an external function's return value: a splitmix64
/// style hash of the callee symbol and arguments, truncated to a word.
pub fn extern_value(callee: Symbol, args: &[u32]) -> u32 {
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15 ^ (callee.index() as u64);
    for &a in args {
        h = h.wrapping_add(a as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 31;
    }
    h = (h ^ (h >> 30)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (h ^ (h >> 32)) as u32
}

struct SurfaceEval<'p> {
    program: &'p ast::Program,
    interner: &'p Interner,
    by_name: HashMap<Symbol, usize>,
    loop_limit: usize,
    fuel: u64,
    trace: Trace,
}

enum Flow {
    Normal,
    Returned(u32),
}

impl<'p> SurfaceEval<'p> {
    fn spend(&mut self) -> Result<(), EvalError> {
        if self.fuel == 0 {
            return Err(EvalError::FuelExhausted);
        }
        self.fuel -= 1;
        Ok(())
    }

    fn call(&mut self, name: Symbol, args: &[u32]) -> Result<u32, EvalError> {
        self.spend()?;
        let idx = *self
            .by_name
            .get(&name)
            .ok_or_else(|| EvalError::Unbound(self.interner.resolve(name).to_owned()))?;
        let func = &self.program.functions[idx];
        if func.is_extern {
            self.trace.extern_calls.push((name, args.to_vec()));
            return Ok(extern_value(name, args));
        }
        let mut env: HashMap<Symbol, u32> = HashMap::new();
        for (p, v) in func.params.iter().zip(args) {
            env.insert(*p, *v);
        }
        match self.stmts(&func.body, &mut env)? {
            Flow::Returned(v) => Ok(v),
            Flow::Normal => Ok(0), // fall-through returns 0, like lowering
        }
    }

    fn stmts(&mut self, stmts: &[Stmt], env: &mut HashMap<Symbol, u32>) -> Result<Flow, EvalError> {
        for s in stmts {
            self.spend()?;
            match s {
                Stmt::Let(sym, e) | Stmt::Assign(sym, e) => {
                    let v = self.expr(e, env)?;
                    env.insert(*sym, v);
                }
                Stmt::Expr(e) => {
                    self.expr(e, env)?;
                }
                Stmt::Return(e) => {
                    let v = self.expr(e, env)?;
                    return Ok(Flow::Returned(v));
                }
                Stmt::If(c, t, el) => {
                    let cv = self.expr(c, env)?;
                    let flow = if cv != 0 {
                        self.stmts(t, env)?
                    } else {
                        self.stmts(el, env)?
                    };
                    if let Flow::Returned(v) = flow {
                        return Ok(Flow::Returned(v));
                    }
                }
                Stmt::While(c, body) => {
                    // Bounded semantics: at most `loop_limit` iterations.
                    for _ in 0..self.loop_limit {
                        let cv = self.expr(c, env)?;
                        if cv == 0 {
                            break;
                        }
                        if let Flow::Returned(v) = self.stmts(body, env)? {
                            return Ok(Flow::Returned(v));
                        }
                    }
                }
            }
        }
        Ok(Flow::Normal)
    }

    fn expr(&mut self, e: &Expr, env: &mut HashMap<Symbol, u32>) -> Result<u32, EvalError> {
        self.spend()?;
        Ok(match e {
            Expr::Int(v) => *v as u32,
            Expr::Null => 0,
            Expr::Var(sym) => *env
                .get(sym)
                .ok_or_else(|| EvalError::Unbound(self.interner.resolve(*sym).to_owned()))?,
            Expr::Unary(op, inner) => {
                let v = self.expr(inner, env)?;
                match op {
                    UnOp::Not => (v == 0) as u32,
                    UnOp::Neg => 0u32.wrapping_sub(v),
                    UnOp::BitNot => !v,
                }
            }
            Expr::Binary(op, a, b) => {
                let va = self.expr(a, env)?;
                let vb = self.expr(b, env)?;
                match op {
                    BinOp::Add => Op::Add.eval(va, vb),
                    BinOp::Sub => Op::Sub.eval(va, vb),
                    BinOp::Mul => Op::Mul.eval(va, vb),
                    BinOp::Div => Op::Udiv.eval(va, vb),
                    BinOp::Rem => Op::Urem.eval(va, vb),
                    BinOp::BitAnd => va & vb,
                    BinOp::BitOr => va | vb,
                    BinOp::BitXor => va ^ vb,
                    BinOp::Shl => Op::Shl.eval(va, vb),
                    BinOp::Shr => Op::Lshr.eval(va, vb),
                    BinOp::Lt => Op::Slt.eval(va, vb),
                    BinOp::Le => Op::Sle.eval(va, vb),
                    BinOp::Gt => Op::Slt.eval(vb, va),
                    BinOp::Ge => Op::Sle.eval(vb, va),
                    BinOp::Eq => Op::Eq.eval(va, vb),
                    BinOp::Ne => Op::Ne.eval(va, vb),
                    BinOp::And => ((va != 0) && (vb != 0)) as u32,
                    BinOp::Or => ((va != 0) || (vb != 0)) as u32,
                }
            }
            Expr::Call(name, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.expr(a, env)?);
                }
                self.call(*name, &vals)?
            }
        })
    }
}

/// Executes `func(args)` over the surface AST with loop iterations capped
/// at `loop_limit` (matching an unroll factor of the same value).
///
/// # Errors
///
/// [`EvalError::FuelExhausted`] if the budget of `fuel` evaluation steps is
/// exceeded; [`EvalError::Unbound`] on malformed programs.
pub fn eval_surface(
    program: &ast::Program,
    interner: &Interner,
    func: Symbol,
    args: &[u32],
    loop_limit: usize,
    fuel: u64,
) -> Result<(u32, Trace), EvalError> {
    let by_name = program
        .functions
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name, i))
        .collect();
    let mut ev = SurfaceEval {
        program,
        interner,
        by_name,
        loop_limit,
        fuel,
        trace: Trace::default(),
    };
    let v = ev.call(func, args)?;
    Ok((v, ev.trace))
}

/// The result of speculatively evaluating one core function invocation.
#[derive(Debug, Clone)]
pub struct CoreEval {
    /// Every definition's value (all definitions are evaluated; the
    /// language is pure and total).
    pub values: Vec<u32>,
    /// `executed[i]` iff definition `i`'s guard chain is all-true.
    pub executed: Vec<bool>,
    /// The function's return value.
    pub ret: u32,
}

fn eval_core_func(
    program: &ssa::Program,
    func: FuncId,
    args: &[u32],
    fuel: &mut u64,
    trace: &mut Trace,
) -> Result<CoreEval, EvalError> {
    let f = program.func(func);
    if f.is_extern {
        // Modeled externally; the caller records the trace entry.
        return Ok(CoreEval {
            values: Vec::new(),
            executed: Vec::new(),
            ret: extern_value(f.name, args),
        });
    }
    let mut values = vec![0u32; f.defs.len()];
    let mut executed = vec![false; f.defs.len()];
    for def in &f.defs {
        if *fuel == 0 {
            return Err(EvalError::FuelExhausted);
        }
        *fuel -= 1;
        let exec = match def.guard {
            None => true,
            Some(g) => {
                let DefKind::Branch { cond } = f.def(g).kind else {
                    unreachable!("guards are branches")
                };
                executed[g.index()] && values[cond.index()] != 0
            }
        };
        executed[def.var.index()] = exec;
        values[def.var.index()] = match &def.kind {
            DefKind::Param { index } => args.get(*index).copied().unwrap_or(0),
            DefKind::Const { value, .. } => *value,
            DefKind::Copy { src } | DefKind::Return { src } => values[src.index()],
            DefKind::Binary { op, lhs, rhs } => op.eval(values[lhs.index()], values[rhs.index()]),
            DefKind::Ite {
                cond,
                then_v,
                else_v,
            } => {
                if values[cond.index()] != 0 {
                    values[then_v.index()]
                } else {
                    values[else_v.index()]
                }
            }
            DefKind::Branch { cond } => values[cond.index()],
            DefKind::Call {
                callee, args: avs, ..
            } => {
                let vals: Vec<u32> = avs.iter().map(|a| values[a.index()]).collect();
                let callee_f = program.func(*callee);
                if callee_f.is_extern {
                    if exec {
                        trace.extern_calls.push((callee_f.name, vals.clone()));
                    }
                    extern_value(callee_f.name, &vals)
                } else {
                    // Speculative execution: the callee's *value* is always
                    // computed, but its trace only counts when this call
                    // executes.
                    let mut sub_trace = Trace::default();
                    let sub = eval_core_func(program, *callee, &vals, fuel, &mut sub_trace)?;
                    if exec {
                        trace.extern_calls.extend(sub_trace.extern_calls);
                    }
                    sub.ret
                }
            }
        };
    }
    let ret = f.ret.map(|r| values[r.index()]).unwrap_or(0);
    Ok(CoreEval {
        values,
        executed,
        ret,
    })
}

/// Speculatively evaluates a core SSA function on concrete arguments.
///
/// # Errors
///
/// [`EvalError::FuelExhausted`] when `fuel` definition-evaluations are
/// exceeded (guards against pathological speculative call trees).
pub fn eval_core(
    program: &ssa::Program,
    func: FuncId,
    args: &[u32],
    mut fuel: u64,
) -> Result<(CoreEval, Trace), EvalError> {
    let mut trace = Trace::default();
    let ev = eval_core_func(program, func, args, &mut fuel, &mut trace)?;
    Ok((ev, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{lower, LowerOptions};
    use crate::parser::parse;

    fn check_equiv(src: &str, func: &str, argsets: &[Vec<u32>]) {
        let mut i = Interner::new();
        let surface = parse(src, &mut i).expect("parse");
        let unroll = 2usize;
        let core = lower(
            &surface,
            &mut i,
            LowerOptions {
                loop_unroll: unroll,
            },
        )
        .expect("lower");
        let sym = i.lookup(func).unwrap();
        let fid = core.func_by_name(func).unwrap().id;
        for args in argsets {
            let (sv, st) = eval_surface(&surface, &i, sym, args, unroll, 1_000_000).unwrap();
            let (cv, ct) = eval_core(&core, fid, args, 1_000_000).unwrap();
            assert_eq!(sv, cv.ret, "value mismatch on {args:?}");
            let mut s_sorted = st.extern_calls.clone();
            let mut c_sorted = ct.extern_calls.clone();
            s_sorted.sort();
            c_sorted.sort();
            assert_eq!(s_sorted, c_sorted, "trace mismatch on {args:?}");
        }
    }

    #[test]
    fn straight_line_equivalence() {
        check_equiv(
            "fn f(x) { let y = x * 2 + 1; return y; }",
            "f",
            &[vec![0], vec![5], vec![u32::MAX]],
        );
    }

    #[test]
    fn branches_equivalence() {
        check_equiv(
            "fn f(a, b) { if (a < b) { return a; } else { return b; } }",
            "f",
            &[vec![1, 2], vec![2, 1], vec![5, 5], vec![0x8000_0000, 1]],
        );
    }

    #[test]
    fn early_return_equivalence() {
        check_equiv(
            "extern fn sink(x);\n fn f(a, p) { if (a) { return 7; } sink(p); return p + 1; }",
            "f",
            &[vec![0, 3], vec![1, 3]],
        );
    }

    #[test]
    fn loop_equivalence_within_bound() {
        check_equiv(
            "fn f(n) { let i = 0; while (i < n) { i = i + 1; } return i; }",
            "f",
            &[vec![0], vec![1], vec![2]],
        );
    }

    #[test]
    fn loop_cutoff_matches_unrolled_semantics() {
        // n=10 exceeds the unroll factor 2: both semantics stop after two
        // iterations.
        check_equiv(
            "fn f(n) { let i = 0; while (i < n) { i = i + 1; } return i; }",
            "f",
            &[vec![10]],
        );
    }

    #[test]
    fn calls_equivalence() {
        check_equiv(
            "fn bar(x) { let y = x * 2; return y; }\n\
             fn foo(a, b) { let c = bar(a); let d = bar(b); if (c < d) { return 0; } return 1; }",
            "foo",
            &[vec![1, 2], vec![3, 1], vec![0, 0]],
        );
    }

    #[test]
    fn extern_model_is_deterministic() {
        let mut i = Interner::new();
        let s = i.intern("gets");
        assert_eq!(extern_value(s, &[1, 2]), extern_value(s, &[1, 2]));
        assert_ne!(extern_value(s, &[1, 2]), extern_value(s, &[2, 1]));
    }

    #[test]
    fn guarded_sink_is_traced_only_when_executed() {
        let mut i = Interner::new();
        let src = "extern fn sink(x); fn f(a) { if (a) { sink(a); } return 0; }";
        let surface = parse(src, &mut i).unwrap();
        let core = lower(&surface, &mut i, LowerOptions::default()).unwrap();
        let fid = core.func_by_name("f").unwrap().id;
        let (_, t0) = eval_core(&core, fid, &[0], 10_000).unwrap();
        let (_, t1) = eval_core(&core, fid, &[1], 10_000).unwrap();
        assert!(t0.extern_calls.is_empty());
        assert_eq!(t1.extern_calls.len(), 1);
    }

    #[test]
    fn fuel_exhaustion_is_reported() {
        let mut i = Interner::new();
        let src = "fn f(x) { return x + x; }";
        let surface = parse(src, &mut i).unwrap();
        let sym = i.lookup("f").unwrap();
        let err = eval_surface(&surface, &i, sym, &[1], 2, 1).unwrap_err();
        assert_eq!(err, EvalError::FuelExhausted);
    }
}

//! The program dependence graph of Def. 3.1.
//!
//! Vertices are definitions (a statement and the variable it defines are
//! interchangeable); data-dependence edges follow the rules of Fig. 5 —
//! including *call* and *return* edges labeled by the call site's unique
//! parenthesis pair — and control-dependence edges connect each statement
//! to the `if`-statements guarding it.
//!
//! The core SSA form of `fusion-ir` already encodes all of these relations
//! implicitly; this module materializes the forward adjacency (def → uses)
//! the sparse analysis propagates along, the reverse call map, and the
//! vertex/edge statistics reported in Table 2.

use fusion_ir::ssa::{CallSiteId, DefKind, FuncId, Program, VarId};
use std::sync::Arc;

/// A vertex of the whole-program dependence graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Vertex {
    /// The containing function.
    pub func: FuncId,
    /// The definition within the function.
    pub var: VarId,
}

impl Vertex {
    /// Convenience constructor.
    pub fn new(func: FuncId, var: VarId) -> Self {
        Self { func, var }
    }
}

impl std::fmt::Display for Vertex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.func, self.var)
    }
}

/// Where a fact can flow in one step from a given definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowTarget {
    /// An intra-procedural use: the using definition and the operand slot
    /// the source occupies in it.
    Local {
        /// The using definition.
        to: VarId,
        /// Zero-based operand position within the user.
        operand: usize,
    },
    /// A call edge `(ᵢ`: the value is an actual argument flowing into the
    /// callee's parameter.
    IntoCallee {
        /// The call site (the parenthesis label).
        site: CallSiteId,
        /// The callee.
        callee: FuncId,
        /// The parameter definition receiving the value.
        param: VarId,
    },
    /// A return edge `)ᵢ`: the function's return value flows back to a
    /// caller's receiver.
    BackToCaller {
        /// The call site.
        site: CallSiteId,
        /// The calling function.
        caller: FuncId,
        /// The call definition receiving the value.
        dst: VarId,
    },
    /// The empty-function rule of Fig. 5: an actual argument of an external
    /// callee flows directly to the call's receiver.
    ThroughExtern {
        /// The call definition receiving the value.
        to: VarId,
        /// The external callee (for checker models).
        callee: FuncId,
        /// Which argument position the value occupied.
        arg: usize,
    },
}

/// Per-function adjacency of the PDG.
#[derive(Debug, Clone, Default)]
pub struct FuncPdg {
    /// `uses[v]` lists `(user, operand-slot)` pairs for definition `v`.
    pub uses: Vec<Vec<(VarId, usize)>>,
}

/// Aggregate size statistics (Table 2 columns).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PdgStats {
    /// Number of vertices (definitions).
    pub vertices: usize,
    /// Intra-procedural data-dependence edges.
    pub data_edges: usize,
    /// Call + return edges (each labeled pair counted as two edges).
    pub interproc_edges: usize,
    /// Control-dependence edges (statement → guarding branch).
    pub control_edges: usize,
}

impl PdgStats {
    /// Total edge count as reported in Table 2.
    pub fn edges(&self) -> usize {
        self.data_edges + self.interproc_edges + self.control_edges
    }
}

/// The whole-program dependence graph.
///
/// Per-function adjacency is held behind [`Arc`] so an incremental
/// rebuild ([`Pdg::rebuild`]) can share the subgraphs of unedited
/// functions with the previous graph instead of re-deriving them: a
/// function's [`FuncPdg`] depends only on its *own* definition array
/// (operand edges never look at callee bodies), so content-identical
/// functions have bit-identical adjacency.
#[derive(Debug, Clone)]
pub struct Pdg {
    funcs: Vec<Arc<FuncPdg>>,
    /// `callers_of[f]` lists the call sites whose callee is `f`.
    callers_of: Vec<Vec<CallSiteId>>,
    stats: PdgStats,
}

/// Builds one function's adjacency (operand def→use edges only; the
/// inter-procedural interpretation happens in [`Pdg::flow_targets`]).
fn build_func_pdg(func: &fusion_ir::ssa::Function) -> FuncPdg {
    let mut fp = FuncPdg {
        uses: vec![Vec::new(); func.defs.len()],
    };
    for def in &func.defs {
        for (slot, op) in def.kind.operands().into_iter().enumerate() {
            fp.uses[op.index()].push((def.var, slot));
        }
    }
    fp
}

/// One function's contribution to the Table 2 statistics. Unlike the
/// adjacency this *does* consult callee extern-ness (to classify call
/// edges), so the rebuild path recomputes it for every function — it is
/// an O(defs) scan with no allocation.
fn func_stats(program: &Program, func: &fusion_ir::ssa::Function) -> PdgStats {
    let mut stats = PdgStats::default();
    for def in &func.defs {
        // Whether this definition's operand edges are the labeled
        // call edges of Fig. 5 (actual → callee parameter) rather
        // than plain intra-procedural data dependence.
        let interproc_call = match &def.kind {
            DefKind::Call { callee, .. } => !program.func(*callee).is_extern,
            _ => false,
        };
        let operands = def.kind.operands().len();
        if interproc_call {
            stats.interproc_edges += operands + 1; // call edges `(ᵢ` + return edge `)ᵢ`
        } else {
            stats.data_edges += operands;
        }
        if def.guard.is_some() {
            stats.control_edges += 1;
        }
        stats.vertices += 1;
    }
    stats
}

impl Pdg {
    /// Builds the dependence graph of a program (Fig. 5 rules).
    pub fn build(program: &Program) -> Pdg {
        let mut funcs = Vec::with_capacity(program.functions.len());
        let mut stats = PdgStats::default();
        for func in &program.functions {
            let fs = func_stats(program, func);
            stats.vertices += fs.vertices;
            stats.data_edges += fs.data_edges;
            stats.interproc_edges += fs.interproc_edges;
            stats.control_edges += fs.control_edges;
            funcs.push(Arc::new(build_func_pdg(func)));
        }
        Pdg {
            funcs,
            callers_of: build_callers_of(program),
            stats,
        }
    }

    /// Incrementally rebuilds the graph after an edit: functions flagged
    /// `unchanged` (content-identical to the previous program, same
    /// [`FuncId`] indexing) share the previous graph's [`FuncPdg`] by
    /// [`Arc`] instead of re-deriving their adjacency. The reverse call
    /// map and the statistics are recomputed from scratch — both are
    /// O(program) scans with trivial constants, and the call map can
    /// shift even for unedited functions (an edited caller may add or
    /// drop call sites targeting them).
    ///
    /// # Panics
    ///
    /// Panics if `unchanged` does not cover the program's function list
    /// — identifying which functions changed (and bailing out to a full
    /// [`Pdg::build`] when the function list itself changed shape) is
    /// the caller's job.
    pub fn rebuild(program: &Program, prev: &Pdg, unchanged: &[bool]) -> Pdg {
        assert_eq!(
            unchanged.len(),
            program.functions.len(),
            "unchanged mask must cover every function"
        );
        assert_eq!(
            prev.funcs.len(),
            program.functions.len(),
            "incremental rebuild requires an unchanged function list shape"
        );
        let mut funcs = Vec::with_capacity(program.functions.len());
        let mut stats = PdgStats::default();
        for func in &program.functions {
            let fs = func_stats(program, func);
            stats.vertices += fs.vertices;
            stats.data_edges += fs.data_edges;
            stats.interproc_edges += fs.interproc_edges;
            stats.control_edges += fs.control_edges;
            let i = func.id.index();
            if unchanged[i] {
                funcs.push(Arc::clone(&prev.funcs[i]));
            } else {
                funcs.push(Arc::new(build_func_pdg(func)));
            }
        }
        Pdg {
            funcs,
            callers_of: build_callers_of(program),
            stats,
        }
    }

    /// Size statistics for Table 2.
    pub fn stats(&self) -> PdgStats {
        self.stats
    }

    /// The call sites targeting function `f`.
    pub fn callers_of(&self, f: FuncId) -> &[CallSiteId] {
        &self.callers_of[f.index()]
    }

    /// Whether function `f`'s adjacency is shared (by [`Arc`]) with
    /// another graph — true for unedited functions after an incremental
    /// [`Pdg::rebuild`] while the previous graph is still alive. Test
    /// and accounting hook; analysis never consults it.
    pub fn shares_func_with(&self, other: &Pdg, f: FuncId) -> bool {
        Arc::ptr_eq(&self.funcs[f.index()], &other.funcs[f.index()])
    }

    /// Intra-procedural uses of a definition.
    pub fn uses(&self, func: FuncId, var: VarId) -> &[(VarId, usize)] {
        &self.funcs[func.index()].uses[var.index()]
    }

    /// All one-step flow targets of a definition: local uses, plus call
    /// edges when the value is a call argument (the `Local` use into a call
    /// definition is *replaced* by the labeled inter-procedural edge or the
    /// extern flow-through), plus return edges when the value is the
    /// function's return statement.
    pub fn flow_targets(&self, program: &Program, at: Vertex) -> Vec<FlowTarget> {
        let func = program.func(at.func);
        let mut out = Vec::new();
        for &(user, slot) in self.uses(at.func, at.var) {
            match &func.def(user).kind {
                DefKind::Call { callee, site, .. } => {
                    let callee_f = program.func(*callee);
                    if callee_f.is_extern {
                        out.push(FlowTarget::ThroughExtern {
                            to: user,
                            callee: *callee,
                            arg: slot,
                        });
                    } else {
                        let param = callee_f.params[slot];
                        out.push(FlowTarget::IntoCallee {
                            site: *site,
                            callee: *callee,
                            param,
                        });
                    }
                }
                _ => out.push(FlowTarget::Local {
                    to: user,
                    operand: slot,
                }),
            }
        }
        // Return edges: the Return definition's value flows to every caller.
        if Some(at.var) == func.ret {
            for &site in self.callers_of(at.func) {
                let cs = program.call_site(site);
                out.push(FlowTarget::BackToCaller {
                    site,
                    caller: cs.caller,
                    dst: cs.stmt,
                });
            }
        }
        out
    }
}

/// The reverse call map: `callers_of[f]` lists the call sites whose
/// callee is `f`, in call-site-id order.
fn build_callers_of(program: &Program) -> Vec<Vec<CallSiteId>> {
    let mut callers_of = vec![Vec::new(); program.functions.len()];
    for (i, cs) in program.call_sites.iter().enumerate() {
        callers_of[cs.callee.index()].push(CallSiteId(i as u32));
    }
    callers_of
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion_ir::{compile, CompileOptions};

    fn program(src: &str) -> Program {
        compile(src, CompileOptions::default()).expect("compile")
    }

    #[test]
    fn builds_def_use_edges() {
        let p = program("fn f(x) { let y = x + x; return y; }");
        let g = Pdg::build(&p);
        let f = p.func_by_name("f").unwrap();
        // x (param, v0) is used twice by the add.
        assert_eq!(g.uses(f.id, f.params[0]).len(), 2);
    }

    #[test]
    fn call_and_return_edges() {
        let p = program("fn bar(x) { return x; } fn foo(a) { let c = bar(a); return c; }");
        let g = Pdg::build(&p);
        let foo = p.func_by_name("foo").unwrap();
        let bar = p.func_by_name("bar").unwrap();
        // a flows into bar's parameter via a labeled call edge.
        let targets = g.flow_targets(&p, Vertex::new(foo.id, foo.params[0]));
        assert!(targets.iter().any(|t| matches!(
            t,
            FlowTarget::IntoCallee { callee, param, .. }
                if *callee == bar.id && *param == bar.params[0]
        )));
        // bar's return flows back to foo's receiver.
        let back = g.flow_targets(&p, Vertex::new(bar.id, bar.ret.unwrap()));
        assert!(back
            .iter()
            .any(|t| matches!(t, FlowTarget::BackToCaller { caller, .. } if *caller == foo.id)));
    }

    #[test]
    fn two_call_sites_have_distinct_labels() {
        let p = program(
            "fn bar(x) { return x; } fn foo(a, b) { let c = bar(a); let d = bar(b); return c + d; }",
        );
        let g = Pdg::build(&p);
        let bar = p.func_by_name("bar").unwrap();
        let sites = g.callers_of(bar.id);
        assert_eq!(sites.len(), 2);
        assert_ne!(sites[0], sites[1]);
        // The return value flows back through both labels.
        let back = g.flow_targets(&p, Vertex::new(bar.id, bar.ret.unwrap()));
        let back_sites: Vec<_> = back
            .iter()
            .filter_map(|t| match t {
                FlowTarget::BackToCaller { site, .. } => Some(*site),
                _ => None,
            })
            .collect();
        assert_eq!(back_sites.len(), 2);
    }

    #[test]
    fn extern_flows_through() {
        let p = program("extern fn lib(x); fn f(a) { let r = lib(a); return r; }");
        let g = Pdg::build(&p);
        let f = p.func_by_name("f").unwrap();
        let targets = g.flow_targets(&p, Vertex::new(f.id, f.params[0]));
        assert!(targets
            .iter()
            .any(|t| matches!(t, FlowTarget::ThroughExtern { .. })));
    }

    #[test]
    fn rebuild_shares_unchanged_subgraphs_and_matches_full_build() {
        let src_a = "fn bar(x) { return x + 1; } fn foo(a) { let c = bar(a); return c; }";
        let src_b = "fn bar(x) { return x + 2; } fn foo(a) { let c = bar(a); return c; }";
        let pa = program(src_a);
        let pb = program(src_b);
        let ga = Pdg::build(&pa);
        // `bar` edited, `foo` unchanged.
        let bar = pb.func_by_name("bar").unwrap().id;
        let foo = pb.func_by_name("foo").unwrap().id;
        let mut unchanged = vec![true; pb.functions.len()];
        unchanged[bar.index()] = false;
        let gb = Pdg::rebuild(&pb, &ga, &unchanged);
        let gb_full = Pdg::build(&pb);
        assert_eq!(gb.stats(), gb_full.stats());
        assert!(gb.shares_func_with(&ga, foo), "foo's subgraph is reused");
        assert!(!gb.shares_func_with(&ga, bar), "bar's subgraph is rebuilt");
        for f in &pb.functions {
            for d in &f.defs {
                assert_eq!(
                    gb.uses(f.id, d.var),
                    gb_full.uses(f.id, d.var),
                    "adjacency must match the full build"
                );
                assert_eq!(
                    gb.flow_targets(&pb, Vertex::new(f.id, d.var)),
                    gb_full.flow_targets(&pb, Vertex::new(f.id, d.var)),
                );
            }
        }
    }

    #[test]
    fn stats_count_vertices_and_edges() {
        let p = program("fn f(x) { let y = x * 2; if (y > 4) { return y; } return x; }");
        let g = Pdg::build(&p);
        let s = g.stats();
        assert_eq!(s.vertices, p.size());
        assert!(s.data_edges > 0);
        assert!(s.control_edges > 0);
        assert_eq!(s.interproc_edges, 0);
        assert_eq!(s.edges(), s.data_edges + s.control_edges);
    }
}

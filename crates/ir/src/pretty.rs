//! Pretty-printers for the surface AST and the core SSA form.
//!
//! The surface printer emits parseable concrete syntax (round-trips through
//! [`crate::parser::parse`], which the property tests verify); the core
//! printer emits a readable listing of lowered functions, indenting by
//! guard nesting so the control structure reconstructed in [`crate::cfg`]
//! is visible.

use crate::ast::{self, BinOp, Expr, Stmt, UnOp};
use crate::interner::Interner;
use crate::ssa::{DefKind, Function, Op, Program};
use std::fmt::Write as _;

fn surface_binop(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::BitAnd => "&",
        BinOp::BitOr => "|",
        BinOp::BitXor => "^",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

fn surface_expr(e: &Expr, interner: &Interner, out: &mut String) {
    match e {
        Expr::Int(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::Null => out.push_str("null"),
        Expr::Var(s) => out.push_str(interner.resolve(*s)),
        Expr::Unary(op, inner) => {
            out.push_str(match op {
                UnOp::Not => "!",
                UnOp::Neg => "-",
                UnOp::BitNot => "~",
            });
            out.push('(');
            surface_expr(inner, interner, out);
            out.push(')');
        }
        Expr::Binary(op, a, b) => {
            // Fully parenthesized: precedence-proof round trips.
            out.push('(');
            surface_expr(a, interner, out);
            let _ = write!(out, " {} ", surface_binop(*op));
            surface_expr(b, interner, out);
            out.push(')');
        }
        Expr::Call(name, args) => {
            out.push_str(interner.resolve(*name));
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                surface_expr(a, interner, out);
            }
            out.push(')');
        }
    }
}

fn surface_stmts(stmts: &[Stmt], interner: &Interner, indent: usize, out: &mut String) {
    let pad = "    ".repeat(indent);
    for s in stmts {
        out.push_str(&pad);
        match s {
            Stmt::Let(name, e) => {
                let _ = write!(out, "let {} = ", interner.resolve(*name));
                surface_expr(e, interner, out);
                out.push_str(";\n");
            }
            Stmt::Assign(name, e) => {
                let _ = write!(out, "{} = ", interner.resolve(*name));
                surface_expr(e, interner, out);
                out.push_str(";\n");
            }
            Stmt::Return(e) => {
                out.push_str("return ");
                surface_expr(e, interner, out);
                out.push_str(";\n");
            }
            Stmt::Expr(e) => {
                surface_expr(e, interner, out);
                out.push_str(";\n");
            }
            Stmt::If(c, t, el) => {
                out.push_str("if (");
                surface_expr(c, interner, out);
                out.push_str(") {\n");
                surface_stmts(t, interner, indent + 1, out);
                out.push_str(&pad);
                out.push('}');
                if !el.is_empty() {
                    out.push_str(" else {\n");
                    surface_stmts(el, interner, indent + 1, out);
                    out.push_str(&pad);
                    out.push('}');
                }
                out.push('\n');
            }
            Stmt::While(c, b) => {
                out.push_str("while (");
                surface_expr(c, interner, out);
                out.push_str(") {\n");
                surface_stmts(b, interner, indent + 1, out);
                out.push_str(&pad);
                out.push_str("}\n");
            }
        }
    }
}

/// Renders a surface program back to parseable concrete syntax.
pub fn surface_to_string(program: &ast::Program, interner: &Interner) -> String {
    let mut out = String::new();
    for f in &program.functions {
        if f.is_extern {
            out.push_str("extern ");
        }
        let _ = write!(out, "fn {}(", interner.resolve(f.name));
        for (i, p) in f.params.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(interner.resolve(*p));
        }
        out.push(')');
        if f.is_extern {
            out.push_str(";\n");
        } else {
            out.push_str(" {\n");
            surface_stmts(&f.body, interner, 1, &mut out);
            out.push_str("}\n");
        }
        out.push('\n');
    }
    out
}

fn op_str(op: Op) -> &'static str {
    match op {
        Op::Add => "+",
        Op::Sub => "-",
        Op::Mul => "*",
        Op::Udiv => "/u",
        Op::Urem => "%u",
        Op::And => "&",
        Op::Or => "|",
        Op::Xor => "^",
        Op::Shl => "<<",
        Op::Lshr => ">>u",
        Op::Ashr => ">>s",
        Op::Slt => "<s",
        Op::Sle => "<=s",
        Op::Ult => "<u",
        Op::Ule => "<=u",
        Op::Eq => "==",
        Op::Ne => "!=",
    }
}

/// Renders one function as an indented listing.
pub fn function_to_string(program: &Program, func: &Function) -> String {
    let mut s = String::new();
    let name = program.name(func.name);
    if func.is_extern {
        let _ = writeln!(s, "extern fn {name}/{};", func.params.len());
        return s;
    }
    let params: Vec<String> = func
        .params
        .iter()
        .map(|p| format!("{}:{}", program.name(func.def(*p).name), p))
        .collect();
    let _ = writeln!(s, "fn {name}({}) {{", params.join(", "));
    for def in &func.defs {
        let depth = func.guards(def.var).len();
        let indent = "  ".repeat(depth + 1);
        let nm = program.name(def.name);
        let rhs = match &def.kind {
            DefKind::Param { index } => format!("param #{index}"),
            DefKind::Const {
                value,
                is_null: true,
            } => format!("null ({value})"),
            DefKind::Const {
                value,
                is_null: false,
            } => format!("{value}"),
            DefKind::Copy { src } => format!("{src}"),
            DefKind::Binary { op, lhs, rhs } => format!("{lhs} {} {rhs}", op_str(*op)),
            DefKind::Ite {
                cond,
                then_v,
                else_v,
            } => {
                format!("ite({cond}, {then_v}, {else_v})")
            }
            DefKind::Call { callee, args, site } => {
                let callee_name = program.name(program.func(*callee).name);
                let args: Vec<String> = args.iter().map(ToString::to_string).collect();
                format!("call {callee_name}({}) [{site}]", args.join(", "))
            }
            DefKind::Branch { cond } => format!("branch if {cond}"),
            DefKind::Return { src } => format!("return {src}"),
        };
        let _ = writeln!(s, "{indent}{} ({nm}) = {rhs}", def.var);
    }
    let _ = writeln!(s, "}}");
    s
}

/// Renders a whole core program.
pub fn program_to_string(program: &Program) -> String {
    let mut s = String::new();
    for f in &program.functions {
        s.push_str(&function_to_string(program, f));
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Interner;
    use crate::lower::{lower, LowerOptions};
    use crate::parser::parse;

    #[test]
    fn renders_nesting_and_calls() {
        let mut i = Interner::new();
        let s = parse(
            "fn g(x) { return x; } fn f(a) { let r = 0; if (a) { r = g(a); } return r; }",
            &mut i,
        )
        .unwrap();
        let p = lower(&s, &mut i, LowerOptions::default()).unwrap();
        let text = program_to_string(&p);
        assert!(text.contains("fn f("));
        assert!(text.contains("branch if"));
        assert!(text.contains("call g("));
        assert!(text.contains("return"));
        // Guarded defs are indented deeper than the branch.
        let branch_line = text.lines().find(|l| l.contains("branch if")).unwrap();
        let call_line = text.lines().find(|l| l.contains("call g(")).unwrap();
        let lead = |l: &str| l.chars().take_while(|c| *c == ' ').count();
        assert!(lead(call_line) > lead(branch_line));
    }

    #[test]
    fn renders_externs() {
        let mut i = Interner::new();
        let s = parse("extern fn gets();", &mut i).unwrap();
        let p = lower(&s, &mut i, LowerOptions::default()).unwrap();
        assert!(program_to_string(&p).contains("extern fn gets/0;"));
    }
}

//! Property tests for [`fusion_smt::session::SolveSession`].
//!
//! The contract under test: on any *sequence* of formulas built in one
//! shared pool, the incremental session verdict equals a fresh
//! `smt_solve` verdict for every query (and both equal brute-force
//! enumeration). Sequences deliberately include:
//!
//! * UNSAT-after-SAT interleavings — an unsatisfiable query mid-session
//!   must not poison later satisfiable ones (Unsat under an assumption
//!   never sets the persistent solver's `ok` flag);
//! * assumption flips — `f, ¬f, f, ¬f` activates the same encoded
//!   subgraph under opposite root assumptions back to back, exercising
//!   learnt-clause retention across polarity changes.
//!
//! The Ast/BoolAst recipe machinery mirrors `tests/prop.rs` (integration
//! tests cannot share code, so the helpers are duplicated).

use fusion_smt::session::SolveSession;
use fusion_smt::solver::{smt_solve, SatResult, SolverConfig};
use fusion_smt::term::{BvOp, BvPred, Sort, TermId, TermPool, Value};
use proptest::prelude::*;
use std::collections::HashMap;

const W: u32 = 4;
const NVARS: usize = 3;

/// A compact recipe for building a random formula inside a shared pool.
#[derive(Debug, Clone)]
enum Ast {
    Var(u8),
    Const(u8),
    Bv(u8, Box<Ast>, Box<Ast>),
    Ite(Box<Ast>, Box<Ast>, Box<Ast>),
}

#[derive(Debug, Clone)]
enum BoolAst {
    Eq(Ast, Ast),
    Pred(u8, Ast, Ast),
    Not(Box<BoolAst>),
    And(Vec<BoolAst>),
    Or(Vec<BoolAst>),
}

fn ast_strategy() -> impl Strategy<Value = Ast> {
    let leaf = prop_oneof![
        (0..NVARS as u8).prop_map(Ast::Var),
        (0..16u8).prop_map(Ast::Const),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (0..11u8, inner.clone(), inner.clone()).prop_map(|(op, a, b)| Ast::Bv(
                op,
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, a, b)| Ast::Ite(
                Box::new(c),
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
}

fn bool_strategy() -> impl Strategy<Value = BoolAst> {
    let leaf = prop_oneof![
        (ast_strategy(), ast_strategy()).prop_map(|(a, b)| BoolAst::Eq(a, b)),
        (0..4u8, ast_strategy(), ast_strategy()).prop_map(|(p, a, b)| BoolAst::Pred(p, a, b)),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|b| BoolAst::Not(Box::new(b))),
            prop::collection::vec(inner.clone(), 2..4).prop_map(BoolAst::And),
            prop::collection::vec(inner, 2..4).prop_map(BoolAst::Or),
        ]
    })
}

fn build_bv(pool: &mut TermPool, ast: &Ast) -> TermId {
    match ast {
        Ast::Var(i) => pool.var(&format!("v{i}"), Sort::Bv(W)),
        Ast::Const(c) => pool.bv_const(*c as u64, W),
        Ast::Bv(op, a, b) => {
            let ops = [
                BvOp::Add,
                BvOp::Sub,
                BvOp::Mul,
                BvOp::Udiv,
                BvOp::Urem,
                BvOp::And,
                BvOp::Or,
                BvOp::Xor,
                BvOp::Shl,
                BvOp::Lshr,
                BvOp::Ashr,
            ];
            let a = build_bv(pool, a);
            let b = build_bv(pool, b);
            pool.bv(ops[*op as usize % ops.len()], a, b)
        }
        Ast::Ite(c, a, b) => {
            let c = build_bv(pool, c);
            let zero = pool.bv_const(0, W);
            let cb = pool.ne(c, zero);
            let a = build_bv(pool, a);
            let b = build_bv(pool, b);
            pool.ite(cb, a, b)
        }
    }
}

fn build_bool(pool: &mut TermPool, ast: &BoolAst) -> TermId {
    match ast {
        BoolAst::Eq(a, b) => {
            let a = build_bv(pool, a);
            let b = build_bv(pool, b);
            pool.eq(a, b)
        }
        BoolAst::Pred(p, a, b) => {
            let preds = [BvPred::Ult, BvPred::Ule, BvPred::Slt, BvPred::Sle];
            let a = build_bv(pool, a);
            let b = build_bv(pool, b);
            pool.pred(preds[*p as usize % preds.len()], a, b)
        }
        BoolAst::Not(b) => {
            let b = build_bool(pool, b);
            pool.not(b)
        }
        BoolAst::And(xs) => {
            let xs: Vec<TermId> = xs.iter().map(|x| build_bool(pool, x)).collect();
            pool.and(&xs)
        }
        BoolAst::Or(xs) => {
            let xs: Vec<TermId> = xs.iter().map(|x| build_bool(pool, x)).collect();
            pool.or(&xs)
        }
    }
}

/// Brute-force satisfiability over all assignments to the free variables.
fn brute_force_sat(pool: &TermPool, t: TermId) -> bool {
    let vars = pool.free_vars(t);
    let n = vars.len();
    assert!(n <= 6, "too many vars for brute force");
    let total = 1u64 << (W as u64 * n as u64);
    for bits in 0..total {
        let mut env = HashMap::new();
        for (i, &v) in vars.iter().enumerate() {
            env.insert(v, (bits >> (W as u64 * i as u64)) & ((1 << W) - 1));
        }
        if pool.eval(t, &env) == Value::Bool(true) {
            return true;
        }
    }
    false
}

/// Runs `asts` as one session sequence in a shared pool and checks every
/// query three ways: against a fresh `smt_solve` on a cloned pool, against
/// brute-force enumeration, and (when preprocessing is skipped, so the
/// model covers the original variables) by evaluating the returned model.
fn run_sequence(asts: &[BoolAst], skip_preprocessing: bool) {
    let mut pool = TermPool::new();
    let formulas: Vec<TermId> = asts.iter().map(|a| build_bool(&mut pool, a)).collect();
    let cfg = SolverConfig {
        skip_preprocessing,
        ..Default::default()
    };
    let mut session = SolveSession::new();
    for (i, &f) in formulas.iter().enumerate() {
        let expected = brute_force_sat(&pool, f);
        let mut cold_pool = pool.clone();
        let (cold, _) = smt_solve(&mut cold_pool, f, &cfg);
        let (inc, _) = session.solve_formula(&mut pool, f, &cfg);
        assert_eq!(
            inc.is_sat(),
            cold.is_sat(),
            "query {i}: session {inc:?} vs cold {cold:?} on {}",
            pool.display(f)
        );
        assert_eq!(
            inc.is_sat(),
            expected,
            "query {i}: session disagrees with brute force on {}",
            pool.display(f)
        );
        assert_eq!(inc.is_unsat(), !expected, "query {i}: not a decision");
        if skip_preprocessing {
            // Without preprocessing the model must cover the original
            // variables and satisfy the original formula. (With
            // preprocessing, eliminated variables may be absent — see the
            // `Model` docs — so model-eval is only checked here.)
            if let SatResult::Sat(m) = &inc {
                assert_eq!(
                    m.eval(&pool, f),
                    Value::Bool(true),
                    "query {i}: session model does not satisfy {}",
                    pool.display(f)
                );
            }
        }
    }
    assert_eq!(session.stats.queries, asts.len() as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary sequences, with and without preprocessing: incremental
    /// verdicts equal fresh-solver verdicts equal ground truth, query by
    /// query. Random sequences routinely mix SAT and UNSAT members, so
    /// this also covers unordered interleavings beyond the directed cases
    /// below.
    #[test]
    fn session_sequence_matches_fresh_solver(
        asts in prop::collection::vec(bool_strategy(), 1..5),
        skip in any::<bool>(),
    ) {
        run_sequence(&asts, skip);
    }

    /// Directed UNSAT-after-SAT interleaving. `a < b ∧ b ≤ a` (unsigned)
    /// is always unsatisfiable but syntactically opaque — the pool's
    /// `x ∧ ¬x → false` constructor fold cannot see it, and preprocessing
    /// is skipped, so the contradiction is refuted *inside* the persistent
    /// SAT solver. Later queries in the same session must be unaffected.
    #[test]
    fn unsat_after_sat_does_not_poison_later_queries(
        a in ast_strategy(),
        b in ast_strategy(),
        c in bool_strategy(),
    ) {
        let lt = BoolAst::Pred(0, a.clone(), b.clone()); // Ult(a, b)
        let ge = BoolAst::Pred(1, b, a); // Ule(b, a)
        let contradiction = BoolAst::And(vec![lt.clone(), ge]);
        let seq = [lt.clone(), contradiction, c, lt];
        run_sequence(&seq, true);
    }

    /// Assumption flips: `f, ¬f, f, ¬f` re-activates one encoded subgraph
    /// under opposite root assumptions. Learnt clauses from the positive
    /// query are retained while solving the negative one and vice versa;
    /// verdicts must stay pointwise correct throughout.
    #[test]
    fn assumption_flip_sequences(a in bool_strategy(), skip in any::<bool>()) {
        let n = BoolAst::Not(Box::new(a.clone()));
        let seq = [a.clone(), n.clone(), a, n];
        run_sequence(&seq, skip);
    }
}

/// Deterministic regression: a sequence whose middle member is refuted at
/// the SAT layer, bracketed by satisfiable queries over the same terms.
#[test]
fn regression_sat_unsat_sat_shared_terms() {
    let lt = BoolAst::Pred(0, Ast::Var(0), Ast::Var(1));
    let ge = BoolAst::Pred(1, Ast::Var(0), Ast::Var(1));
    // Ult(v0,v1) ∧ Ule(v0,v1) is satisfiable; Ult ∧ Ule-swapped is not.
    let ge_swapped = BoolAst::Pred(1, Ast::Var(1), Ast::Var(0));
    let seq = [
        BoolAst::And(vec![lt.clone(), ge]),
        BoolAst::And(vec![lt.clone(), ge_swapped]),
        lt,
    ];
    run_sequence(&seq, true);
}
